//! Property-based acceptance of the self-healing executor: under any
//! seeded fault plan with loss rate ≤ 0.2 and at most n/4 crash-stop
//! failures that leave the survivors connected, `ResilientExecutor` reaches
//! residual-free completion among the survivors, and its combined
//! transcript replays cleanly through the validating lossy simulator under
//! the same fault plan.

use gossip_core::{GossipPlanner, ResilientExecutor};
use gossip_graph::Graph;
use gossip_model::{CommModel, FaultPlan, Simulator};
use gossip_workloads::random_connected;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Whether the subgraph induced by the alive vertices is connected (and
/// nonempty).
fn survivors_connected(g: &Graph, alive: &[bool]) -> bool {
    let n = g.n();
    let Some(start) = (0..n).find(|&v| alive[v]) else {
        return false;
    };
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start] = true;
    while let Some(v) = stack.pop() {
        for u in g.neighbors(v) {
            if alive[u] && !seen[u] {
                seen[u] = true;
                stack.push(u);
            }
        }
    }
    (0..n).all(|v| !alive[v] || seen[v])
}

/// Builds a fault plan from raw generated values, keeping only crashes
/// that respect the acceptance precondition: at most n/4 of them, and the
/// survivors stay connected. (The vendored proptest has no `prop_assume`,
/// so the precondition is established by construction.)
fn admissible_faults(
    g: &Graph,
    loss_permille: u64,
    fault_seed: u64,
    raw_crashes: &[(u64, usize)],
) -> FaultPlan {
    let n = g.n();
    let mut plan = FaultPlan::new(fault_seed).with_loss_rate(loss_permille as f64 / 1000.0);
    let mut alive = vec![true; n];
    let budget = n / 4;
    let mut used = 0;
    for &(vraw, t) in raw_crashes {
        if used == budget {
            break;
        }
        let v = (vraw as usize) % n;
        if !alive[v] {
            continue;
        }
        alive[v] = false;
        if survivors_connected(g, &alive) {
            plan = plan.with_crash(v, t);
            used += 1;
        } else {
            alive[v] = true;
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The tentpole acceptance property: seeded loss ≤ 0.2 plus ≤ n/4
    /// connectivity-preserving crashes → the executor completes every
    /// recoverable pair, and the repaired transcript replays through the
    /// validating simulator under the same fault plan to the same outcome.
    #[test]
    fn resilient_executor_heals_every_admissible_plan(
        (net, faults, raw_crashes) in (
            (5usize..=18, 0u64..500),
            (0u64..=200, 0u64..100),
            pvec((0u64..1000, 0usize..16), 0..6),
        )
    ) {
        let (n, graph_seed) = net;
        let (loss_permille, fault_seed) = faults;
        let g = random_connected(n, 0.3, graph_seed);
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let fp = admissible_faults(&g, loss_permille, fault_seed, &raw_crashes);

        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &fp)
            .run()
            .expect("structurally valid run");

        // Residual-free completion among survivors: nothing recoverable
        // is left, so the only missing pairs are proven-unreachable ones.
        prop_assert!(report.recovered, "unresolved: {:?}", report.unresolved);
        prop_assert!(report.unresolved.is_empty());
        prop_assert!(report.survivors >= n - n / 4);

        // Replay the combined transcript through the validating lossy
        // simulator under the same plan: accepted, same losses, and the
        // final residual is exactly the unrecoverable set.
        let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &plan.origin_of_message)
            .expect("origin table");
        let mut lost = Vec::new();
        let out = sim
            .run_lossy(&report.transcript, &fp, &mut lost)
            .expect("transcript must satisfy every model rule");
        prop_assert_eq!(&lost, &report.lost_log);
        prop_assert_eq!(out.rounds_executed, report.total_rounds);
        let mut residual = sim.residual(&fp);
        let mut unrecoverable = report.unrecoverable.clone();
        residual.sort_unstable();
        unrecoverable.sort_unstable();
        prop_assert_eq!(residual, unrecoverable);

        // Every abandoned pair is genuinely extinct: with survivors
        // connected, the only excuse is that no survivor holds the message.
        let alive = fp.alive_at(n, report.total_rounds);
        for &(m, _) in &report.unrecoverable {
            for (v, &alive_v) in alive.iter().enumerate() {
                prop_assert!(
                    !(alive_v && sim.holds(v).contains(m as usize)),
                    "message {m} survives at {v} yet was abandoned"
                );
            }
        }
    }

    /// Exactness on the happy path: a zero-fault plan costs exactly
    /// nothing — no extra rounds, no retransmissions, no losses.
    #[test]
    fn zero_fault_plans_cost_exactly_nothing((n, seed) in (4usize..=24, 0u64..500)) {
        let g = random_connected(n, 0.3, seed);
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let fp = FaultPlan::none();
        let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &fp)
            .run()
            .expect("fault-free run");
        prop_assert!(report.recovered);
        prop_assert_eq!(report.overhead_rounds(), 0);
        prop_assert_eq!(report.retransmissions, 0);
        prop_assert_eq!(report.lost_deliveries, 0);
        prop_assert!(report.unrecoverable.is_empty());
        prop_assert_eq!(report.epochs.len(), 1);
    }
}
