//! Golden-file regression test: the rendered Tables 1–4 report must stay
//! byte-identical to the checked-in snapshot (`tests/golden/tables.txt`).
//!
//! The cell-level assertions live in `tests/paper_tables.rs`; this test
//! additionally pins the *rendering* (layout, headers, the `n + r`
//! headline) so that incidental changes to the trace formatter or the DFS
//! labeling are caught immediately.

use gossip_core::{concurrent_updown, tree_origins};
use gossip_model::{simulate_gossip, vertex_trace};
use multigossip::workloads::fig5_tree;

fn regenerate() -> String {
    let tree = fig5_tree();
    let schedule = concurrent_updown(&tree);
    let g = tree.to_graph();
    let outcome = simulate_gossip(&g, &schedule, &tree_origins(&tree)).expect("valid");
    assert!(outcome.complete);

    let mut out = String::new();
    out.push_str(&format!(
        "Fig 5 tree: n = 16, height r = 3; schedule length {} = n + r\n\n",
        schedule.makespan()
    ));
    for (table, vertex) in [(1, 0usize), (2, 1), (3, 4), (4, 8)] {
        out.push_str(&format!(
            "--- Table {table}: vertex with message {vertex} ---\n"
        ));
        out.push_str(&vertex_trace(&schedule, &tree, vertex).render());
        out.push('\n');
    }
    out
}

#[test]
fn tables_match_golden_snapshot() {
    let golden = include_str!("golden/tables.txt").trim_end();
    let fresh = regenerate();
    let fresh = fresh.trim_end();
    // Compare line by line for a readable diff on failure.
    for (i, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
        assert_eq!(g, f, "line {} diverged from the golden snapshot", i + 1);
    }
    assert_eq!(
        golden.lines().count(),
        fresh.lines().count(),
        "line count changed"
    );
}
