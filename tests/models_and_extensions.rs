//! Cross-model comparisons, exact-optimality checks, and the §4 extensions
//! (weighted gossiping, online execution) through the public API.

use gossip_core::{
    optimal_gossip_time, petersen_gossip_schedule, run_online_threaded, weighted_gossip, Algorithm,
    ExactResult,
};
use gossip_graph::{is_hamiltonian, NO_PARENT};
use gossip_model::{identity_origins, validate_gossip_schedule, CommModel};
use multigossip::prelude::*;
use multigossip::workloads::{odd_line, petersen};

const BUDGET: u64 = 20_000_000;

#[test]
fn exact_optimum_vs_n_plus_r_on_tiny_graphs() {
    // On every family instance small enough for exact search, the paper's
    // schedule is within r + 1 of optimal (it is n + r vs >= n - 1).
    for &family in multigossip::workloads::Family::all() {
        let g = family.instance(5, 2);
        if g.n() > 6 {
            continue;
        }
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let opt = match optimal_gossip_time(&g, CommModel::Multicast, 2 * g.n() + 4, BUDGET) {
            ExactResult::Optimal(t) => t,
            other => panic!("{}: {other:?}", family.name()),
        };
        assert!(opt >= g.n() - 1, "{}", family.name());
        assert!(opt <= plan.makespan(), "{}", family.name());
        assert!(
            plan.makespan() <= opt + plan.radius as usize + 1,
            "{}: n + r = {} vs optimal {opt}",
            family.name(),
            plan.makespan()
        );
    }
}

#[test]
fn petersen_full_story() {
    let g = petersen();
    // Not Hamiltonian (exhaustively proven)...
    assert!(!is_hamiltonian(&g));
    // ...yet the structured schedule gossips in n - 1 rounds, telephone-legal.
    let s = petersen_gossip_schedule();
    assert_eq!(s.makespan(), 9);
    let o = validate_gossip_schedule(&g, &s, &identity_origins(10), CommModel::Telephone).unwrap();
    assert!(o.complete);
    // The generic pipeline still delivers its n + r = 12 guarantee.
    let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
    assert_eq!(plan.makespan(), 12);
}

#[test]
fn k23_separates_multicast_from_telephone() {
    // The N3 substitute: non-Hamiltonian, multicast-optimal at n - 1,
    // telephone strictly worse — exhaustively proven.
    let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
    assert!(!is_hamiltonian(&g));
    assert_eq!(
        optimal_gossip_time(&g, CommModel::Multicast, 8, BUDGET),
        ExactResult::Optimal(4)
    );
    assert_eq!(
        optimal_gossip_time(&g, CommModel::Telephone, 8, BUDGET),
        ExactResult::Optimal(6)
    );
}

#[test]
fn ring_schedules_beat_generic_on_hamiltonian_graphs() {
    for n in [5, 8, 12] {
        let g = ring(n);
        let ham = gossip_core::ring_gossip_schedule(&g).expect("rings are Hamiltonian");
        assert_eq!(ham.makespan(), n - 1);
        let generic = GossipPlanner::new(&g).unwrap().plan().unwrap();
        assert_eq!(generic.makespan(), n + n / 2);
        assert!(ham.makespan() < generic.makespan());
    }
}

#[test]
fn weighted_gossip_end_to_end() {
    // A 5-vertex tree where vertices carry 1..=3 messages each.
    let tree = gossip_graph::RootedTree::from_parents(2, &[1, 2, NO_PARENT, 2, 3]).unwrap();
    let weights = [2, 1, 3, 1, 2];
    let plan = weighted_gossip(&tree, &weights).unwrap();
    assert_eq!(plan.total_weight, 9);
    let g = plan.expanded_tree.to_graph();
    let o = simulate_gossip(&g, &plan.schedule, &plan.origins()).unwrap();
    assert!(o.complete);
    // W + r' guarantee.
    assert_eq!(
        plan.schedule.makespan(),
        plan.total_weight + plan.expanded_tree.height() as usize
    );
    // Every original vertex owns exactly weight[p] messages.
    for (p, &w) in weights.iter().enumerate() {
        let owned = (0..plan.total_weight as u32)
            .filter(|&m| plan.message_owner(m) == p)
            .count();
        assert_eq!(owned, w, "vertex {p}");
    }
}

#[test]
fn threaded_online_matches_offline_on_fig5() {
    let tree = multigossip::workloads::fig5_tree();
    let mut offline = gossip_core::concurrent_updown(&tree);
    offline.normalize();
    assert_eq!(run_online_threaded(&tree), offline);
}

#[test]
fn telephone_model_never_beats_multicast_model() {
    for &family in multigossip::workloads::Family::all() {
        let g = family.instance(10, 1);
        let planner = GossipPlanner::new(&g).unwrap();
        let mc = planner.clone().plan().unwrap().makespan();
        let tp = planner
            .clone()
            .algorithm(Algorithm::Telephone)
            .plan()
            .unwrap()
            .makespan();
        assert!(
            mc <= tp,
            "{}: multicast {mc} > telephone {tp}",
            family.name()
        );
    }
}

#[test]
fn odd_line_exact_matches_paper_bound() {
    // n = 5, r = 2: optimal is exactly n + r - 1 (the paper's §4 remark
    // that one unit can be shaved but with a non-uniform protocol).
    let g = odd_line(2);
    assert_eq!(
        optimal_gossip_time(&g, CommModel::Multicast, 10, BUDGET),
        ExactResult::Optimal(6)
    );
    assert_eq!(gossip_core::gossip_lower_bound(&g), 6);
    let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
    assert_eq!(plan.makespan(), 7); // n + r: one off optimal, as §4 states
}
