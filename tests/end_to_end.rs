//! Full-pipeline sweep: every workload family × several sizes × every
//! algorithm, planned from the raw graph and machine-verified.

use gossip_core::Algorithm;
use gossip_model::{validate_gossip_schedule, CommModel};
use multigossip::prelude::*;
use multigossip::workloads::Family;

#[test]
fn concurrent_updown_on_every_family() {
    for &family in Family::all() {
        for target in [4, 9, 25, 40] {
            let g = family.instance(target, 7);
            let plan = GossipPlanner::new(&g)
                .expect("connected")
                .plan()
                .expect("plan");
            let n = g.n();
            let r = plan.radius as usize;
            assert_eq!(plan.makespan(), n + r, "{} (n = {n})", family.name());
            let o = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message)
                .unwrap_or_else(|e| panic!("{} (n = {n}): {e}", family.name()));
            assert!(o.complete, "{} (n = {n})", family.name());
            // 1.5-approximation (§4): r <= n / 2 so n + r <= 1.5 (n - 1) + 2.
            assert!(
                2 * plan.makespan() <= 3 * (n - 1) + 4,
                "{}: approximation ratio violated",
                family.name()
            );
        }
    }
}

#[test]
fn all_algorithms_on_every_family() {
    for &family in Family::all() {
        let g = family.instance(12, 3);
        for alg in [
            Algorithm::ConcurrentUpDown,
            Algorithm::Simple,
            Algorithm::UpDown,
            Algorithm::Telephone,
        ] {
            let plan = GossipPlanner::new(&g)
                .expect("connected")
                .algorithm(alg)
                .plan()
                .expect("plan");
            let model = if alg == Algorithm::Telephone {
                CommModel::Telephone
            } else {
                CommModel::Multicast
            };
            let o = validate_gossip_schedule(&g, &plan.schedule, &plan.origin_of_message, model)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", alg.name(), family.name()));
            assert!(o.complete, "{} on {}", alg.name(), family.name());
        }
    }
}

#[test]
fn algorithm_ordering_holds_everywhere() {
    // ConcurrentUpDown <= Simple, UpDown <= Simple, multicast <= telephone.
    for &family in Family::all() {
        let g = family.instance(20, 11);
        let planner = GossipPlanner::new(&g).expect("connected");
        let cud = planner.clone().plan().unwrap().makespan();
        let simple = planner
            .clone()
            .algorithm(Algorithm::Simple)
            .plan()
            .unwrap()
            .makespan();
        let updown = planner
            .clone()
            .algorithm(Algorithm::UpDown)
            .plan()
            .unwrap()
            .makespan();
        let telephone = planner
            .clone()
            .algorithm(Algorithm::Telephone)
            .plan()
            .unwrap()
            .makespan();
        assert!(cud <= simple, "{}", family.name());
        assert!(updown <= simple, "{}", family.name());
        assert!(updown <= telephone, "{}", family.name());
    }
}

#[test]
fn lower_bound_never_exceeds_achieved() {
    for &family in Family::all() {
        for target in [5, 13, 29] {
            let g = family.instance(target, 23);
            let lb = gossip_lower_bound(&g);
            let plan = GossipPlanner::new(&g)
                .expect("connected")
                .plan()
                .expect("plan");
            assert!(
                lb <= plan.makespan(),
                "{}: lower bound {lb} exceeds makespan {}",
                family.name(),
                plan.makespan()
            );
        }
    }
}

#[test]
fn broadcast_time_is_eccentricity_everywhere() {
    for &family in Family::all() {
        let g = family.instance(18, 5);
        let metrics = distance_metrics(&g).expect("connected");
        for src in [0, g.n() / 2, g.n() - 1] {
            let (s, time) = gossip_core::broadcast_schedule(&g, src);
            assert_eq!(time as u32, metrics.ecc[src], "{} src {src}", family.name());
            assert_eq!(s.makespan(), time, "{} src {src}", family.name());
        }
    }
}

#[test]
fn paper_odd_line_story() {
    // The complete §1/§4 narrative on one instance: odd line, n = 9, r = 4.
    let g = multigossip::workloads::odd_line(4);
    let lb = gossip_lower_bound(&g);
    assert_eq!(lb, 9 + 4 - 1, "paper's line lower bound");
    let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
    assert_eq!(
        plan.makespan(),
        9 + 4,
        "the algorithm is one off optimal on lines"
    );
    assert_eq!(plan.tree.root(), 4, "tree rooted at the line's center");
}
