//! Property-based verification of the paper's Theorem 1 and its supporting
//! lemmas over randomly generated trees and graphs.

use gossip_core::{
    concurrent_updown, run_online, simple_gossip, tree_origins, updown_gossip, LabelView,
};
use gossip_graph::{RootedTree, NO_PARENT};
use gossip_model::simulate_gossip;
use proptest::prelude::*;

/// A uniformly-shaped random rooted tree: `parent[i] < i` guarantees a tree
/// rooted at 0 (vertex ids then get permuted by the labeling anyway).
fn arb_tree(max_n: usize) -> impl Strategy<Value = RootedTree> {
    (2..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
        parents.prop_map(move |ps| {
            let mut parent = vec![NO_PARENT; n];
            for (i, p) in ps.into_iter().enumerate() {
                parent[i + 1] = p;
            }
            RootedTree::from_parents(0, &parent).expect("valid tree")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 1: ConcurrentUpDown completes gossip in exactly n + r rounds
    /// on every tree, and the schedule obeys every model rule.
    #[test]
    fn concurrent_updown_theorem1(tree in arb_tree(40)) {
        let s = concurrent_updown(&tree);
        let n = tree.n();
        let r = tree.height() as usize;
        prop_assert_eq!(s.makespan(), n + r);
        let g = tree.to_graph();
        let o = simulate_gossip(&g, &s, &tree_origins(&tree)).expect("model rules hold");
        prop_assert!(o.complete);
        prop_assert_eq!(o.completion_time, Some(n + r));
    }

    /// Lemma 1: Simple takes exactly 2n + r - 3 rounds, and completes.
    #[test]
    fn simple_lemma1(tree in arb_tree(32)) {
        let s = simple_gossip(&tree);
        let n = tree.n();
        let r = tree.height() as usize;
        prop_assert_eq!(s.makespan(), 2 * n + r - 3);
        let g = tree.to_graph();
        let o = simulate_gossip(&g, &s, &tree_origins(&tree)).expect("model rules hold");
        prop_assert!(o.complete);
    }

    /// UpDown completes within [n - 1, 2n + r - 3] and never beats the
    /// trivial bound.
    #[test]
    fn updown_between_bounds(tree in arb_tree(24)) {
        let s = updown_gossip(&tree);
        let n = tree.n();
        let r = tree.height() as usize;
        let g = tree.to_graph();
        let o = simulate_gossip(&g, &s, &tree_origins(&tree)).expect("model rules hold");
        prop_assert!(o.complete);
        prop_assert!(s.makespan() >= n - 1);
        prop_assert!(s.makespan() <= 2 * n + r - 3);
    }

    /// The online distributed protocol reproduces the offline schedule
    /// byte for byte on every tree.
    #[test]
    fn online_equals_offline(tree in arb_tree(28)) {
        let mut offline = concurrent_updown(&tree);
        offline.normalize();
        prop_assert_eq!(run_online(&tree), offline);
    }

    /// DFS-labeling invariants behind Lemma 2's induction: label >= level,
    /// contiguous subtree ranges, exactly one lip per non-first child set.
    #[test]
    fn labeling_invariants(tree in arb_tree(48)) {
        let lv = LabelView::new(&tree);
        for label in lv.labels() {
            let p = lv.params(label);
            prop_assert!(p.i >= p.k, "label {} < level {}", p.i, p.k);
            prop_assert!(p.j >= p.i);
            // Children ranges tile (i, j] exactly.
            let mut cursor = p.i + 1;
            for &c in lv.children(label) {
                let cp = lv.params(c);
                prop_assert_eq!(cp.i, cursor, "gap in subtree ranges");
                cursor = cp.j + 1;
            }
            prop_assert_eq!(cursor, p.j + 1, "ranges do not cover the subtree");
            // First child (and only it) carries the lip-message.
            for (idx, &c) in lv.children(label).iter().enumerate() {
                prop_assert_eq!(lv.params(c).has_lip(), idx == 0);
            }
        }
    }

    /// Message conservation: every (vertex, message) pair is delivered
    /// exactly once by ConcurrentUpDown — no duplicate work.
    #[test]
    fn no_duplicate_deliveries(tree in arb_tree(32)) {
        let s = concurrent_updown(&tree);
        let n = tree.n();
        let mut delivered = vec![vec![false; n]; n];
        for (_, tx) in s.iter() {
            for &d in &tx.to {
                prop_assert!(
                    !delivered[d][tx.msg as usize],
                    "vertex {} got message {} twice", d, tx.msg
                );
                delivered[d][tx.msg as usize] = true;
            }
        }
        // Exactly n * (n - 1) deliveries in total: the information-theoretic
        // minimum.
        let total: usize = delivered.iter().flatten().filter(|&&b| b).count();
        prop_assert_eq!(total, n * (n - 1));
    }
}
