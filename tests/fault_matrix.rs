//! Mutation-kill matrix: every fault kind injected into real generator
//! output (Simple, UpDown, ConcurrentUpDown) on the paper's Petersen graph
//! and seeded G(n, p) instances, with the validating simulator as the
//! detector. A validator that accepts a mutant schedule would silently
//! vouch for broken algorithms, so the kill rates here are the floor the
//! whole test suite stands on.

use gossip_core::{Algorithm, GossipPlanner};
use gossip_graph::Graph;
use gossip_model::{inject_fault, validate_gossip_schedule, CommModel, Fault};

const SEEDS: u64 = 24;

fn networks() -> Vec<(String, Graph)> {
    let mut nets = vec![("petersen".to_string(), gossip_workloads::petersen())];
    for seed in [3u64, 11] {
        nets.push((
            format!("gnp-12-seed{seed}"),
            gossip_workloads::random_connected(12, 0.3, seed),
        ));
    }
    nets
}

fn algorithms() -> [Algorithm; 3] {
    [
        Algorithm::Simple,
        Algorithm::UpDown,
        Algorithm::ConcurrentUpDown,
    ]
}

/// Runs the matrix cell (network, algorithm, fault) and returns
/// `(applied, detected)` over [`SEEDS`] seeds.
fn kill_cell(g: &Graph, alg: Algorithm, fault: Fault) -> (usize, usize) {
    let plan = GossipPlanner::new(g)
        .unwrap()
        .algorithm(alg)
        .plan()
        .unwrap();
    let (mut applied, mut detected) = (0, 0);
    for seed in 0..SEEDS {
        let Some(mutant) = inject_fault(&plan.schedule, fault, g, seed) else {
            continue;
        };
        if mutant == plan.schedule {
            continue;
        }
        applied += 1;
        match validate_gossip_schedule(g, &mutant, &plan.origin_of_message, CommModel::Multicast) {
            Err(_) => detected += 1,               // rule violation caught
            Ok(o) if !o.complete => detected += 1, // incompleteness caught
            Ok(_) => {}                            // silent miss
        }
    }
    (applied, detected)
}

#[test]
fn every_cell_applies_and_mostly_kills() {
    for (name, g) in networks() {
        for alg in algorithms() {
            for &fault in Fault::all() {
                let (applied, detected) = kill_cell(&g, alg, fault);
                assert!(
                    applied > 0,
                    "{name}/{}/{fault:?}: no mutant ever applied",
                    alg.name()
                );
                // Most mutants must be caught; a minority can be
                // semantically harmless (a dropped redundant delivery, a
                // legally shifted origin hop).
                assert!(
                    detected * 2 >= applied,
                    "{name}/{}/{fault:?}: killed only {detected}/{applied}",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn structural_faults_are_killed_without_exception() {
    // Duplicates double-book a receiver; redirects aim at a sampled real
    // non-neighbour. Both violate hard model rules, so the kill rate is
    // 100% — not merely a majority — on every generator and network.
    for (name, g) in networks() {
        for alg in algorithms() {
            for fault in [Fault::DuplicateTransmission, Fault::RedirectToNonNeighbor] {
                let (applied, detected) = kill_cell(&g, alg, fault);
                assert!(applied > 0, "{name}/{}/{fault:?}", alg.name());
                assert_eq!(
                    detected,
                    applied,
                    "{name}/{}/{fault:?}: a structural mutant survived",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn drops_on_redundancy_free_schedules_always_incomplete() {
    // ConcurrentUpDown delivers each (message, vertex) pair exactly once,
    // so deleting any transmission must leave gossip incomplete.
    for (name, g) in networks() {
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        for seed in 0..SEEDS {
            let Some(mutant) = inject_fault(&plan.schedule, Fault::DropTransmission, &g, seed)
            else {
                continue;
            };
            let verdict = validate_gossip_schedule(
                &g,
                &mutant,
                &plan.origin_of_message,
                CommModel::Multicast,
            );
            assert!(
                !matches!(verdict, Ok(o) if o.complete),
                "{name}: dropped delivery went unnoticed (seed {seed})"
            );
        }
    }
}
