//! End-to-end reproduction of the paper's Tables 1–4 through the public
//! facade: network (Fig 4) → minimum-depth spanning tree (Fig 5) → DFS
//! labels → ConcurrentUpDown schedule → per-vertex traces, asserted cell by
//! cell against the published tables.

use gossip_core::{concurrent_updown, tree_origins};
use gossip_model::{simulate_gossip, vertex_trace, Schedule, VertexTrace};
use multigossip::prelude::*;
use multigossip::workloads::{fig4_graph, fig5_tree};

/// Runs the full pipeline from the Fig 4 *graph* (not the tree): the
/// spanning-tree construction must recover Fig 5 on its own.
fn schedule_from_graph() -> (Schedule, gossip_graph::RootedTree) {
    let g = fig4_graph();
    let tree = min_depth_spanning_tree(&g, ChildOrder::ById).expect("connected");
    assert_eq!(
        tree,
        fig5_tree(),
        "min-depth spanning tree must be the Fig 5 tree"
    );
    let s = concurrent_updown(&tree);
    let outcome = simulate_gossip(&g, &s, &tree_origins(&tree)).expect("valid schedule");
    assert!(outcome.complete);
    assert_eq!(outcome.completion_time, Some(19), "n + r = 19");
    (s, tree)
}

/// Helper: assert a sparse row spec `(time, msg)` exactly covers the row.
fn assert_row(row: &[Option<u32>], expected: &[(usize, u32)], what: &str) {
    let mut want = vec![None; row.len()];
    for &(t, m) in expected {
        want[t] = Some(m);
    }
    assert_eq!(row, &want[..], "{what}");
}

fn trace(s: &Schedule, tree: &gossip_graph::RootedTree, v: usize) -> VertexTrace {
    vertex_trace(s, tree, v)
}

#[test]
fn table_1_root() {
    let (s, tree) = schedule_from_graph();
    let tr = trace(&s, &tree, 0);
    // Receive from Child: message i at time i, i = 1..15.
    let recv: Vec<(usize, u32)> = (1..=15).map(|m| (m as usize, m)).collect();
    assert_row(&tr.recv_from_child, &recv, "table 1 receive row");
    // Send to Children: message i at time i, plus message 0 at time 16.
    let mut send = recv.clone();
    send.push((16, 0));
    assert_row(&tr.send_to_children, &send, "table 1 send row");
    assert_row(
        &tr.recv_from_parent,
        &[],
        "root receives nothing from a parent",
    );
    assert_row(&tr.send_to_parent, &[], "root sends nothing to a parent");
}

#[test]
fn table_2_vertex_1() {
    let (s, tree) = schedule_from_graph();
    let tr = trace(&s, &tree, 1);
    let mut recv_parent: Vec<(usize, u32)> = (4..=15).map(|m| (m as usize + 1, m)).collect();
    recv_parent.push((17, 0));
    assert_row(
        &tr.recv_from_parent,
        &recv_parent,
        "table 2 receive-from-parent",
    );
    assert_row(
        &tr.recv_from_child,
        &[(1, 2), (2, 3)],
        "table 2 receive-from-child",
    );
    assert_row(
        &tr.send_to_parent,
        &[(0, 1), (1, 2), (2, 3)],
        "table 2 send-to-parent",
    );
    let mut send_child = vec![(1, 2), (2, 3), (3, 1)];
    send_child.extend((4..=15).map(|m| (m as usize + 1, m)));
    send_child.push((17, 0));
    assert_row(&tr.send_to_children, &send_child, "table 2 send-to-child");
}

#[test]
fn table_3_vertex_4() {
    let (s, tree) = schedule_from_graph();
    let tr = trace(&s, &tree, 4);
    let mut recv_parent = vec![(2, 1), (3, 2), (4, 3)];
    recv_parent.extend((11..=15).map(|m| (m as usize + 1, m)));
    recv_parent.push((17, 0));
    assert_row(
        &tr.recv_from_parent,
        &recv_parent,
        "table 3 receive-from-parent",
    );
    let mut recv_child = vec![(1, 5)];
    recv_child.extend((6..=10).map(|m| (m as usize - 1, m)));
    assert_row(
        &tr.recv_from_child,
        &recv_child,
        "table 3 receive-from-child",
    );
    let send_parent: Vec<(usize, u32)> = (4..=10).map(|m| (m as usize - 1, m)).collect();
    assert_row(&tr.send_to_parent, &send_parent, "table 3 send-to-parent");
    let mut send_child = vec![(2, 1)];
    send_child.extend((4..=10).map(|m| (m as usize - 1, m)));
    send_child.extend([(10, 2), (11, 3)]); // the two delayed o-messages
    send_child.extend((11..=15).map(|m| (m as usize + 1, m)));
    send_child.push((17, 0));
    assert_row(&tr.send_to_children, &send_child, "table 3 send-to-child");
}

#[test]
fn table_4_vertex_8() {
    let (s, tree) = schedule_from_graph();
    let tr = trace(&s, &tree, 8);
    let mut recv_parent = vec![(3, 1), (4, 4), (5, 5), (6, 6), (7, 7), (11, 2), (12, 3)];
    recv_parent.extend((11..=15).map(|m| (m as usize + 2, m)));
    recv_parent.push((18, 0));
    assert_row(
        &tr.recv_from_parent,
        &recv_parent,
        "table 4 receive-from-parent",
    );
    assert_row(
        &tr.recv_from_child,
        &[(1, 9), (8, 10)],
        "table 4 receive-from-child",
    );
    assert_row(
        &tr.send_to_parent,
        &[(6, 8), (7, 9), (8, 10)],
        "table 4 send-to-parent",
    );
    let mut send_child = vec![
        (3, 1),
        (4, 4),
        (5, 5), // forwarded immediately
        (6, 8),
        (7, 9),
        (8, 10), // own subtree (D3)
        (9, 6),
        (10, 7), // the deferred pair
        (11, 2),
        (12, 3),
    ];
    send_child.extend((11..=15).map(|m| (m as usize + 2, m)));
    send_child.push((18, 0));
    assert_row(&tr.send_to_children, &send_child, "table 4 send-to-child");
}

#[test]
fn every_vertex_trace_is_internally_consistent() {
    let (s, tree) = schedule_from_graph();
    for v in 0..16 {
        let tr = trace(&s, &tree, v);
        // A vertex receives each message at most once in total.
        let mut seen = std::collections::HashSet::new();
        for m in tr
            .recv_from_parent
            .iter()
            .chain(&tr.recv_from_child)
            .flatten()
        {
            assert!(seen.insert(*m), "vertex {v} received message {m} twice");
        }
        // And ends up having received everything but its own message.
        assert_eq!(seen.len(), 15, "vertex {v}");
        assert!(
            !seen.contains(&tree.label(v)),
            "vertex {v} received its own message"
        );
    }
}
