//! Differential acceptance of the bitset simulation kernel: on every
//! reference instance (and under proptest, on random admissible and
//! sabotaged schedules), [`SimKernel`] over a [`FlatSchedule`] must be
//! *bit-identical* to the oracle [`Simulator`] — same hold sets after
//! every round, same completion round, same final outcome, the same
//! rejection (same `ModelError`) of the same invalid schedules, and the
//! same loss log, residual, and end state under seeded fault plans.

use gossip_core::{concurrent_updown, tree_origins, GossipPlanner};
use gossip_graph::Graph;
use gossip_model::{
    inject_fault, CommModel, Fault, FaultPlan, FlatSchedule, Schedule, SimKernel, Simulator,
};
use gossip_workloads::{fig4_graph, fig5_tree, n1_ring, petersen, random_connected};
use proptest::prelude::*;

/// One instance of the differential suite: a graph, a gossip schedule for
/// it, and the origin table the schedule assumes.
struct Instance {
    name: &'static str,
    g: Graph,
    schedule: Schedule,
    origins: Vec<usize>,
}

fn planned(name: &'static str, g: Graph) -> Instance {
    let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
    Instance {
        name,
        g,
        schedule: plan.schedule,
        origins: plan.origin_of_message,
    }
}

/// The paper's named instances plus seeded G(n, p) graphs.
fn instances() -> Vec<Instance> {
    let fig5 = fig5_tree();
    let mut v = vec![
        planned("petersen", petersen()),
        planned("n1-ring", n1_ring(11)),
        planned("fig4", fig4_graph()),
        Instance {
            name: "fig5",
            g: fig5.to_graph(),
            schedule: concurrent_updown(&fig5),
            origins: tree_origins(&fig5),
        },
    ];
    for (n, p, seed) in [(24, 0.2, 7), (64, 0.1, 42)] {
        v.push(planned("gnp", random_connected(n, p, seed)));
    }
    v
}

/// Asserts that every processor's hold set matches between the two
/// engines.
fn assert_same_holds(name: &str, round: usize, sim: &Simulator, k: &SimKernel) {
    for p in 0..k.hold_bitsets().len() {
        assert_eq!(
            sim.holds(p),
            &k.hold_bitset(p),
            "{name}: hold set of processor {p} diverged after round {round}"
        );
    }
}

/// Round-for-round lockstep on every reference instance: after each round
/// the hold sets are identical, and the final outcomes (completion round
/// included) are equal.
#[test]
fn lockstep_round_for_round_on_reference_instances() {
    for inst in instances() {
        let Instance {
            name,
            g,
            schedule,
            origins,
        } = &inst;
        let flat = FlatSchedule::from_schedule(schedule);
        let mut sim = Simulator::with_origins(g, CommModel::Multicast, origins).unwrap();
        let mut k = SimKernel::with_origins(g, CommModel::Multicast, origins).unwrap();
        let mut sim_completion = None;
        let mut k_completion = None;
        for t in 0..schedule.makespan() {
            sim.step(&schedule.rounds[t]).unwrap();
            k.step_round(&flat, t).unwrap();
            assert_same_holds(name, t, &sim, &k);
            assert_eq!(
                sim.gossip_complete(),
                k.gossip_complete(),
                "{name}: completion flag diverged after round {t}"
            );
            if sim.gossip_complete() && sim_completion.is_none() {
                sim_completion = Some(t + 1);
            }
            if k.gossip_complete() && k_completion.is_none() {
                k_completion = Some(t + 1);
            }
        }
        assert_eq!(sim_completion, k_completion, "{name}: completion round");
        assert!(sim_completion.is_some(), "{name}: schedule must complete");
        assert_eq!(sim.known_pairs(), k.known_pairs(), "{name}");
        assert_eq!(sim.coverage(), k.coverage(), "{name}");
    }
}

/// Whole-run parity (including `SimOutcome` equality) through `run`, and
/// through the word-parallel validator + prevalidated fast path.
#[test]
fn full_runs_agree_on_reference_instances() {
    for inst in instances() {
        let Instance {
            name,
            g,
            schedule,
            origins,
        } = &inst;
        let flat = FlatSchedule::from_schedule(schedule);
        let mut sim = Simulator::with_origins(g, CommModel::Multicast, origins).unwrap();
        let oracle = sim.run(schedule).unwrap();
        let mut k = SimKernel::with_origins(g, CommModel::Multicast, origins).unwrap();
        let strict = k.run(&flat).unwrap();
        assert_eq!(oracle, strict, "{name}: strict kernel outcome");
        assert_same_holds(name, schedule.makespan(), &sim, &k);

        flat.validate(g, CommModel::Multicast, origins.len())
            .unwrap_or_else(|e| panic!("{name}: structural validation rejected a valid plan: {e}"));
        let mut k2 = SimKernel::with_origins(g, CommModel::Multicast, origins).unwrap();
        let fast = k2.run_prevalidated(&flat).unwrap();
        assert_eq!(oracle, fast, "{name}: prevalidated kernel outcome");
        assert_same_holds(name, schedule.makespan(), &sim, &k2);
    }
}

/// Runs both engines on a (possibly sabotaged) schedule and demands the
/// exact same verdict: equal outcomes and end states when accepted, the
/// identical `ModelError` when rejected.
fn assert_same_verdict(name: &str, g: &Graph, schedule: &Schedule, origins: &[usize]) {
    let flat = FlatSchedule::from_schedule(schedule);
    let mut sim = Simulator::with_origins(g, CommModel::Multicast, origins).unwrap();
    let oracle = sim.run(schedule);
    let mut k = SimKernel::with_origins(g, CommModel::Multicast, origins).unwrap();
    let kernel = k.run(&flat);
    match (&oracle, &kernel) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "{name}: outcomes diverged");
            assert_same_holds(name, schedule.makespan(), &sim, &k);
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{name}: errors diverged"),
        _ => panic!("{name}: verdicts diverged: oracle {oracle:?} vs kernel {kernel:?}"),
    }
}

/// Every fault kind, injected at several seeds into every reference
/// instance, draws the identical verdict (and, for rejections, the
/// byte-identical error) from both engines.
#[test]
fn sabotaged_schedules_rejected_identically() {
    let mut rejected = 0usize;
    for inst in instances() {
        for &fault in Fault::all() {
            for seed in 0..4u64 {
                let Some(bad) = inject_fault(&inst.schedule, fault, &inst.g, seed) else {
                    continue;
                };
                assert_same_verdict(inst.name, &inst.g, &bad, &inst.origins);
                let mut sim =
                    Simulator::with_origins(&inst.g, CommModel::Multicast, &inst.origins).unwrap();
                if sim.run(&bad).is_err() {
                    rejected += 1;
                }
            }
        }
    }
    assert!(
        rejected > 20,
        "fault injection produced too few rejections ({rejected}) to be meaningful"
    );
}

/// Seeded lossy execution: same loss log (order included), same outcome,
/// same residual, same end state.
#[test]
fn lossy_runs_agree_on_reference_instances() {
    let plans = [
        FaultPlan::new(3).with_loss_rate(0.25),
        FaultPlan::new(9).with_loss_rate(0.1).with_crash(2, 4),
        FaultPlan::new(1)
            .with_loss_rate(0.3)
            .with_crash(0, 2)
            .with_outage(1, 3, 0, 5),
    ];
    for inst in instances() {
        let flat = FlatSchedule::from_schedule(&inst.schedule);
        for plan in &plans {
            let mut sim =
                Simulator::with_origins(&inst.g, CommModel::Multicast, &inst.origins).unwrap();
            let mut sim_lost = Vec::new();
            let oracle = sim.run_lossy(&inst.schedule, plan, &mut sim_lost).unwrap();
            let mut k =
                SimKernel::with_origins(&inst.g, CommModel::Multicast, &inst.origins).unwrap();
            let mut k_lost = Vec::new();
            let kernel = k.run_lossy(&flat, plan, &mut k_lost).unwrap();
            assert_eq!(oracle, kernel, "{}: lossy outcome", inst.name);
            assert_eq!(sim_lost, k_lost, "{}: loss log", inst.name);
            assert_eq!(
                sim.residual(plan),
                k.residual(plan),
                "{}: residual",
                inst.name
            );
            assert_same_holds(inst.name, inst.schedule.makespan(), &sim, &k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random admissible schedules (planned over seeded G(n, p)) are
    /// accepted by both engines with identical outcomes and end states.
    #[test]
    fn random_admissible_schedules_agree((n, seed) in (5usize..=20, 0u64..10_000)) {
        let g = random_connected(n, 0.3, seed);
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        assert_same_verdict("gnp-prop", &g, &plan.schedule, &plan.origin_of_message);
    }

    /// Randomly sabotaged schedules draw the identical verdict — accept
    /// or the same error — from both engines.
    #[test]
    fn random_sabotage_draws_identical_verdicts(
        ((n, seed), (fault_idx, fault_seed)) in (
            (5usize..=16, 0u64..10_000),
            (0usize..5, 0u64..10_000),
        )
    ) {
        let g = random_connected(n, 0.3, seed);
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let fault = Fault::all()[fault_idx % Fault::all().len()];
        if let Some(bad) = inject_fault(&plan.schedule, fault, &g, fault_seed) {
            assert_same_verdict("gnp-sabotage", &g, &bad, &plan.origin_of_message);
        }
    }

    /// Random seeded fault plans: the lossy kernel reproduces the oracle's
    /// loss log, outcome, and residual exactly.
    #[test]
    fn random_lossy_runs_agree(
        ((n, seed), (loss_permille, fault_seed)) in (
            (5usize..=16, 0u64..10_000),
            (0u64..=400, 0u64..10_000),
        )
    ) {
        let g = random_connected(n, 0.3, seed);
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let fp = FaultPlan::new(fault_seed).with_loss_rate(loss_permille as f64 / 1000.0);
        let flat = FlatSchedule::from_schedule(&plan.schedule);
        let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &plan.origin_of_message).unwrap();
        let mut sim_lost = Vec::new();
        let oracle = sim.run_lossy(&plan.schedule, &fp, &mut sim_lost).unwrap();
        let mut k = SimKernel::with_origins(&g, CommModel::Multicast, &plan.origin_of_message).unwrap();
        let mut k_lost = Vec::new();
        let kernel = k.run_lossy(&flat, &fp, &mut k_lost).unwrap();
        prop_assert_eq!(oracle, kernel);
        prop_assert_eq!(sim_lost, k_lost);
        prop_assert_eq!(sim.residual(&fp), k.residual(&fp));
    }
}
