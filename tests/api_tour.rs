//! A guided tour of the public API through the facade: everything a
//! downstream user reaches for, exercised together on one coherent
//! scenario (so the pieces are tested *in combination*, not just alone).

use gossip_core::{MaintenanceOutcome, Rule};
use multigossip::prelude::*;

#[test]
fn full_api_walkthrough() {
    // --- build a network and plan -------------------------------------
    let g = grid(4, 4);
    let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
    let (n, r) = (g.n(), plan.radius as usize);
    assert_eq!(plan.makespan(), n + r);

    // --- simulate + analyze -------------------------------------------
    let outcome = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap();
    assert!(outcome.complete);
    let analysis = analyze_schedule(&g, &plan.schedule, &plan.origin_of_message).unwrap();
    assert_eq!(analysis.redundant_deliveries, 0);
    assert_eq!(analysis.total_deliveries, n * (n - 1));

    // --- knowledge curve ------------------------------------------------
    let curve = knowledge_curve(&g, &plan.schedule, &plan.origin_of_message).unwrap();
    assert_eq!(curve.len(), plan.makespan() + 1);
    assert!((curve.last().unwrap() - 1.0).abs() < 1e-12);

    // --- compaction finds nothing to improve ----------------------------
    let report = compact_schedule(&g, &plan.schedule, &plan.origin_of_message).unwrap();
    assert_eq!(report.makespan_after, report.makespan_before);
    assert_eq!(report.deliveries_pruned, 0);

    // --- annotated schedule agrees with the plain one --------------------
    let annotated = annotated_concurrent_updown(&plan.tree);
    assert_eq!(
        annotated.len(),
        plan.schedule.stats().transmissions,
        "one annotation per transmission"
    );
    assert!(annotated.iter().any(|a| a.rule == Rule::U3Lip));

    // --- gather (Lemma 2) on the same tree -------------------------------
    let gather = gather_schedule(&plan.tree);
    assert_eq!(gather.makespan(), n - 1);

    // --- alternative primitives on the same graph ------------------------
    let (bcast, time) = broadcast_schedule(&g, plan.tree.root());
    assert_eq!(time, r); // rooted at a center vertex
    assert_eq!(bcast.makespan(), r);
    let (multi, mtime) = multi_broadcast_schedule(&g, plan.tree.root(), 4);
    assert_eq!(mtime, 4 - 1 + r);
    assert_eq!(multi.makespan(), mtime);
    let bm = broadcast_model_gossip(&g);
    assert!(bm.makespan() >= n - 1);

    // --- weighted gossip over the same tree ------------------------------
    let weights = vec![1usize; n];
    let wplan = weighted_gossip(&plan.tree, &weights).unwrap();
    assert_eq!(wplan.schedule.makespan(), plan.makespan());

    // --- maintenance keeps the plan consistent through change ------------
    let mut maintainer = TreeMaintainer::new(g.clone()).unwrap();
    let chord = g
        .edges()
        .find(|&(u, v)| {
            maintainer.plan().tree.parent(u) != Some(v)
                && maintainer.plan().tree.parent(v) != Some(u)
        })
        .expect("grid has chords");
    assert_eq!(
        maintainer.remove_edge(chord.0, chord.1).unwrap(),
        MaintenanceOutcome::Kept
    );
    let o = simulate_gossip(
        maintainer.graph(),
        &maintainer.plan().schedule,
        &maintainer.plan().origin_of_message,
    )
    .unwrap();
    assert!(o.complete);

    // --- hand-build a tiny schedule through the checked builder ----------
    let p2 = path(2);
    let mut b = ScheduleBuilder::new(&p2, CommModel::Multicast, &[0, 1]).unwrap();
    b.send(0, 0, 0, &[1]).unwrap();
    b.send(0, 1, 1, &[0]).unwrap();
    let hand = b.finish();
    assert!(simulate_gossip(&p2, &hand, &[0, 1]).unwrap().complete);
    assert_eq!(hand.makespan(), 1); // the optimal swap

    // --- the line specialization beats the generic plan by one -----------
    let p5 = path(5);
    let generic = GossipPlanner::new(&p5).unwrap().plan().unwrap().makespan();
    assert_eq!(line_gossip_schedule(5).makespan() + 1, generic);
}

#[test]
fn prelude_algorithm_variants_agree_on_guarantees() {
    let g = hypercube(4);
    let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
    let n = tree.n();
    let r = tree.height() as usize;
    assert_eq!(concurrent_updown(&tree).makespan(), n + r);
    assert_eq!(simple_gossip(&tree).makespan(), 2 * n + r - 3);
    let ud = updown_gossip(&tree).makespan();
    assert!((n - 1..=2 * n + r - 3).contains(&ud));
    let tel = telephone_tree_gossip(&tree).makespan();
    assert!(tel >= n + r);
    assert!(ring_gossip_schedule(&g).is_some()); // hypercubes are Hamiltonian
    assert!(gossip_lower_bound(&g) >= n - 1);
}
