//! # multigossip
//!
//! A production-quality Rust implementation of **Gonzalez's gossiping
//! algorithm for the multicasting communication environment** (IPPS 2001;
//! journal version in IEEE TPDS): communication schedules of length at most
//! `n + r` for all-to-all broadcast on an arbitrary `n`-processor network of
//! radius `r`, under the model where each processor may multicast one
//! message per round and receive at most one message per round.
//!
//! This crate is a facade over the workspace:
//!
//! - [`graph`] — CSR graphs, BFS, radius/diameter, minimum-depth spanning
//!   trees, rooted trees with DFS preorder ranges ([`gossip_graph`]);
//! - [`model`] — the synchronous multicast communication model: rounds,
//!   schedules, rule validation, simulation, per-vertex trace tables
//!   ([`gossip_model`]);
//! - [`core`] — the scheduling algorithms: **ConcurrentUpDown** (`n + r`),
//!   the **Simple** (`2n + r - 3`) and **UpDown** baselines, broadcast,
//!   telephone-model baselines, lower bounds, exact and randomized search,
//!   weighted gossiping, the online/distributed executor, and the
//!   self-healing [`ResilientExecutor`](gossip_core::ResilientExecutor)
//!   for execution under seeded fault plans ([`gossip_core`]);
//! - [`workloads`] — generators and the paper's named instances
//!   ([`gossip_workloads`]).
//!
//! ## Quickstart
//!
//! ```
//! use multigossip::prelude::*;
//!
//! // Build any connected network (here: a 4x4 torus would also do).
//! let g = ring(8);
//!
//! // Plan gossip with the paper's pipeline: minimum-depth spanning tree +
//! // ConcurrentUpDown schedule.
//! let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
//!
//! // The headline guarantee: schedule length <= n + r.
//! assert!(plan.schedule.makespan() <= 8 + 4);
//!
//! // Machine-check the schedule against every model rule, end to end.
//! let outcome = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap();
//! assert!(outcome.complete);
//! ```

pub use gossip_core as core;
pub use gossip_graph as graph;
pub use gossip_model as model;
pub use gossip_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use gossip_core::{
        annotated_concurrent_updown, broadcast_model_gossip, broadcast_schedule, concurrent_updown,
        gather_schedule, gossip_lower_bound, line_gossip_schedule, multi_broadcast_schedule,
        ring_gossip_schedule, simple_gossip, telephone_tree_gossip, updown_gossip, weighted_gossip,
        GossipPlan, GossipPlanner, RecoveryReport, ResilientExecutor, TreeMaintainer,
    };
    pub use gossip_graph::{
        bfs, distance_metrics, is_connected, min_depth_spanning_tree, ChildOrder, Graph,
        GraphBuilder, RootedTree,
    };
    pub use gossip_model::{
        analyze_schedule, compact_schedule, knowledge_curve, simulate_gossip, CommModel, CommRound,
        FaultPlan, Schedule, ScheduleBuilder, ScheduleStats, Simulator,
    };
    pub use gossip_workloads::{
        binary_tree, complete, grid, hypercube, path, petersen, random_connected, ring, star, torus,
    };
}
