//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde's [`Value`] tree. Supports the full JSON grammar (with `\uXXXX`
//! escapes); numbers parse to unsigned/signed/float by shape.

#![forbid(unsafe_code)]

pub use serde::value::{DeError as Error, Number, Value};
use serde::{Deserialize, Serialize};

/// Serializes a value into its JSON tree. (Infallible here; the `Result`
/// mirrors the real API.)
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a JSON tree into a typed value.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Renders compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders human-indented JSON (two spaces, like the real crate).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        // Debug formatting prints the shortest round-trip form and always
        // keeps a decimal point ("1.0", not "1").
        Number::F(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        Number::F(_) => out.push_str("null"),
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(&format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(&format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(&format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(&format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(&format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error::new(&format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: \uD800-\uDBFF followed by \uDC00-\uDFFF.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or_else(|| Error::new("bad surrogate"))?;
                                    let lo = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| Error::new("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("bad surrogate pair"))?
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::new("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(&format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::from_f64)
                .map_err(|_| Error::new("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::from_i64)
                .map_err(|_| Error::new("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::from_u64)
                .map_err(|_| Error::new("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let text = r#"{"a": 1, "b": [true, null, -2, 3.5], "c": {"nested": "hi\nthere"}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][3].as_f64(), Some(3.5));
        assert_eq!(v["c"]["nested"].as_str(), Some("hi\nthere"));
        let rendered = to_string(&v).unwrap();
        let back: Value = from_str(&rendered).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_renders_and_parses() {
        let v = Value::Object(vec![
            ("x".to_string(), Value::from_u64(7)),
            ("y".to_string(), Value::Array(vec![Value::from_f64(1.0)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"x\": 7"));
        assert!(pretty.contains("1.0"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn typed_round_trip() {
        let orig: Vec<Option<u32>> = vec![Some(3), None, Some(7)];
        let text = to_string(&orig).unwrap();
        assert_eq!(text, "[3,null,7]");
        let back: Vec<Option<u32>> = from_str(&text).unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<u32>("\"no\"").is_err());
    }
}
