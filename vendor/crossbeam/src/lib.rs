//! Offline stand-in for `crossbeam`: bounded channels with crossbeam's
//! `Sender: Clone` surface, backed by `std::sync::mpsc::sync_channel`.

#![forbid(unsafe_code)]

/// Multi-producer single-consumer channels.
pub mod channel {
    /// Send half of a bounded channel (cloneable).
    #[derive(Debug, Clone)]
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    /// Receive half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Error returned when all receivers have been dropped.
    pub type SendError<T> = std::sync::mpsc::SendError<T>;
    /// Error returned when all senders have been dropped.
    pub type RecvError = std::sync::mpsc::RecvError;

    /// Creates a bounded channel with the given capacity. `send` blocks when
    /// the buffer is full (capacity 0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Blocking send; errors only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors only if all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn round_trip() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        });
    }

    #[test]
    fn disconnect_errors() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx2, rx2) = channel::bounded::<u32>(1);
        drop(tx2);
        assert!(rx2.recv().is_err());
    }
}
