//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! implements exactly the API surface the workspace uses: `SmallRng`
//! (xoshiro256++ seeded by splitmix64), `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle,
//! choose}`. Streams are deterministic per seed but do NOT match upstream
//! `rand` streams.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an `RngCore` (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Lemire-style unbiased-enough mapping of 64 random bits into `[0, len)`.
fn index_below<R: RngCore + ?Sized>(rng: &mut R, len: u64) -> u64 {
    assert!(len > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * len as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let len = (self.end - self.start) as u64;
                self.start + index_below(rng, len) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u32, u64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded through
    /// splitmix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{index_below, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean badly off");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((150..350).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_some() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
