//! Offline stand-in for `criterion`.
//!
//! Provides the benchmark-definition API this workspace's benches use
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`, the
//! `criterion_group!` / `criterion_main!` macros) backed by simple
//! wall-clock sampling with a per-benchmark time budget. Running with
//! `--test` (as `cargo test` does for bench targets) executes each
//! routine once, so benches act as smoke tests.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_benchmark(name, sample_size, test_mode, None, f);
        self
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration; reported as throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (messages, deliveries, edge relaxations, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(
            &label,
            self.sample_size,
            self.test_mode,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.sample_size, self.test_mode, self.throughput, f);
        self
    }

    /// Ends the group (report lines are emitted as benchmarks run).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing mean ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration iteration (doubles as the only iteration in test mode).
        let t0 = Instant::now();
        black_box(routine());
        let single = t0.elapsed();
        if self.test_mode {
            self.mean_ns = single.as_nanos() as f64;
            return;
        }
        // Batch iterations so each sample is long enough to time reliably,
        // under an overall per-benchmark budget.
        let target_sample = Duration::from_millis(2).as_nanos();
        let per_sample = ((target_sample / single.as_nanos().max(1)).max(1) as usize).min(1_000);
        let budget = Duration::from_millis(400);
        let start = Instant::now();
        let mut total_ns = 0.0;
        let mut iters = 0usize;
        for _ in 0..self.sample_size {
            let s = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            total_ns += s.elapsed().as_nanos() as f64;
            iters += per_sample;
            if start.elapsed() > budget {
                break;
            }
        }
        self.mean_ns = total_ns / iters as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        test_mode,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let mean = bencher.mean_ns;
    let time = if mean >= 1e9 {
        format!("{:.3} s", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} µs", mean / 1e3)
    } else {
        format!("{mean:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            let rate = n as f64 / (mean / 1e9);
            println!("{label}: {time}/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            let rate = n as f64 / (mean / 1e9);
            println!("{label}: {time}/iter ({rate:.0} B/s)");
        }
        _ => println!("{label}: {time}/iter"),
    }
}

/// Bundles benchmark functions into a named runner, optionally with a
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: true,
        };
        let mut group = c.benchmark_group("demo");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
            b.iter(|| {
                calls += 1;
                n * 2
            })
        });
        group.finish();
        assert!(calls >= 1);
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
    }

    #[test]
    fn sampling_mode_measures() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
        };
        c.bench_function("spin", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }
}
