//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: integer ranges, tuples, `Vec<S>`, `collection::vec`,
//! `bool::weighted` / `bool::ANY`, `prop_map` / `prop_flat_map` / `boxed`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Generation is deterministic (the RNG is seeded per case index), failing
//! cases are reported with their case number, and there is no shrinking.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Deterministic splitmix64-based RNG; one stream per test case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for case number `case` (fixed seed schedule, so failures
        /// reproduce across runs).
        pub fn for_case(case: u64) -> TestRng {
            TestRng {
                state: 0x6a09_e667_f3bc_c908 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// The next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi)`; `hi` must be > `lo`.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(hi > lo);
            let span = hi - lo;
            // Widening-multiply rejection-free mapping; bias is negligible
            // for the small spans tests use.
            lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// `true` with probability `p`.
        pub fn bernoulli(&mut self, p: f64) -> bool {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the strategy
        /// `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    // Object-safe inner trait so `BoxedStrategy` can erase strategies whose
    // trait has generic methods.
    trait DynStrategy<T> {
        fn dyn_value(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.below(*self.start() as u64, *self.end() as u64 + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.new_value(rng),
                self.1.new_value(rng),
                self.2.new_value(rng),
            )
        }
    }

    // A vector of strategies generates a vector with one value per element.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.new_value(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoLenRange {
        /// Picks a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.below(self.start as u64, self.end as u64) as usize
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fair coin flip strategy; see [`ANY`].
    pub struct Any;

    /// Generates `true` / `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    /// Generates `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.bernoulli(self.p)
        }
    }
}

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The case count a test actually runs: the `PROPTEST_CASES` environment
/// variable, when set to a positive integer, overrides the configured
/// value (so a nightly job can run every suite harder without touching
/// source). Unlike upstream proptest — where the variable only feeds the
/// `Default` config — the override here also applies to explicit
/// `with_cases` configs; this workspace tunes per-test counts in source
/// and uses the variable purely as a global multiplier knob.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(configured)
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that generates inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(
        $(#[$meta:meta])*
        fn $test_name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $test_name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..u64::from($crate::resolve_cases(config.cases)) {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $parm = $crate::strategy::Strategy::new_value(
                            &$strategy,
                            &mut proptest_rng,
                        );
                    )+
                    let result: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(message) = result {
                        panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing proptest case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(format!(
                        "prop_assert_eq failed: `{l:?}` != `{r:?}`"
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(format!(
                        "prop_assert_eq failed: `{l:?}` != `{r:?}`: {}",
                        format!($($fmt)+)
                    ));
                }
            }
        }
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(7);
        for _ in 0..200 {
            let v = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2usize..=5).new_value(&mut rng);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn collection_vec_respects_len_range() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..10, 1..5).new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = (0u64..1_000_000).prop_map(|x| x * 2);
        let a = s.new_value(&mut crate::test_runner::TestRng::for_case(3));
        let b = s.new_value(&mut crate::test_runner::TestRng::for_case(3));
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_cases_honors_env_override() {
        // No env var (the normal test environment): configured wins.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::resolve_cases(40), 40);
        }
        // Garbage and zero never override (checked via the parser the env
        // path uses: set/unset would race with concurrently running
        // proptest-macro tests in this same binary).
        assert_eq!("oops".trim().parse::<u32>().ok().filter(|&c| c > 0), None);
        assert_eq!("0".trim().parse::<u32>().ok().filter(|&c| c > 0), None);
        assert_eq!(
            "1024".trim().parse::<u32>().ok().filter(|&c| c > 0),
            Some(1024)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_generates_and_checks(x in 1usize..50, flips in crate::collection::vec(crate::bool::ANY, 1..8)) {
            prop_assert!(x >= 1);
            prop_assert!(!flips.is_empty(), "len = {}", flips.len());
            prop_assert_eq!(x, x);
        }

        fn boxed_and_flat_map(v in (2usize..6).prop_flat_map(|n| {
            let parts: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
            parts.prop_map(move |ps| (n, ps))
        })) {
            let (n, ps) = v;
            prop_assert_eq!(ps.len(), n - 1);
            for (i, p) in ps.iter().enumerate() {
                prop_assert!(*p < i + 1);
            }
        }
    }
}
