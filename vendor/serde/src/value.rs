//! The JSON value tree all (de)serialization in this workspace goes
//! through, plus its error type. Rendering/parsing of JSON text lives in
//! the `serde_json` stub.

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

/// A JSON document tree. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered list of key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// A non-negative integer value.
    pub fn from_u64(u: u64) -> Value {
        Value::Number(Number::U(u))
    }

    /// An integer value (non-negatives normalize to the unsigned form so
    /// equality is representation-independent).
    pub fn from_i64(i: i64) -> Value {
        if i >= 0 {
            Value::Number(Number::U(i as u64))
        } else {
            Value::Number(Number::I(i))
        }
    }

    /// A float value.
    pub fn from_f64(f: f64) -> Value {
        Value::Number(Number::F(f))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            Value::Number(Number::I(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U(u)) => i64::try_from(*u).ok(),
            Value::Number(Number::I(i)) => Some(*i),
            _ => None,
        }
    }

    /// The value as `f64` (any number converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u as f64),
            Value::Number(Number::I(i)) => Some(*i as f64),
            Value::Number(Number::F(f)) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for other shapes / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Object member access; `Null` when absent (serde_json semantics).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Array element access; `Null` when out of bounds.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Deserialization error: a message plus a reverse field path.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
    path: Vec<String>,
}

impl DeError {
    /// A new error with the given message.
    pub fn new(message: &str) -> DeError {
        DeError {
            message: message.to_string(),
            path: Vec::new(),
        }
    }

    /// Returns the error extended with an enclosing field name.
    pub fn context(mut self, field: &str) -> DeError {
        self.path.push(field.to_string());
        self
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            let mut path = self.path.clone();
            path.reverse();
            write!(f, "{}: {}", path.join("."), self.message)
        }
    }
}

impl std::error::Error for DeError {}
