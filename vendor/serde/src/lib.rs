//! Offline stand-in for `serde`.
//!
//! The real serde's visitor-based data model is far larger than this
//! workspace needs; here (de)serialization goes through one concrete
//! document type, [`value::Value`] (a JSON tree). The `serde_json` stub
//! renders and parses that tree. Derives come from the vendored
//! `serde_derive` and support named-field structs and unit enums.

#![forbid(unsafe_code)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::{DeError, Value};

/// Conversion into the JSON value tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the JSON value tree.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from_u64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from_i64(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::from_f64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::from_f64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError::new(&format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(u).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError::new(&format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(i).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new(&format!("expected number, got {v:?}")))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(&format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(&format!("expected string, got {v:?}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::new(&format!("expected array, got {v:?}")))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::new("expected 3-element array")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
