//! Offline stand-in for `rayon`: the `into_par_iter().map(..)` pipeline the
//! workspace uses, executed on `std::thread::scope` with contiguous chunks
//! (one per available core). Order-preserving, no work stealing.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator (materializes the items).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Starts a parallel pipeline over the elements.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f`, to be executed in parallel by a
    /// terminal operation ([`ParMap::collect`] / [`ParMap::try_reduce_with`]).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline awaiting a terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Runs `f` over `items` on scoped threads, one contiguous chunk per core,
/// preserving element order in the output.
fn run_chunks<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    // Like real rayon, RAYON_NUM_THREADS pins the worker count (the
    // determinism suite runs pipelines at 1 vs default and requires
    // byte-identical output); otherwise one chunk per available core.
    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    // Dismember into owned chunks first so each thread owns its slice.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon-stub worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Executes the pipeline and collects the results in order.
    pub fn collect<C: FromParallelResults<R>>(self) -> C {
        C::from_ordered(run_chunks(self.items, &self.f))
    }
}

impl<T, U, E, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(T) -> Result<U, E> + Sync,
{
    /// Rayon's fallible reduction: stops at the first `Err`, otherwise folds
    /// pairs with `op`. Returns `None` on an empty pipeline.
    pub fn try_reduce_with<O>(self, op: O) -> Option<Result<U, E>>
    where
        O: Fn(U, U) -> Result<U, E>,
    {
        let results = run_chunks(self.items, &self.f);
        let mut acc: Option<U> = None;
        for r in results {
            match r {
                Err(e) => return Some(Err(e)),
                Ok(v) => {
                    acc = Some(match acc {
                        None => v,
                        Some(a) => match op(a, v) {
                            Ok(next) => next,
                            Err(e) => return Some(Err(e)),
                        },
                    })
                }
            }
        }
        acc.map(Ok)
    }
}

/// Targets of [`ParMap::collect`].
pub trait FromParallelResults<R> {
    /// Builds the collection from order-preserved mapped results.
    fn from_ordered(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered(results: Vec<R>) -> Self {
        results
    }
}

impl<U, E> FromParallelResults<Result<U, E>> for Result<Vec<U>, E> {
    fn from_ordered(results: Vec<Result<U, E>>) -> Self {
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_result_short_circuits() {
        let ok: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(Ok::<usize, String>)
            .collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn try_reduce_with_folds() {
        let max = (0..100usize)
            .into_par_iter()
            .map(Ok::<usize, ()>)
            .try_reduce_with(|a, b| Ok(a.max(b)))
            .unwrap()
            .unwrap();
        assert_eq!(max, 99);
        let empty = (0..0usize)
            .into_par_iter()
            .map(Ok::<usize, ()>)
            .try_reduce_with(|a, b| Ok(a.max(b)));
        assert!(empty.is_none());
    }

    #[test]
    fn vec_into_par_iter() {
        let v: Vec<String> = vec!["a".into(), "b".into()];
        let lens: Vec<usize> = v.into_par_iter().map(|s: String| s.len()).collect();
        assert_eq!(lens, vec![1, 1]);
    }
}
