//! Offline stub of `serde_derive`: `#[derive(Serialize, Deserialize)]` for
//! the two shapes this workspace uses — structs with named fields and enums
//! with unit variants. Token streams are parsed by hand (no `syn`/`quote`
//! available offline); anything fancier (generics, tuple structs, data
//! variants, `#[serde(...)]` attributes) is rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skips any number of leading `#[...]` attribute token pairs.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generics are not supported (type {name})");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde stub derive: {name}: only brace-bodied items are supported, got {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_unit_variants(body),
        },
        other => panic!("serde stub derive: unsupported item kind {other}"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: field {field}: expected ':', got {other:?}"),
        }
        // Skip the type: scan to the next top-level comma, tracking angle
        // bracket depth so `Map<K, V>` commas don't terminate the field.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                panic!("serde stub derive: variant {variant}: only unit variants are supported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde stub derive: after variant {variant}: got {other:?}"),
        }
        variants.push(variant);
    }
    variants
}

/// `#[derive(Serialize)]` — structs with named fields and unit enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         let mut obj: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::value::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::String(match self {{\n{arms}}}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]` — structs with named fields and unit enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(obj.iter()\
                             .find(|(k, _)| k == \"{f}\")\
                             .map(|(_, v)| v)\
                             .unwrap_or(&::serde::value::Value::Null))\
                             .map_err(|e| e.context(\"{f}\"))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::value::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| \
                             ::serde::value::DeError::new(\"expected object for {name}\"))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::value::DeError> {{\n\
                         let s = v.as_str().ok_or_else(|| \
                             ::serde::value::DeError::new(\"expected string for {name}\"))?;\n\
                         match s {{\n{arms}\
                             other => Err(::serde::value::DeError::new(&format!(\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated invalid Deserialize impl")
}
