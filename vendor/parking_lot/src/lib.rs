//! Offline stand-in for `parking_lot`: a `Mutex` with the panic-free
//! `lock()` signature, backed by `std::sync::Mutex` (poison is swallowed,
//! matching parking_lot's no-poisoning semantics).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread. Never fails: a
    /// poisoned lock is recovered (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn into_inner() {
        assert_eq!(Mutex::new(7).into_inner(), 7);
    }
}
