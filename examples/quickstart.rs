//! Quickstart: gossip on an arbitrary network in four lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a small irregular network, plans gossip with the paper's pipeline
//! (minimum-depth spanning tree + ConcurrentUpDown), machine-verifies the
//! schedule against every communication-model rule, and prints the summary.

use multigossip::prelude::*;

fn main() {
    // An irregular 12-processor network: two rings bridged by a hub.
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0), // ring A
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4), // ring B
        (8, 0),
        (8, 4), // hub to both rings
        (8, 9),
        (9, 10),
        (10, 11), // a dangling chain
    ];
    let g = Graph::from_edges(12, &edges).expect("valid edge list");

    // Step 1+2 of the paper: minimum-depth spanning tree, then the n + r
    // schedule.
    let plan = GossipPlanner::new(&g)
        .expect("connected network")
        .plan()
        .expect("plan");

    println!(
        "network:   n = {}, m = {}, radius r = {}",
        g.n(),
        g.m(),
        plan.radius
    );
    println!("tree root: processor {}", plan.tree.root());
    println!("guarantee: n + r = {}", plan.guarantee());
    println!("makespan:  {} rounds", plan.makespan());

    // Machine-check the schedule: every rule of the multicast model, every
    // round, plus completion.
    let outcome =
        simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).expect("valid schedule");
    assert!(outcome.complete);
    println!(
        "verified:  complete at time {} with {} transmissions ({} deliveries, max fanout {})",
        outcome.completion_time.expect("complete"),
        outcome.stats.transmissions,
        outcome.stats.deliveries,
        outcome.stats.max_fanout,
    );
}
