//! Repeated gossiping on a fixed cluster: amortizing the tree.
//!
//! ```text
//! cargo run --example cluster_allreduce
//! ```
//!
//! Gossiping is the communication pattern behind allreduce-style collectives
//! (the paper's §2 lists sorting, matrix multiplication, DFT, linear
//! solvers). §4 stresses that "in many applications, one has to execute the
//! gossiping algorithms a large number of times ... The construction of the
//! tree is performed only when there is a change in the network."
//!
//! This example plans once on a torus interconnect, then reuses the tree
//! for a sequence of gossip epochs (each epoch = one allreduce's
//! communication pattern), re-verifying every epoch and timing the two
//! phases separately to show the amortization the paper argues for.

use gossip_core::Algorithm;
use multigossip::prelude::*;
use multigossip::workloads::torus;
use std::time::Instant;

fn main() {
    let g = torus(8, 8); // a 64-node cluster with a 2D-torus interconnect
    let epochs = 100;

    // Phase 1 (once per topology change): the O(mn) spanning-tree build.
    let t0 = Instant::now();
    let planner = GossipPlanner::new(&g)
        .expect("connected")
        .parallel_tree_construction(true);
    let plan = planner.plan().expect("plan");
    let build_time = t0.elapsed();

    println!(
        "cluster: {} nodes, {} links, radius {}; tree built in {:?}",
        g.n(),
        g.m(),
        plan.radius,
        build_time
    );
    println!(
        "schedule: {} rounds per gossip (guarantee n + r = {})",
        plan.makespan(),
        plan.guarantee()
    );

    // Phase 2 (every epoch): replay the fixed schedule. The schedule is
    // data-independent, so each epoch only pays simulation/transport cost.
    let t1 = Instant::now();
    let mut total_rounds = 0usize;
    for _ in 0..epochs {
        let outcome = simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).expect("valid");
        assert!(outcome.complete);
        total_rounds += outcome.rounds_executed;
    }
    let run_time = t1.elapsed();

    println!(
        "{epochs} gossip epochs: {} total rounds, {:?} total ({:?}/epoch)",
        total_rounds,
        run_time,
        run_time / epochs as u32
    );
    println!(
        "tree construction amortizes to {:.1}% of one epoch after {epochs} epochs",
        100.0 * build_time.as_secs_f64() / (run_time.as_secs_f64() / epochs as f64) / epochs as f64
    );

    // For contrast: what the same cluster pays without the concurrent
    // overlap (algorithm Simple) and without multicast links (telephone).
    for alg in [Algorithm::Simple, Algorithm::UpDown, Algorithm::Telephone] {
        let p = GossipPlanner::new(&g)
            .expect("connected")
            .algorithm(alg)
            .plan()
            .expect("plan");
        println!(
            "baseline {:>18}: {} rounds per gossip",
            alg.name(),
            p.makespan()
        );
    }
}
