//! Regenerates the paper's tables and figure claims in the terminal.
//!
//! ```text
//! cargo run --example paper_figures
//! ```
//!
//! Prints the paper's Tables 1–4 (per-vertex schedules of the Fig 5 tree,
//! computed — not hard-coded — by ConcurrentUpDown), plus the headline
//! facts about the example networks of Figs 1–3.

use gossip_core::{concurrent_updown, petersen_gossip_schedule, tree_origins};
use gossip_graph::is_hamiltonian;
use gossip_model::{identity_origins, validate_gossip_schedule, vertex_trace, CommModel};
use multigossip::prelude::*;
use multigossip::workloads::{fig4_graph, fig5_tree, n1_ring, petersen};

fn main() {
    // --- Figs 4 & 5: the worked example -------------------------------
    let g = fig4_graph();
    let tree = fig5_tree();
    let schedule = concurrent_updown(&tree);
    let outcome = simulate_gossip(&g, &schedule, &tree_origins(&tree)).expect("valid");
    assert!(outcome.complete);
    println!(
        "Fig 4/5 network: n = 16, radius 3; schedule length = {} (n + r = 19)\n",
        schedule.makespan()
    );

    for (table, vertex) in [(1, 0usize), (2, 1), (3, 4), (4, 8)] {
        println!("Table {table}: schedule for the vertex with message {vertex}");
        println!("{}", vertex_trace(&schedule, &tree, vertex).render());
    }

    // --- Fig 1: the Hamiltonian ring N1 --------------------------------
    let n = 8;
    let ring = n1_ring(n);
    let rs = gossip_core::ring_gossip_schedule(&ring).expect("rings are Hamiltonian");
    let ro = simulate_gossip(&ring, &rs, &identity_origins(n)).expect("valid");
    assert!(ro.complete);
    println!(
        "Fig 1 (N1): ring of {n} gossips in {} rounds = n - 1 (optimal)",
        rs.makespan()
    );

    // --- Fig 2: the Petersen graph -------------------------------------
    let p = petersen();
    assert!(!is_hamiltonian(&p));
    let ps = petersen_gossip_schedule();
    let po = validate_gossip_schedule(&p, &ps, &identity_origins(10), CommModel::Telephone)
        .expect("valid");
    assert!(po.complete);
    println!(
        "Fig 2 (N2): Petersen graph is NOT Hamiltonian, yet gossips in {} rounds = n - 1,\n\
         \x20           telephone-legal (every transmission a unicast)",
        ps.makespan()
    );

    // --- Fig 3 substitute: K_{2,3} --------------------------------------
    let k23 =
        Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).expect("valid");
    assert!(!is_hamiltonian(&k23));
    let mc = gossip_core::optimal_gossip_time(&k23, CommModel::Multicast, 10, 50_000_000);
    let tp = gossip_core::optimal_gossip_time(&k23, CommModel::Telephone, 10, 50_000_000);
    println!(
        "Fig 3 (N3 substitute): K_2,3 is NOT Hamiltonian; optimal gossip = {mc:?} under\n\
         \x20           multicast but {tp:?} under telephone — multicast strictly wins"
    );
}
