//! A long-running deployment on a changing network (paper §4).
//!
//! ```text
//! cargo run --example dynamic_network
//! ```
//!
//! "The construction of the tree is performed only when there is a change
//! in the network, which we assume remains constant for long periods of
//! time." This example drives a `TreeMaintainer` through a sequence of
//! link failures and repairs, showing which changes force the `O(mn)`
//! rebuild and which keep the existing plan — with every intermediate plan
//! re-verified end to end.

use gossip_core::{MaintenanceOutcome, TreeMaintainer};
use multigossip::prelude::*;
use multigossip::workloads::torus;

fn verify(m: &TreeMaintainer) {
    let o = simulate_gossip(m.graph(), &m.plan().schedule, &m.plan().origin_of_message)
        .expect("valid plan");
    assert!(o.complete);
}

fn main() {
    let mut m = TreeMaintainer::new(torus(5, 5)).expect("connected");
    verify(&m);
    println!(
        "initial: n = {}, m = {}, radius {}, makespan {} (rebuild #{})",
        m.graph().n(),
        m.graph().m(),
        m.plan().radius,
        m.plan().makespan(),
        m.rebuilds()
    );

    // A day in the life: link events against the 5x5 torus.
    let root = m.plan().tree.root();
    let tree_child = m.plan().tree.children(root)[0] as usize;
    let chord = m
        .graph()
        .edges()
        .find(|&(u, v)| m.plan().tree.parent(u) != Some(v) && m.plan().tree.parent(v) != Some(u))
        .expect("torus has chords");

    type Event = (
        &'static str,
        Box<dyn Fn(&mut TreeMaintainer) -> MaintenanceOutcome>,
    );
    let events: Vec<Event> = vec![
        (
            "non-tree link fails",
            Box::new(move |m| m.remove_edge(chord.0, chord.1).unwrap()),
        ),
        (
            "tree link fails",
            Box::new(move |m| m.remove_edge(root, tree_child).unwrap()),
        ),
        (
            "failed link repaired",
            Box::new(move |m| m.insert_edge(root, tree_child).unwrap()),
        ),
    ];

    for (what, apply) in events {
        let outcome = apply(&mut m);
        verify(&m);
        println!(
            "{what:<22} -> {outcome:?}; radius {}, makespan {}, rebuilds so far {}",
            m.plan().radius,
            m.plan().makespan(),
            m.rebuilds()
        );
    }

    println!(
        "\nonly the changes that invalidated the spanning tree or shrank the radius\n\
         paid the O(mn) reconstruction; every other event reused the standing plan."
    );
}
