//! The online protocol as a real distributed system (paper §4).
//!
//! ```text
//! cargo run --example distributed_online
//! ```
//!
//! The paper notes the algorithm "can be easily adapted for the online
//! case: the only global information they need is the value of i, j, and
//! k". This example makes that concrete: it spawns one OS thread per
//! processor, connects them with channels along the tree's links, runs
//! ConcurrentUpDown in barrier-synchronized rounds — and then proves the
//! emergent behaviour is *identical* to the offline schedule, byte for
//! byte, before replaying it through the model validator.

use gossip_core::{concurrent_updown, run_online_threaded, tree_origins};
use multigossip::prelude::*;
use multigossip::workloads::fig5_tree;

fn main() {
    // The paper's own 16-processor example tree.
    let tree = fig5_tree();
    println!(
        "spawning {} processor threads over the Fig 5 tree (height {})...",
        tree.n(),
        tree.height()
    );

    // Each thread knows only its own (i, j, k), its parent's label, and its
    // children's subtree ranges. No thread ever sees another's state.
    let distributed = run_online_threaded(&tree);

    let mut offline = concurrent_updown(&tree);
    offline.normalize();
    assert_eq!(
        distributed, offline,
        "distributed run diverged from the offline schedule"
    );
    println!(
        "distributed transcript == offline schedule: {} rounds, {} transmissions",
        distributed.makespan(),
        distributed.stats().transmissions
    );

    // And the transcript still passes every model rule.
    let g = tree.to_graph();
    let outcome =
        simulate_gossip(&g, &distributed, &tree_origins(&tree)).expect("valid transcript");
    assert!(outcome.complete);
    println!(
        "verified complete at time {} (= n + r = {})",
        outcome.completion_time.expect("complete"),
        tree.n() + tree.height() as usize
    );

    // Show one processor's view, in the paper's table format.
    println!("\nprocessor 4's local view (paper Table 3):");
    println!(
        "{}",
        gossip_model::vertex_trace(&distributed, &tree, 4).render()
    );
}
