//! Sensor-swarm scenario: why multicasting matters in wireless networks.
//!
//! ```text
//! cargo run --example sensor_swarm
//! ```
//!
//! The paper's §2 motivates multicasting with wireless communication: "a
//! transmission with power r^α reaches all receivers at a distance r". A
//! sensor field is exactly that — one radio transmission is heard by every
//! neighbour at once — so the multicast model applies natively, while a
//! wired point-to-point deployment would be stuck with the telephone model.
//!
//! This example builds seeded random sensor fields, gossips the sensors'
//! readings under both models on the same spanning tree, and prints the
//! round counts side by side. Fewer rounds = fewer radio wakeups = battery
//! life, the resource §2 highlights for static sensor networks.

use gossip_core::Algorithm;
use multigossip::prelude::*;
use multigossip::workloads::random_connected;

fn main() {
    println!(
        "{:>5} {:>7} {:>9} {:>14} {:>12} {:>7}",
        "n", "radius", "multicast", "telephone", "lower bound", "ratio"
    );
    for &n in &[16, 32, 64] {
        for seed in 0..3u64 {
            // A sensor field: random connected graph, sparse like a radio
            // neighbourhood graph.
            let g = random_connected(n, 0.08, seed);
            let planner = GossipPlanner::new(&g).expect("connected");

            let multicast = planner.clone().plan().expect("plan");
            let telephone = planner
                .clone()
                .algorithm(Algorithm::Telephone)
                .plan()
                .expect("plan");

            // Both schedules must actually work — run them through the model
            // simulator with the matching restriction.
            let mc_ok = simulate_gossip(&g, &multicast.schedule, &multicast.origin_of_message)
                .expect("valid multicast schedule");
            assert!(mc_ok.complete);
            let tp_ok = gossip_model::validate_gossip_schedule(
                &g,
                &telephone.schedule,
                &telephone.origin_of_message,
                CommModel::Telephone,
            )
            .expect("valid telephone schedule");
            assert!(tp_ok.complete);

            let lb = gossip_lower_bound(&g);
            println!(
                "{:>5} {:>7} {:>9} {:>14} {:>12} {:>6.2}x",
                n,
                multicast.radius,
                multicast.makespan(),
                telephone.makespan(),
                lb,
                telephone.makespan() as f64 / multicast.makespan() as f64,
            );
        }
    }
    println!("\nmulticast rounds stay within n + r of the n - 1 lower bound;");
    println!("the telephone model pays per-child repetition at every branching sensor.");
}
