//! JSON round-trip tests for the serializable artifacts: graphs,
//! schedules, traces, and analyses survive `serde_json` without loss.

use gossip_graph::{Graph, RootedTree, NO_PARENT};
use gossip_model::{analyze_schedule, vertex_trace, Schedule, Transmission};

fn sample_schedule() -> Schedule {
    let mut s = Schedule::new(4);
    s.add_transmission(0, Transmission::new(1, 1, vec![0, 2]));
    s.add_transmission(1, Transmission::unicast(0, 0, 1));
    s.add_transmission(2, Transmission::unicast(2, 2, 3));
    s
}

#[test]
fn graph_round_trip() {
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    let json = serde_json::to_string(&g).unwrap();
    let back: Graph = serde_json::from_str(&json).unwrap();
    assert_eq!(g, back);
    // Structural queries survive, not just equality.
    assert_eq!(back.degree(0), 2);
    assert!(back.has_edge(4, 0));
}

#[test]
fn tree_round_trip() {
    let t = RootedTree::from_parents(2, &[1, 2, NO_PARENT, 2, 3]).unwrap();
    let json = serde_json::to_string(&t).unwrap();
    let back: RootedTree = serde_json::from_str(&json).unwrap();
    assert_eq!(t, back);
    assert_eq!(back.label(2), 0);
    assert_eq!(back.subtree_range(2), (0, 4));
}

#[test]
fn schedule_round_trip() {
    let s = sample_schedule();
    let json = serde_json::to_string(&s).unwrap();
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
    assert_eq!(back.makespan(), 3);
    assert_eq!(back.stats(), s.stats());
}

#[test]
fn trace_round_trip() {
    let tree = RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 1]).unwrap();
    let mut s = Schedule::new(4);
    s.add_transmission(0, Transmission::unicast(1, 1, 0));
    let tr = vertex_trace(&s, &tree, 0);
    let json = serde_json::to_string(&tr).unwrap();
    let back: gossip_model::VertexTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(tr, back);
}

#[test]
fn analysis_round_trip() {
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
    let s = {
        let mut s = Schedule::new(4);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s
    };
    let a = analyze_schedule(&g, &s, &[0, 1, 2, 3]).unwrap();
    let json = serde_json::to_string(&a).unwrap();
    let back: gossip_model::ScheduleAnalysis = serde_json::from_str(&json).unwrap();
    assert_eq!(a, back);
}

#[test]
fn schedule_json_is_stable_shape() {
    // Downstream tooling reads these field names; changing them is a
    // breaking change that should fail a test, not surprise a user.
    let s = sample_schedule();
    let v: serde_json::Value = serde_json::to_value(&s).unwrap();
    assert!(v.get("n").is_some());
    assert!(v.get("rounds").is_some());
    let first = &v["rounds"][0]["transmissions"][0];
    for field in ["msg", "from", "to"] {
        assert!(first.get(field).is_some(), "missing field {field}");
    }
}
