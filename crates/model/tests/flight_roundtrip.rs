//! Golden flight-record round trip on C_8: record an oracle run with the
//! [`FlightRecorder`], decode the bytes, and re-encode them byte-identically.
//! The schedule is the deterministic ring rotation (every vertex forwards
//! the message it just learned to its clockwise neighbour), so the capture
//! is stable across runs and the assertions below are golden values.

use gossip_graph::GraphBuilder;
use gossip_model::{identity_origins, CommModel, Schedule, Simulator, Transmission};
use gossip_telemetry::flight::{FlightHeader, FlightLog, FlightRecord, FlightRecorder};

const N: usize = 8;

fn ring() -> gossip_graph::Graph {
    let mut b = GraphBuilder::new(N);
    for v in 0..N {
        b.add_edge_unchecked(v, (v + 1) % N).unwrap();
    }
    b.build()
}

/// Round `t`: vertex `v` multicasts message `(v - t) mod 8` — the one it
/// received last round — to `(v + 1) mod 8`. Seven rounds complete gossip.
fn rotation_schedule() -> Schedule {
    let mut s = Schedule::new(N);
    for t in 0..N - 1 {
        for v in 0..N {
            let m = ((v + N - t) % N) as u32;
            s.add_transmission(t, Transmission::new(m, v, vec![(v + 1) % N]));
        }
    }
    s.trim();
    s
}

fn header() -> FlightHeader {
    FlightHeader {
        n: N as u32,
        n_msgs: N as u32,
        radius: 4,
        engine: "oracle".to_string(),
        graph_digest: 0xc8c8,
        schedule_digest: 0x5eed,
        fault_digest: 0,
        origins: (0..N as u32).collect(),
    }
}

#[test]
fn c8_capture_roundtrips_byte_identically() {
    let g = ring();
    let schedule = rotation_schedule();
    let rec = FlightRecorder::new(header());
    let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(N)).unwrap();
    let outcome = sim.run_recorded(&schedule, &rec).unwrap();
    assert!(outcome.complete);
    assert_eq!(outcome.rounds_executed, N - 1);

    let bytes = rec.finish();
    assert_eq!(&bytes[..4], b"GFR1", "magic prefix");

    let log = FlightLog::decode(&bytes).unwrap();
    assert_eq!(log.encode(), bytes, "decode -> encode must be the identity");

    // Golden shape: 8 senders per round for 7 rounds, no losses, and the
    // knowledge curve ends at all 64 (vertex, message) pairs.
    assert_eq!(log.header.n, N as u32);
    assert_eq!(log.header.engine, "oracle");
    assert_eq!(log.rounds(), N - 1);
    assert_eq!(log.txs().len(), N * (N - 1));
    assert!(log.losses().is_empty());
    let curve = log.known_pairs_curve();
    assert_eq!(curve.first(), Some(&(0, 2 * N as u64)));
    assert_eq!(curve.last(), Some(&((N - 2) as u32, (N * N) as u64)));
}

#[test]
fn c8_capture_decodes_to_the_recorded_transmissions() {
    let g = ring();
    let schedule = rotation_schedule();
    let rec = FlightRecorder::new(header());
    let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(N)).unwrap();
    sim.run_recorded(&schedule, &rec).unwrap();

    let log = FlightLog::decode(&rec.finish()).unwrap();
    // Every scheduled transmission appears with its exact round, message,
    // sender, and destination set.
    let txs = log.txs();
    for (t, round) in schedule.rounds.iter().enumerate() {
        for tx in &round.transmissions {
            let want: Vec<u32> = tx.to.iter().map(|&d| d as u32).collect();
            assert!(
                txs.iter().any(|ft| ft.round == t as u32
                    && ft.msg == tx.msg
                    && ft.from == tx.from as u32
                    && ft.dests == want.as_slice()),
                "transmission round {t} msg {} from {} missing from capture",
                tx.msg,
                tx.from
            );
        }
    }
    // A second decode of the re-encoded bytes yields the same records.
    let again = FlightLog::decode(&log.encode()).unwrap();
    let records: Vec<&FlightRecord> = log.records.iter().collect();
    let records2: Vec<&FlightRecord> = again.records.iter().collect();
    assert_eq!(records, records2);
}
