//! Property-based tests for the communication-model crate: the bitset vs a
//! std oracle, the simulator vs a naive hold-set tracker, and the
//! consistency of schedules, traces, and analysis.

use gossip_graph::{Graph, GraphBuilder};
use gossip_model::{
    analyze_schedule, identity_origins, simulate_gossip, BitSet, CommModel, CommRound, Schedule,
    Simulator, Transmission,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random connected graph (random tree plus extras).
fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        (
            parents,
            proptest::collection::vec(proptest::bool::weighted(0.25), len),
        )
            .prop_map(move |(ps, mask)| {
                let mut b = GraphBuilder::new(n);
                let mut present = HashSet::new();
                for (i, p) in ps.into_iter().enumerate() {
                    b.add_edge_unchecked(p, i + 1).unwrap();
                    present.insert((p.min(i + 1), p.max(i + 1)));
                }
                for (on, &(u, v)) in mask.iter().zip(&pairs) {
                    if *on && !present.contains(&(u, v)) {
                        b.add_edge_unchecked(u, v).unwrap();
                    }
                }
                b.build()
            })
    })
}

/// Generates a *valid* random gossip schedule on `g` by running a seeded
/// greedy flood (every round, a random maximal set of useful deliveries).
fn random_valid_schedule(g: &Graph, seed: u64) -> Schedule {
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let n = g.n();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut hold: Vec<HashSet<u32>> = (0..n).map(|p| HashSet::from([p as u32])).collect();
    let mut s = Schedule::new(n);
    for t in 0..4 * n {
        if hold.iter().all(|h| h.len() == n) {
            break;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut sending: Vec<Option<u32>> = vec![None; n];
        let mut dests: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut receiving = vec![false; n];
        for &r in &order {
            if hold[r].len() == n || receiving[r] {
                continue;
            }
            let mut nbrs: Vec<usize> = g.neighbors(r).collect();
            nbrs.shuffle(&mut rng);
            'outer: for s_ in nbrs {
                match sending[s_] {
                    Some(m) => {
                        if !hold[r].contains(&m) {
                            dests[s_].push(r);
                            receiving[r] = true;
                            break 'outer;
                        }
                    }
                    None => {
                        let mut msgs: Vec<u32> = hold[s_].difference(&hold[r]).copied().collect();
                        msgs.sort_unstable();
                        if let Some(&m) = msgs.first() {
                            sending[s_] = Some(m);
                            dests[s_].push(r);
                            receiving[r] = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        for p in 0..n {
            if let Some(m) = sending[p] {
                for &d in &dests[p] {
                    hold[d].insert(m);
                }
                s.add_transmission(t, Transmission::new(m, p, dests[p].clone()));
            }
        }
    }
    s.trim();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BitSet behaves exactly like HashSet<usize> over random op sequences.
    #[test]
    fn bitset_matches_hashset(ops in proptest::collection::vec((0usize..64, proptest::bool::ANY), 1..200)) {
        let mut bs = BitSet::new(64);
        let mut hs: HashSet<usize> = HashSet::new();
        for (v, _insert) in ops {
            prop_assert_eq!(bs.insert(v), hs.insert(v));
            prop_assert_eq!(bs.len(), hs.len());
            prop_assert_eq!(bs.contains(v), hs.contains(&v));
        }
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_hs.sort_unstable();
        from_bs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }

    /// Randomly generated greedy schedules are always accepted by the
    /// validator and complete gossip.
    #[test]
    fn random_valid_schedules_validate(g in arb_connected(10), seed in 0u64..500) {
        let s = random_valid_schedule(&g, seed);
        let o = simulate_gossip(&g, &s, &identity_origins(g.n())).unwrap();
        prop_assert!(o.complete);
        prop_assert!(o.rounds_executed <= 4 * g.n());
        // The universal lower bound holds for *any* valid schedule.
        prop_assert!(s.makespan() >= g.n() - 1);
    }

    /// The simulator's hold tracking matches a naive oracle round by round.
    #[test]
    fn simulator_matches_naive_oracle(g in arb_connected(8), seed in 0u64..200) {
        let s = random_valid_schedule(&g, seed);
        let n = g.n();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(n)).unwrap();
        let mut oracle: Vec<HashSet<u32>> =
            (0..n).map(|p| HashSet::from([p as u32])).collect();
        let empty = CommRound::new();
        for t in 0..s.makespan() {
            let round = s.rounds.get(t).unwrap_or(&empty);
            sim.step(round).unwrap();
            for tx in &round.transmissions {
                for &d in &tx.to {
                    oracle[d].insert(tx.msg);
                }
            }
            for (p, holds) in oracle.iter().enumerate().take(n) {
                prop_assert_eq!(sim.holds(p).len(), holds.len(), "p = {} t = {}", p, t);
                for &m in holds {
                    prop_assert!(sim.holds(p).contains(m as usize));
                }
            }
        }
    }

    /// normalize() preserves semantics: stats, makespan, and simulation
    /// outcome are unchanged; a second normalize is a no-op.
    #[test]
    fn normalize_is_semantic_identity(g in arb_connected(8), seed in 0u64..100) {
        let s = random_valid_schedule(&g, seed);
        let mut norm = s.clone();
        norm.normalize();
        prop_assert_eq!(norm.makespan(), s.makespan());
        prop_assert_eq!(norm.stats(), s.stats());
        let a = simulate_gossip(&g, &s, &identity_origins(g.n())).unwrap();
        let b = simulate_gossip(&g, &norm, &identity_origins(g.n())).unwrap();
        prop_assert_eq!(a, b);
        let mut twice = norm.clone();
        twice.normalize();
        prop_assert_eq!(twice, norm);
    }

    /// Analysis invariants: delivery counts match stats; message completion
    /// times are within the makespan; sends/receives per processor add up.
    #[test]
    fn analysis_consistent_with_stats(g in arb_connected(8), seed in 0u64..100) {
        let s = random_valid_schedule(&g, seed);
        let a = analyze_schedule(&g, &s, &identity_origins(g.n())).unwrap();
        let stats = s.stats();
        prop_assert_eq!(a.total_deliveries, stats.deliveries);
        prop_assert_eq!(a.recv_rounds.iter().sum::<usize>(), stats.deliveries);
        prop_assert_eq!(a.send_rounds.iter().sum::<usize>(), stats.transmissions);
        for m in 0..g.n() {
            let c = a.message_completion[m];
            prop_assert!(c.is_some(), "message {} incomplete", m);
            prop_assert!(c.unwrap() <= s.makespan());
        }
        prop_assert_eq!(
            a.link_loads.iter().map(|&(_, _, u)| u).sum::<usize>(),
            stats.deliveries
        );
    }
}
