//! Error types for schedule validation and simulation.

use std::fmt;

/// A violation of the communication model's rules, produced by the
/// validator/simulator. Each variant pins the offending round so failures in
/// generated schedules are debuggable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A transmission named a processor id `>= n`.
    ProcessorOutOfRange {
        /// Round index (time at which the send happens).
        round: usize,
        /// Offending processor id.
        proc: usize,
        /// Number of processors.
        n: usize,
    },
    /// A transmission named a message id `>= n` (gossiping has exactly one
    /// message per processor).
    MessageOutOfRange {
        /// Round index.
        round: usize,
        /// Offending message id.
        msg: u32,
        /// Number of messages.
        n: usize,
    },
    /// A processor appeared as the sender of two transmissions in one round
    /// (violates "each processor sends at most one message").
    DuplicateSender {
        /// Round index.
        round: usize,
        /// The processor that sent twice.
        sender: usize,
    },
    /// A processor appeared in two destination sets in one round (violates
    /// "every processor receives at most one message").
    DuplicateReceiver {
        /// Round index.
        round: usize,
        /// The processor that would receive twice.
        receiver: usize,
    },
    /// A destination was not adjacent to the sender in the network.
    NotAdjacent {
        /// Round index.
        round: usize,
        /// Sending processor.
        sender: usize,
        /// Non-adjacent destination.
        receiver: usize,
    },
    /// A sender multicast a message it does not hold at send time.
    MessageNotHeld {
        /// Round index.
        round: usize,
        /// Sending processor.
        sender: usize,
        /// The message it does not hold.
        msg: u32,
    },
    /// A destination set was empty (a no-op transmission is always a bug in
    /// a generated schedule).
    EmptyDestination {
        /// Round index.
        round: usize,
        /// Sending processor.
        sender: usize,
    },
    /// A transmission's destination set violates the restricted model in
    /// force (e.g. more than one destination under the telephone model).
    ModelViolation {
        /// Round index.
        round: usize,
        /// Sending processor.
        sender: usize,
        /// Description of the restriction that failed.
        reason: String,
    },
    /// A sender targeted the same destination twice in one transmission.
    DuplicateDestination {
        /// Round index.
        round: usize,
        /// Sending processor.
        sender: usize,
        /// The repeated destination.
        receiver: usize,
    },
    /// The origin table did not assign exactly one message per processor.
    BadOriginTable {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A fault plan referenced processors or links outside the network, or
    /// carried an out-of-range loss rate.
    InvalidFaultPlan {
        /// Description of the inconsistency.
        reason: String,
    },
    /// Graph/schedule size mismatch.
    SizeMismatch {
        /// Processors in the graph.
        graph_n: usize,
        /// Processors implied by the schedule.
        schedule_n: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ProcessorOutOfRange { round, proc, n } => {
                write!(f, "round {round}: processor {proc} out of range (n = {n})")
            }
            ModelError::MessageOutOfRange { round, msg, n } => {
                write!(f, "round {round}: message {msg} out of range (n = {n})")
            }
            ModelError::DuplicateSender { round, sender } => {
                write!(f, "round {round}: processor {sender} sends twice")
            }
            ModelError::DuplicateReceiver { round, receiver } => {
                write!(f, "round {round}: processor {receiver} receives twice")
            }
            ModelError::NotAdjacent {
                round,
                sender,
                receiver,
            } => {
                write!(
                    f,
                    "round {round}: {sender} -> {receiver} is not a network link"
                )
            }
            ModelError::MessageNotHeld { round, sender, msg } => {
                write!(
                    f,
                    "round {round}: processor {sender} does not hold message {msg}"
                )
            }
            ModelError::EmptyDestination { round, sender } => {
                write!(f, "round {round}: processor {sender} multicast to nobody")
            }
            ModelError::ModelViolation {
                round,
                sender,
                reason,
            } => {
                write!(f, "round {round}: processor {sender}: {reason}")
            }
            ModelError::DuplicateDestination {
                round,
                sender,
                receiver,
            } => {
                write!(
                    f,
                    "round {round}: {sender} lists destination {receiver} twice"
                )
            }
            ModelError::BadOriginTable { reason } => write!(f, "bad origin table: {reason}"),
            ModelError::InvalidFaultPlan { reason } => write!(f, "invalid fault plan: {reason}"),
            ModelError::SizeMismatch {
                graph_n,
                schedule_n,
            } => {
                write!(
                    f,
                    "graph has {graph_n} processors, schedule built for {schedule_n}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}
