//! # gossip-model
//!
//! The synchronous multicast communication model of Gonzalez's gossiping
//! paper, as an executable artifact:
//!
//! - [`Transmission`] / [`CommRound`]: the paper's `(m, l, D)` tuples and
//!   conflict-free rounds;
//! - [`Schedule`]: a sequence of rounds with the paper's timing convention
//!   (sent at `t`, received at `t + 1`) and summary [`ScheduleStats`];
//! - [`CommModel`]: multicast / telephone / broadcast destination rules;
//! - [`Simulator`]: executes schedules while enforcing *every* model rule,
//!   tracking hold sets, and reporting completion — the trust anchor all
//!   scheduling algorithms are verified against;
//! - [`FlatSchedule`] / [`SimKernel`]: the replay fast path — schedules
//!   flattened once into round-major CSR arrays, knowledge sets as flat
//!   `u64` bitset words, same rules and errors as the oracle simulator;
//! - [`trace`]: per-vertex tables in the exact format of the paper's
//!   Tables 1–4;
//! - [`provenance`]: the causal first-delivery DAG of a run (who first
//!   told whom, and when), critical paths against the `n + r` bound, and
//!   Chrome-trace export;
//! - [`fault_plan`] / [`lossy`]: seeded environment faults (message loss,
//!   link outages, crash-stop processors) and the degraded execution mode
//!   that records losses and residual work instead of erroring;
//! - [`churn`]: seeded, schema-versioned topology-change scripts
//!   ([`ChurnPlan`]) applied mid-run by `gossip_core`'s churn executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bitset;
pub mod builder;
pub mod churn;
pub mod compact;
pub mod error;
pub mod fault_plan;
pub mod faults;
pub mod flat_schedule;
pub mod kernel;
pub mod lossy;
pub mod models;
pub mod provenance;
pub mod round;
pub mod schedule;
pub mod simulator;
pub mod trace;

pub use analysis::{
    analyze_schedule, knowledge_curve, render_gantt, render_sparkline, ScheduleAnalysis,
};
pub use bitset::BitSet;
pub use builder::ScheduleBuilder;
pub use churn::{ChurnEvent, ChurnOp, ChurnPlan, CHURN_PLAN_SCHEMA_VERSION};
pub use compact::{compact_schedule, verify_compaction, CompactionReport};
pub use error::ModelError;
pub use fault_plan::{Crash, FaultPlan, LinkOutage, FAULT_PLAN_SCHEMA_VERSION};
pub use faults::{inject_fault, Fault};
pub use flat_schedule::FlatSchedule;
pub use kernel::SimKernel;
pub use lossy::{LossCause, LossyOutcome, LostDelivery};
pub use models::CommModel;
pub use provenance::{
    schedule_chrome_trace, trace_gossip, trace_gossip_lossy, Delivery, PathStep, ProvenanceTrace,
    RoundUtil, VertexActivity,
};
pub use round::{CommRound, Transmission};
pub use schedule::{Schedule, ScheduleStats};
pub use simulator::{simulate_gossip, validate_gossip_schedule, RoundProbe, SimOutcome, Simulator};
pub use trace::{full_trace, vertex_trace, VertexTrace};

/// The identity origin table: message `m` originates at processor `m`.
///
/// This is the labeling the paper uses after DFS-relabeling the tree; the
/// scheduling crate works in label space where it always applies.
pub fn identity_origins(n: usize) -> Vec<usize> {
    (0..n).collect()
}
