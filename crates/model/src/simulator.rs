//! Execution of schedules under the communication model, with full rule
//! validation.
//!
//! The simulator is the trust anchor of the whole reproduction: every
//! schedule emitted by every algorithm is run through it, and it enforces
//! each rule of the paper's §1 model on every round:
//!
//! 1. each processor receives at most one message per round;
//! 2. each processor sends at most one message per round;
//! 3. destinations are adjacent to the sender in the network;
//! 4. a sender holds the message at send time (receives land *before*
//!    sends within a time step, so a message received at `t` may be
//!    forwarded at `t`);
//! 5. the model-specific destination restriction
//!    ([`CommModel::check_destinations`]).

use crate::bitset::BitSet;
use crate::error::ModelError;
use crate::models::CommModel;
use crate::round::CommRound;
use crate::schedule::{Schedule, ScheduleStats};
use gossip_graph::Graph;
use gossip_telemetry::{Recorder, RecorderExt, Value};

/// Stateful executor of communication rounds over a network.
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_model::{Simulator, CommModel, CommRound, Transmission};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// // Message m originates at processor m.
/// let mut sim = Simulator::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
///
/// // Round at time 0: processor 1 multicasts its message to both neighbours.
/// let round = CommRound::from_transmissions(vec![Transmission::new(1, 1, vec![0, 2])]);
/// sim.step(&round).unwrap();
/// assert!(sim.holds(0).contains(1));
/// assert!(sim.holds(2).contains(1));
/// assert!(!sim.gossip_complete());
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'g> {
    // Fields are `pub(crate)` so the lossy execution mode (`crate::lossy`)
    // can extend stepping without widening the public API.
    pub(crate) g: &'g Graph,
    pub(crate) model: CommModel,
    pub(crate) hold: Vec<BitSet>,
    pub(crate) time: usize,
    // Round-stamped scratch tables: `x_stamp[p] == round_stamp` means p
    // already sent/received this round. Avoids clearing O(n) arrays per round.
    pub(crate) send_stamp: Vec<u64>,
    pub(crate) recv_stamp: Vec<u64>,
    pub(crate) round_stamp: u64,
    // Number of (processor, message) pairs currently known, maintained
    // incrementally so coverage probes are O(1).
    pub(crate) known_pairs: usize,
    pub(crate) n_msgs: usize,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator where message `m` initially resides only at
    /// processor `origin_of_message[m]`.
    ///
    /// The origin table must be a permutation of `0..n` (gossiping: one
    /// message per processor). For generalized instances — weighted
    /// gossiping, pipelined batches — use [`Simulator::with_origins`].
    pub fn new(
        g: &'g Graph,
        model: CommModel,
        origin_of_message: &[usize],
    ) -> Result<Self, ModelError> {
        let n = g.n();
        if origin_of_message.len() != n {
            return Err(ModelError::BadOriginTable {
                reason: format!("{} origins for {n} processors", origin_of_message.len()),
            });
        }
        let mut seen = vec![false; n];
        for (m, &p) in origin_of_message.iter().enumerate() {
            if p < n && seen.get(p).copied().unwrap_or(false) {
                return Err(ModelError::BadOriginTable {
                    reason: format!("processor {p} originates two messages (message {m})"),
                });
            }
            if p < n {
                seen[p] = true;
            }
        }
        Self::with_origins(g, model, origin_of_message)
    }

    /// Creates a simulator over an arbitrary origin table: `origins.len()`
    /// messages, each starting at one processor (a processor may originate
    /// any number of messages — the weighted/pipelined setting).
    pub fn with_origins(
        g: &'g Graph,
        model: CommModel,
        origins: &[usize],
    ) -> Result<Self, ModelError> {
        let n = g.n();
        let n_msgs = origins.len();
        let mut hold = vec![BitSet::new(n_msgs); n];
        let mut known_pairs = 0;
        for (m, &p) in origins.iter().enumerate() {
            if p >= n {
                return Err(ModelError::BadOriginTable {
                    reason: format!("message {m} originates at out-of-range processor {p}"),
                });
            }
            if hold[p].insert(m) {
                known_pairs += 1;
            }
        }
        Ok(Simulator {
            g,
            model,
            hold,
            time: 0,
            send_stamp: vec![0; n],
            recv_stamp: vec![0; n],
            round_stamp: 0,
            known_pairs,
            n_msgs,
        })
    }

    /// The current time (number of rounds executed).
    pub fn time(&self) -> usize {
        self.time
    }

    /// The hold set of processor `p` at the current time.
    pub fn holds(&self, p: usize) -> &BitSet {
        &self.hold[p]
    }

    /// Whether every processor holds every message.
    pub fn gossip_complete(&self) -> bool {
        self.hold.iter().all(BitSet::is_full)
    }

    /// Whether every processor holds message `m` (broadcast completion).
    pub fn everyone_holds(&self, m: usize) -> bool {
        self.hold.iter().all(|h| h.contains(m))
    }

    /// Number of (processor, message) pairs currently known.
    pub fn known_pairs(&self) -> usize {
        self.known_pairs
    }

    /// Fraction of all (processor, message) pairs currently known, in
    /// `[0, 1]`; 1.0 means gossip is complete.
    pub fn coverage(&self) -> f64 {
        let total = self.g.n() * self.n_msgs;
        if total == 0 {
            1.0
        } else {
            self.known_pairs as f64 / total as f64
        }
    }

    /// Executes one round: validates every transmission against the current
    /// hold sets and model rules, then applies all receives.
    ///
    /// On error the simulator state is unchanged (validation happens before
    /// any mutation), so a caller can inspect the failing state.
    pub fn step(&mut self, round: &CommRound) -> Result<(), ModelError> {
        let n = self.g.n();
        let t = self.time;
        self.round_stamp += 1;
        let stamp = self.round_stamp;

        for tx in &round.transmissions {
            if tx.from >= n {
                return Err(ModelError::ProcessorOutOfRange {
                    round: t,
                    proc: tx.from,
                    n,
                });
            }
            let n_msgs = self.hold[0].capacity();
            if tx.msg as usize >= n_msgs {
                return Err(ModelError::MessageOutOfRange {
                    round: t,
                    msg: tx.msg,
                    n: n_msgs,
                });
            }
            if tx.to.is_empty() {
                return Err(ModelError::EmptyDestination {
                    round: t,
                    sender: tx.from,
                });
            }
            if self.send_stamp[tx.from] == stamp {
                return Err(ModelError::DuplicateSender {
                    round: t,
                    sender: tx.from,
                });
            }
            self.send_stamp[tx.from] = stamp;
            if !self.hold[tx.from].contains(tx.msg as usize) {
                return Err(ModelError::MessageNotHeld {
                    round: t,
                    sender: tx.from,
                    msg: tx.msg,
                });
            }
            self.model
                .check_destinations(self.g, tx)
                .map_err(|reason| ModelError::ModelViolation {
                    round: t,
                    sender: tx.from,
                    reason,
                })?;
            let mut prev: Option<usize> = None;
            for &d in &tx.to {
                if d >= n {
                    return Err(ModelError::ProcessorOutOfRange {
                        round: t,
                        proc: d,
                        n,
                    });
                }
                if prev == Some(d) {
                    return Err(ModelError::DuplicateDestination {
                        round: t,
                        sender: tx.from,
                        receiver: d,
                    });
                }
                prev = Some(d);
                if !self.g.has_edge(tx.from, d) {
                    return Err(ModelError::NotAdjacent {
                        round: t,
                        sender: tx.from,
                        receiver: d,
                    });
                }
                if self.recv_stamp[d] == stamp {
                    return Err(ModelError::DuplicateReceiver {
                        round: t,
                        receiver: d,
                    });
                }
                self.recv_stamp[d] = stamp;
            }
        }

        // All checks passed; apply receives (they land at time t + 1).
        for tx in &round.transmissions {
            for &d in &tx.to {
                if self.hold[d].insert(tx.msg as usize) {
                    self.known_pairs += 1;
                }
            }
        }
        self.time += 1;
        Ok(())
    }

    /// [`Simulator::step`] plus a per-round probe. The traffic figures come
    /// straight from the round (validation guarantees each destination is a
    /// distinct receiver), so probing adds no extra pass over state.
    pub fn step_probed(&mut self, round: &CommRound) -> Result<RoundProbe, ModelError> {
        self.step(round)?;
        let mut deliveries = 0;
        let mut max_fanout = 0;
        for tx in &round.transmissions {
            deliveries += tx.to.len();
            max_fanout = max_fanout.max(tx.to.len());
        }
        Ok(RoundProbe {
            round: self.time - 1,
            sent: round.transmissions.len(),
            deliveries,
            max_fanout,
            idle_receivers: self.g.n() - deliveries,
            coverage: self.coverage(),
        })
    }

    /// Runs a whole schedule, recording when gossip first completes.
    pub fn run(&mut self, schedule: &Schedule) -> Result<SimOutcome, ModelError> {
        if schedule.n != self.g.n() {
            return Err(ModelError::SizeMismatch {
                graph_n: self.g.n(),
                schedule_n: schedule.n,
            });
        }
        let mut completion_time = if self.gossip_complete() {
            Some(self.time)
        } else {
            None
        };
        let makespan = schedule.makespan();
        for round in &schedule.rounds[..makespan] {
            self.step(round)?;
            if completion_time.is_none() && self.gossip_complete() {
                completion_time = Some(self.time);
            }
        }
        Ok(SimOutcome {
            complete: self.gossip_complete(),
            rounds_executed: makespan,
            completion_time,
            stats: schedule.stats(),
        })
    }

    /// Runs a whole schedule collecting one [`RoundProbe`] per round (the
    /// hold-set coverage curve, traffic, and idle-receiver profile).
    pub fn run_probed(
        &mut self,
        schedule: &Schedule,
    ) -> Result<(SimOutcome, Vec<RoundProbe>), ModelError> {
        if schedule.n != self.g.n() {
            return Err(ModelError::SizeMismatch {
                graph_n: self.g.n(),
                schedule_n: schedule.n,
            });
        }
        let mut completion_time = if self.gossip_complete() {
            Some(self.time)
        } else {
            None
        };
        let makespan = schedule.makespan();
        let mut probes = Vec::with_capacity(makespan);
        for round in &schedule.rounds[..makespan] {
            probes.push(self.step_probed(round)?);
            if completion_time.is_none() && self.gossip_complete() {
                completion_time = Some(self.time);
            }
        }
        Ok((
            SimOutcome {
                complete: self.gossip_complete(),
                rounds_executed: makespan,
                completion_time,
                stats: schedule.stats(),
            },
            probes,
        ))
    }

    /// Runs a whole schedule, streaming per-round probes into `recorder`:
    /// a `round` event per round, `sim/*` counters and histograms, and
    /// final `sim/completion_time` / `sim/coverage` gauges, all under one
    /// `simulate` span. Recorders that opt into
    /// [`Recorder::wants_transmissions`] (the flight recorder) also get
    /// every transmission, before that round's event. With a disabled
    /// recorder this is exactly [`Simulator::run`].
    pub fn run_recorded(
        &mut self,
        schedule: &Schedule,
        recorder: &dyn Recorder,
    ) -> Result<SimOutcome, ModelError> {
        if !recorder.enabled() {
            return self.run(schedule);
        }
        let _span = recorder.span("simulate");
        let wants_tx = recorder.wants_transmissions();
        let (outcome, probes) = self.run_probed(schedule)?;
        let total_pairs = (self.hold.len() * self.n_msgs) as f64;
        let mut dests: Vec<u32> = Vec::new();
        for (round, probe) in schedule.rounds.iter().zip(&probes) {
            if wants_tx {
                for tx in &round.transmissions {
                    // One scratch buffer for the whole run — per-tx capture
                    // must not allocate on the hot path.
                    dests.clear();
                    dests.extend(tx.to.iter().map(|&d| d as u32));
                    recorder.transmission(probe.round, tx.msg, tx.from as u32, &dests);
                }
            }
            let known = (probe.coverage * total_pairs).round();
            recorder.counter("sim/sent", probe.sent as u64);
            recorder.counter("sim/deliveries", probe.deliveries as u64);
            recorder.observe("sim/fanout_max", probe.max_fanout as f64);
            recorder.observe("sim/idle_receivers", probe.idle_receivers as f64);
            // Live knowledge-curve gauges (top-level names, matching the
            // Prometheus registry: gossip_round_current / gossip_known_pairs).
            recorder.gauge("round_current", (probe.round + 1) as f64);
            recorder.gauge("known_pairs", known);
            recorder.event(
                "round",
                &[
                    ("round", Value::from_u64(probe.round as u64)),
                    ("sent", Value::from_u64(probe.sent as u64)),
                    ("deliveries", Value::from_u64(probe.deliveries as u64)),
                    ("max_fanout", Value::from_u64(probe.max_fanout as u64)),
                    (
                        "idle_receivers",
                        Value::from_u64(probe.idle_receivers as u64),
                    ),
                    ("coverage", Value::from_f64(probe.coverage)),
                    ("known_pairs", Value::from_u64(known as u64)),
                ],
            );
        }
        recorder.gauge("sim/rounds", outcome.rounds_executed as f64);
        recorder.gauge("sim/coverage", self.coverage());
        if let Some(t) = outcome.completion_time {
            recorder.gauge("sim/completion_time", t as f64);
        }
        Ok(outcome)
    }
}

/// Per-round observation emitted by [`Simulator::step_probed`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoundProbe {
    /// The time at which the round executed.
    pub round: usize,
    /// Transmissions sent this round.
    pub sent: usize,
    /// Total deliveries (= distinct receivers; the model enforces one
    /// receive per processor per round).
    pub deliveries: usize,
    /// Largest multicast fan-out among this round's transmissions.
    pub max_fanout: usize,
    /// Processors that received nothing this round.
    pub idle_receivers: usize,
    /// Fraction of (processor, message) pairs known after the round.
    pub coverage: f64,
}

/// What a full schedule run established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Whether every processor ended holding every message.
    pub complete: bool,
    /// Rounds executed (the schedule makespan).
    pub rounds_executed: usize,
    /// The first time at which gossip was complete, if it ever was.
    pub completion_time: Option<usize>,
    /// Aggregate statistics of the executed schedule.
    pub stats: ScheduleStats,
}

/// Convenience: run `schedule` on `g` under the multicast model and report
/// the outcome. `origin_of_message[m]` is the processor where message `m`
/// starts.
pub fn simulate_gossip(
    g: &Graph,
    schedule: &Schedule,
    origin_of_message: &[usize],
) -> Result<SimOutcome, ModelError> {
    Simulator::new(g, CommModel::Multicast, origin_of_message)?.run(schedule)
}

/// Convenience: validate `schedule` under an arbitrary model and require
/// completion; returns the outcome, or an error describing the first rule
/// violation.
///
/// Backed by the bitset [`crate::SimKernel`] (the outcome and errors are
/// bit-identical to running the oracle [`Simulator`], which remains
/// available for differential checking).
pub fn validate_gossip_schedule(
    g: &Graph,
    schedule: &Schedule,
    origin_of_message: &[usize],
    model: CommModel,
) -> Result<SimOutcome, ModelError> {
    let mut kernel = crate::kernel::SimKernel::new(g, model, origin_of_message)?;
    if schedule.n != g.n() {
        return Err(ModelError::SizeMismatch {
            graph_n: g.n(),
            schedule_n: schedule.n,
        });
    }
    kernel.run(&crate::flat_schedule::FlatSchedule::from_schedule(schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Transmission;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    fn identity_origins(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn forwarding_within_same_round_is_legal() {
        // Message received at time t may be sent at time t: the receive at
        // t=1 (sent at t=0) can be forwarded in round 1.
        let g = path3();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(3)).unwrap();
        sim.step(&CommRound::from_transmissions(vec![Transmission::unicast(
            0, 0, 1,
        )]))
        .unwrap();
        sim.step(&CommRound::from_transmissions(vec![Transmission::unicast(
            0, 1, 2,
        )]))
        .unwrap();
        assert!(sim.holds(2).contains(0));
    }

    #[test]
    fn cannot_send_unheld_message() {
        let g = path3();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(3)).unwrap();
        let err = sim
            .step(&CommRound::from_transmissions(vec![Transmission::unicast(
                2, 0, 1,
            )]))
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::MessageNotHeld {
                round: 0,
                sender: 0,
                msg: 2
            }
        );
    }

    #[test]
    fn duplicate_receiver_rejected() {
        let g = Graph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(3)).unwrap();
        let round = CommRound::from_transmissions(vec![
            Transmission::unicast(0, 0, 2),
            Transmission::unicast(1, 1, 2),
        ]);
        assert_eq!(
            sim.step(&round).unwrap_err(),
            ModelError::DuplicateReceiver {
                round: 0,
                receiver: 2
            }
        );
        // Validation precedes mutation: nothing was delivered.
        assert!(!sim.holds(2).contains(0));
        assert_eq!(sim.time(), 0);
    }

    #[test]
    fn duplicate_sender_rejected() {
        let g = path3();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(3)).unwrap();
        let round = CommRound::from_transmissions(vec![
            Transmission::unicast(1, 1, 0),
            Transmission::unicast(1, 1, 2),
        ]);
        assert_eq!(
            sim.step(&round).unwrap_err(),
            ModelError::DuplicateSender {
                round: 0,
                sender: 1
            }
        );
    }

    #[test]
    fn non_adjacent_rejected() {
        let g = path3();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(3)).unwrap();
        let round = CommRound::from_transmissions(vec![Transmission::unicast(0, 0, 2)]);
        assert_eq!(
            sim.step(&round).unwrap_err(),
            ModelError::NotAdjacent {
                round: 0,
                sender: 0,
                receiver: 2
            }
        );
    }

    #[test]
    fn telephone_rejects_multicast() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let mut sim = Simulator::new(&g, CommModel::Telephone, &identity_origins(3)).unwrap();
        let round = CommRound::from_transmissions(vec![Transmission::new(0, 0, vec![1, 2])]);
        assert!(matches!(
            sim.step(&round).unwrap_err(),
            ModelError::ModelViolation { .. }
        ));
    }

    #[test]
    fn bad_origin_tables() {
        let g = path3();
        assert!(Simulator::new(&g, CommModel::Multicast, &[0, 0, 1]).is_err());
        assert!(Simulator::new(&g, CommModel::Multicast, &[0, 1]).is_err());
        assert!(Simulator::new(&g, CommModel::Multicast, &[0, 1, 3]).is_err());
    }

    #[test]
    fn ring_gossip_completes_in_n_minus_1() {
        // The paper's Fig 1 schedule: everyone forwards clockwise.
        let n = 6;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut schedule = Schedule::new(n);
        for t in 0..n - 1 {
            for p in 0..n {
                // At time t, processor p forwards the message that
                // originated n..p-t places back (mod n).
                let msg = ((p + n - t) % n) as u32;
                schedule.add_transmission(t, Transmission::unicast(msg, p, (p + 1) % n));
            }
        }
        let outcome = simulate_gossip(&g, &schedule, &identity_origins(n)).unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.completion_time, Some(n - 1));
    }

    #[test]
    fn incomplete_schedule_reports_incomplete() {
        let g = path3();
        let mut schedule = Schedule::new(3);
        schedule.add_transmission(0, Transmission::unicast(0, 0, 1));
        let outcome = simulate_gossip(&g, &schedule, &identity_origins(3)).unwrap();
        assert!(!outcome.complete);
        assert_eq!(outcome.completion_time, None);
    }

    #[test]
    fn size_mismatch_rejected() {
        let g = path3();
        let schedule = Schedule::new(4);
        assert!(matches!(
            simulate_gossip(&g, &schedule, &identity_origins(3)).unwrap_err(),
            ModelError::SizeMismatch { .. }
        ));
    }

    #[test]
    fn empty_destination_rejected() {
        let g = path3();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(3)).unwrap();
        let round = CommRound::from_transmissions(vec![Transmission::new(0, 0, vec![])]);
        assert_eq!(
            sim.step(&round).unwrap_err(),
            ModelError::EmptyDestination {
                round: 0,
                sender: 0
            }
        );
    }

    #[test]
    fn duplicate_destination_rejected() {
        let g = path3();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &identity_origins(3)).unwrap();
        let round = CommRound::from_transmissions(vec![Transmission::new(0, 0, vec![1, 1])]);
        assert_eq!(
            sim.step(&round).unwrap_err(),
            ModelError::DuplicateDestination {
                round: 0,
                sender: 0,
                receiver: 1
            }
        );
    }

    #[test]
    fn singleton_network_trivially_complete() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let schedule = Schedule::new(1);
        let outcome = simulate_gossip(&g, &schedule, &[0]).unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.completion_time, Some(0));
    }
}
