//! Seeded, schema-versioned fault plans for lossy execution.
//!
//! A [`FaultPlan`] describes *when the environment misbehaves*: per-round
//! message loss at rate `p`, per-link outages over round intervals, and
//! crash-stop processor failures at a given round. Plans are deterministic:
//! sampled loss is a pure function of `(seed, round, from, to)`, so the same
//! plan replayed over the same transcript reproduces the exact same
//! outcomes — the property the recovery executor's replay acceptance test
//! relies on.

use serde::{Deserialize, Serialize};

/// Schema version stamped into serialized fault plans and recovery
/// artifacts.
pub const FAULT_PLAN_SCHEMA_VERSION: u64 = 1;

/// A link that is down for a half-open round interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOutage {
    /// One endpoint of the link.
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
    /// First round (inclusive) at which the link is down.
    pub from_round: usize,
    /// First round at which the link is back up (exclusive end).
    pub until_round: usize,
}

/// A crash-stop failure: the processor permanently stops participating at
/// the start of round `at_round` (it neither sends nor receives from then
/// on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crash {
    /// The crashing processor.
    pub vertex: usize,
    /// The round at whose start the processor dies.
    pub at_round: usize,
}

/// A deterministic description of environment faults over an execution.
///
/// # Examples
///
/// ```
/// use gossip_model::FaultPlan;
///
/// let plan = FaultPlan::new(42).with_loss_rate(0.1).with_crash(3, 5);
/// assert!(plan.is_crashed(3, 5));
/// assert!(!plan.is_crashed(3, 4));
/// // Sampled loss is a pure function of (seed, round, from, to):
/// let a = plan.loses(7, 0, 1);
/// assert_eq!(plan.loses(7, 0, 1), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Schema version of the plan ([`FAULT_PLAN_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Seed for the per-delivery loss sampler.
    pub seed: u64,
    /// Independent per-delivery loss probability in `[0, 1]`.
    pub loss_rate: f64,
    /// Link outage intervals.
    pub outages: Vec<LinkOutage>,
    /// Crash-stop failures.
    pub crashes: Vec<Crash>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            schema_version: FAULT_PLAN_SCHEMA_VERSION,
            seed,
            loss_rate: 0.0,
            outages: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// The empty plan: nothing ever fails.
    pub fn none() -> FaultPlan {
        FaultPlan::new(0)
    }

    /// Sets the independent per-delivery loss rate (clamped to `[0, 1]`).
    pub fn with_loss_rate(mut self, p: f64) -> FaultPlan {
        self.loss_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Adds a link outage for rounds `from_round..until_round`.
    pub fn with_outage(
        mut self,
        u: usize,
        v: usize,
        from_round: usize,
        until_round: usize,
    ) -> Self {
        self.outages.push(LinkOutage {
            u,
            v,
            from_round,
            until_round,
        });
        self
    }

    /// Adds a crash-stop failure of `vertex` at the start of `at_round`.
    pub fn with_crash(mut self, vertex: usize, at_round: usize) -> FaultPlan {
        self.crashes.push(Crash { vertex, at_round });
        self
    }

    /// Whether the plan contains no faults at all (loss rate 0, no outages,
    /// no crashes). The lossy executor over such a plan behaves exactly
    /// like the strict one.
    pub fn is_trivial(&self) -> bool {
        self.loss_rate == 0.0 && self.outages.is_empty() && self.crashes.is_empty()
    }

    /// Whether `vertex` has crash-stopped by the start of `round`.
    pub fn is_crashed(&self, vertex: usize, round: usize) -> bool {
        self.crashes
            .iter()
            .any(|c| c.vertex == vertex && round >= c.at_round)
    }

    /// Whether the link `{u, v}` is down during `round` (direction-free).
    pub fn link_down(&self, u: usize, v: usize, round: usize) -> bool {
        self.outages.iter().any(|o| {
            ((o.u == u && o.v == v) || (o.u == v && o.v == u))
                && round >= o.from_round
                && round < o.until_round
        })
    }

    /// Whether the delivery `from -> to` in `round` is dropped by sampled
    /// loss. Deterministic and order-independent: a pure hash of
    /// `(seed, round, from, to)` against `loss_rate`.
    pub fn loses(&self, round: usize, from: usize, to: usize) -> bool {
        if self.loss_rate <= 0.0 {
            return false;
        }
        if self.loss_rate >= 1.0 {
            return true;
        }
        let h = mix(self
            .seed
            .wrapping_add(mix(round as u64))
            .wrapping_add(mix((from as u64) << 32 | to as u64)));
        // Map the top 53 bits to [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.loss_rate
    }

    /// The set of processors still alive at the start of `round`.
    pub fn alive_at(&self, n: usize, round: usize) -> Vec<bool> {
        let mut alive = vec![true; n];
        for c in &self.crashes {
            if c.vertex < n && round >= c.at_round {
                alive[c.vertex] = false;
            }
        }
        alive
    }

    /// Validates the plan against a network of `n` processors: crash and
    /// outage endpoints must be in range, the loss rate in `[0, 1]`.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(format!("loss rate {} outside [0, 1]", self.loss_rate));
        }
        for c in &self.crashes {
            if c.vertex >= n {
                return Err(format!("crash vertex {} out of range (n={n})", c.vertex));
            }
        }
        for o in &self.outages {
            if o.u >= n || o.v >= n {
                return Err(format!("outage link {}-{} out of range (n={n})", o.u, o.v));
            }
            if o.until_round <= o.from_round {
                return Err(format!(
                    "outage {}-{} has empty interval {}..{}",
                    o.u, o.v, o.from_round, o.until_round
                ));
            }
        }
        Ok(())
    }

    /// Parses a comma-separated crash spec list (`"3@5,7@9"` = vertex 3
    /// crashes at round 5, vertex 7 at round 9) into the plan.
    pub fn with_crash_spec(mut self, spec: &str) -> Result<FaultPlan, String> {
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (v, t) = part
                .trim()
                .split_once('@')
                .ok_or_else(|| format!("bad crash spec '{part}': expected V@T"))?;
            let vertex: usize = v
                .trim()
                .parse()
                .map_err(|_| format!("bad crash vertex '{v}'"))?;
            let at_round: usize = t
                .trim()
                .parse()
                .map_err(|_| format!("bad crash round '{t}'"))?;
            self = self.with_crash(vertex, at_round);
        }
        Ok(self)
    }

    /// Parses a comma-separated outage spec list
    /// (`"0-1@2..5,3-4@0..9"` = link {0,1} down for rounds 2..5, etc.).
    pub fn with_outage_spec(mut self, spec: &str) -> Result<FaultPlan, String> {
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (link, span) = part
                .trim()
                .split_once('@')
                .ok_or_else(|| format!("bad outage spec '{part}': expected U-V@A..B"))?;
            let (u, v) = link
                .trim()
                .split_once('-')
                .ok_or_else(|| format!("bad outage link '{link}': expected U-V"))?;
            let (a, b) = span
                .trim()
                .split_once("..")
                .ok_or_else(|| format!("bad outage interval '{span}': expected A..B"))?;
            let u: usize = u.trim().parse().map_err(|_| format!("bad vertex '{u}'"))?;
            let v: usize = v.trim().parse().map_err(|_| format!("bad vertex '{v}'"))?;
            let a: usize = a.trim().parse().map_err(|_| format!("bad round '{a}'"))?;
            let b: usize = b.trim().parse().map_err(|_| format!("bad round '{b}'"))?;
            self = self.with_outage(u, v, a, b);
        }
        Ok(self)
    }
}

/// splitmix64 finalizer: a strong 64-bit mixer, good enough to decorrelate
/// per-delivery loss coins across rounds and links.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_deterministic_and_rate_like() {
        let plan = FaultPlan::new(99).with_loss_rate(0.25);
        let mut lost = 0;
        let total = 4000;
        for r in 0..total {
            let a = plan.loses(r, 1, 2);
            assert_eq!(plan.loses(r, 1, 2), a, "replay must agree");
            if a {
                lost += 1;
            }
        }
        let rate = lost as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn loss_rate_extremes() {
        let never = FaultPlan::new(1);
        let always = FaultPlan::new(1).with_loss_rate(1.0);
        for r in 0..50 {
            assert!(!never.loses(r, 0, 1));
            assert!(always.loses(r, 0, 1));
        }
    }

    #[test]
    fn crash_and_outage_windows() {
        let plan = FaultPlan::new(0).with_crash(2, 3).with_outage(0, 1, 2, 4);
        assert!(!plan.is_crashed(2, 2));
        assert!(plan.is_crashed(2, 3));
        assert!(plan.is_crashed(2, 100));
        assert!(!plan.link_down(0, 1, 1));
        assert!(plan.link_down(0, 1, 2));
        assert!(plan.link_down(1, 0, 3), "outage is direction-free");
        assert!(!plan.link_down(0, 1, 4), "until_round is exclusive");
        let alive = plan.alive_at(4, 3);
        assert_eq!(alive, vec![true, true, false, true]);
    }

    #[test]
    fn spec_parsers() {
        let plan = FaultPlan::new(0).with_crash_spec("3@5, 7@9").unwrap();
        assert_eq!(plan.crashes.len(), 2);
        assert!(plan.is_crashed(3, 5) && plan.is_crashed(7, 9));
        let plan = FaultPlan::new(0).with_outage_spec("0-1@2..5").unwrap();
        assert!(plan.link_down(0, 1, 2) && !plan.link_down(0, 1, 5));
        assert!(FaultPlan::new(0).with_crash_spec("3-5").is_err());
        assert!(FaultPlan::new(0)
            .with_outage_spec("0-1@5..2")
            .unwrap()
            .validate(4)
            .is_err());
    }

    #[test]
    fn validate_ranges() {
        assert!(FaultPlan::new(0).with_crash(9, 0).validate(4).is_err());
        assert!(FaultPlan::new(0)
            .with_outage(0, 9, 0, 1)
            .validate(4)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_loss_rate(0.2)
            .with_crash(1, 0)
            .validate(4)
            .is_ok());
    }

    #[test]
    fn roundtrips_through_serde() {
        let plan = FaultPlan::new(7)
            .with_loss_rate(0.125)
            .with_crash(1, 2)
            .with_outage(0, 3, 1, 6);
        let v = Serialize::to_value(&plan);
        let back = FaultPlan::from_value(&v).unwrap();
        assert_eq!(back, plan);
    }
}
