//! Communication schedules: sequences of rounds, with summary statistics.

use crate::round::{CommRound, Transmission};
use serde::{Deserialize, Serialize};

/// A communication schedule: round `t`'s transmissions are *sent* at time
/// `t` and *received* at time `t + 1` (the paper's timing convention).
///
/// The **total communication time** (makespan) of a schedule with `R`
/// nonempty trailing rounds is `R`: the last sends happen at time `R - 1`
/// and arrive at time `R`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Number of processors (and of messages) this schedule is built for.
    pub n: usize,
    /// The rounds; index = send time.
    pub rounds: Vec<CommRound>,
}

impl Schedule {
    /// An empty schedule for `n` processors.
    pub fn new(n: usize) -> Self {
        Schedule {
            n,
            rounds: Vec::new(),
        }
    }

    /// Appends a transmission at send time `t`, growing the round list as
    /// needed.
    pub fn add_transmission(&mut self, t: usize, tx: Transmission) {
        if self.rounds.len() <= t {
            self.rounds.resize_with(t + 1, CommRound::new);
        }
        self.rounds[t].push(tx);
    }

    /// Drops trailing empty rounds (they contribute nothing to the
    /// makespan).
    pub fn trim(&mut self) {
        while self.rounds.last().is_some_and(CommRound::is_empty) {
            self.rounds.pop();
        }
    }

    /// The total communication time: sends span times `0..makespan()-1`,
    /// the last receive lands at time `makespan()`.
    ///
    /// Trailing empty rounds are not counted.
    pub fn makespan(&self) -> usize {
        let mut len = self.rounds.len();
        while len > 0 && self.rounds[len - 1].is_empty() {
            len -= 1;
        }
        len
    }

    /// Summary statistics over the whole schedule.
    pub fn stats(&self) -> ScheduleStats {
        let makespan = self.makespan();
        let mut transmissions = 0;
        let mut deliveries = 0;
        let mut max_fanout = 0;
        let mut busiest_round = 0;
        for r in &self.rounds[..makespan] {
            transmissions += r.transmissions.len();
            deliveries += r.deliveries();
            max_fanout = max_fanout.max(r.max_fanout());
            busiest_round = busiest_round.max(r.transmissions.len());
        }
        ScheduleStats {
            n: self.n,
            makespan,
            transmissions,
            deliveries,
            max_fanout,
            busiest_round,
        }
    }

    /// A copy of this schedule with every round moved `offset` rounds
    /// later and every message id raised by `msg_offset` — the building
    /// block for overlaying repeated gossip batches.
    pub fn shifted(&self, offset: usize, msg_offset: u32) -> Schedule {
        let mut out = Schedule::new(self.n);
        for (t, tx) in self.iter() {
            out.add_transmission(
                t + offset,
                Transmission::new(tx.msg + msg_offset, tx.from, tx.to.clone()),
            );
        }
        out
    }

    /// Overlays `other` onto this schedule round by round (no validity
    /// checking — run the result through the simulator).
    pub fn merge(&mut self, other: &Schedule) {
        assert_eq!(self.n, other.n, "schedules for different processor counts");
        for (t, tx) in other.iter() {
            self.add_transmission(t, tx.clone());
        }
    }

    /// Sorts each round's transmissions by sender id, giving schedules a
    /// canonical form so that independently generated schedules (e.g. the
    /// offline algorithm vs. the online distributed executor) can be
    /// compared with `==`.
    pub fn normalize(&mut self) {
        for round in &mut self.rounds {
            round.transmissions.sort_by_key(|t| t.from);
        }
        self.trim();
    }

    /// Iterates `(send_time, transmission)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Transmission)> + '_ {
        self.rounds
            .iter()
            .enumerate()
            .flat_map(|(t, r)| r.transmissions.iter().map(move |tx| (t, tx)))
    }
}

/// Aggregate schedule statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Number of processors.
    pub n: usize,
    /// Total communication time.
    pub makespan: usize,
    /// Number of `(m, l, D)` tuples across all rounds.
    pub transmissions: usize,
    /// Total deliveries (sum of `|D|`); gossiping needs at least
    /// `n * (n - 1)` of these.
    pub deliveries: usize,
    /// Largest multicast fan-out used anywhere.
    pub max_fanout: usize,
    /// Most transmissions in any single round.
    pub busiest_round: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_ignores_trailing_empties() {
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.rounds.resize_with(10, CommRound::new);
        assert_eq!(s.makespan(), 1);
        s.trim();
        assert_eq!(s.rounds.len(), 1);
    }

    #[test]
    fn add_transmission_grows() {
        let mut s = Schedule::new(4);
        s.add_transmission(5, Transmission::unicast(1, 1, 2));
        assert_eq!(s.rounds.len(), 6);
        assert_eq!(s.makespan(), 6);
        assert!(s.rounds[2].is_empty());
    }

    #[test]
    fn stats() {
        let mut s = Schedule::new(4);
        s.add_transmission(0, Transmission::new(0, 0, vec![1, 2, 3]));
        s.add_transmission(1, Transmission::unicast(1, 1, 0));
        s.add_transmission(1, Transmission::unicast(2, 2, 3));
        let st = s.stats();
        assert_eq!(st.makespan, 2);
        assert_eq!(st.transmissions, 3);
        assert_eq!(st.deliveries, 5);
        assert_eq!(st.max_fanout, 3);
        assert_eq!(st.busiest_round, 2);
    }

    #[test]
    fn iter_time_ordered() {
        let mut s = Schedule::new(3);
        s.add_transmission(1, Transmission::unicast(1, 1, 2));
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        let times: Vec<usize> = s.iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![0, 1]);
    }

    #[test]
    fn shifted_moves_rounds_and_messages() {
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(2, Transmission::unicast(1, 1, 2));
        let sh = s.shifted(5, 10);
        assert_eq!(sh.makespan(), 8);
        let first = sh.iter().next().unwrap();
        assert_eq!(first.0, 5);
        assert_eq!(first.1.msg, 10);
    }

    #[test]
    fn merge_overlays() {
        let mut a = Schedule::new(3);
        a.add_transmission(0, Transmission::unicast(0, 0, 1));
        let mut b = Schedule::new(3);
        b.add_transmission(0, Transmission::unicast(2, 2, 1));
        b.add_transmission(3, Transmission::unicast(1, 1, 0));
        a.merge(&b);
        assert_eq!(a.rounds[0].transmissions.len(), 2);
        assert_eq!(a.makespan(), 4);
    }

    #[test]
    #[should_panic(expected = "different processor counts")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = Schedule::new(3);
        a.merge(&Schedule::new(4));
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new(5);
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.stats().deliveries, 0);
    }
}
