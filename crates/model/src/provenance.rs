//! Schedule provenance: the causal first-delivery DAG of a simulated run.
//!
//! The simulator verifies *that* a schedule completes; this module records
//! *why*: for every `(message, vertex)` pair, the transmission that first
//! delivered the message — sender, arrival round, and transmission id.
//! Per message these first-delivery edges form a tree rooted at the
//! message's origin (each vertex has exactly one first delivery), and
//! across all messages a DAG with exactly `n·(n-1)` edges for a complete
//! gossip run.
//!
//! From the DAG this module derives the quantities the paper's Theorem 1
//! argument reasons about informally:
//!
//! - **per-message latency**: origin round 0 → the round the last vertex
//!   first learned the message;
//! - **critical paths**: the longest causal chain per message (walk back
//!   from the latest first delivery through senders to the origin), whose
//!   length is what the `n + r` bound caps;
//! - **per-round utilization**: transmissions, deliveries, and *fresh*
//!   deliveries each round (fresh / total exposes redundancy over time);
//! - **per-vertex activity/slack**: sends, receives, idle rounds, and the
//!   round each vertex became fully informed (slack = makespan − that).
//!
//! [`schedule_chrome_trace`] exports any schedule as a Chrome Trace Event
//! Format / Perfetto-compatible JSON array (one lane per processor, one
//! complete event per multicast, one instant per arrival), optionally
//! labeled with the generator rule that caused each send.

use crate::error::ModelError;
use crate::fault_plan::FaultPlan;
use crate::flat_schedule::FlatSchedule;
use crate::kernel::SimKernel;
use crate::lossy::{LossyOutcome, LostDelivery};
use crate::models::CommModel;
use crate::schedule::Schedule;
use crate::simulator::SimOutcome;
use gossip_graph::Graph;
use gossip_telemetry::{ChromeTrace, Value};

/// How a vertex first obtained a message: the delivering transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival round (the transmission was sent at `round - 1`).
    pub round: usize,
    /// The processor that sent the delivering transmission.
    pub sender: usize,
    /// Schedule-order id of the delivering transmission (0-based over
    /// `Schedule::iter`).
    pub tx_id: usize,
}

/// One step of a causal chain: `vertex` first held the message at `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// The vertex.
    pub vertex: usize,
    /// The round it first held the message (0 at the origin).
    pub round: usize,
}

/// Per-round utilization derived from the delivery record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundUtil {
    /// Send time of the round.
    pub round: usize,
    /// Transmissions sent.
    pub transmissions: usize,
    /// Total deliveries (receiver count).
    pub deliveries: usize,
    /// Deliveries that were a vertex's *first* copy of the message.
    pub first_deliveries: usize,
    /// Fraction of processors receiving this round, in `[0, 1]`.
    pub receiver_utilization: f64,
}

/// Per-vertex activity summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexActivity {
    /// The vertex.
    pub vertex: usize,
    /// Transmissions it sent.
    pub sends: usize,
    /// Deliveries it received (including redundant ones).
    pub receives: usize,
    /// First deliveries it received (`n_msgs - 1` when gossip completed
    /// and the vertex originated one message).
    pub first_receives: usize,
    /// Rounds (of `0..=makespan`) in which it neither sent nor received.
    pub idle_rounds: usize,
    /// The round it first held every message (0 if it started complete).
    pub informed_round: usize,
}

/// The causal delivery record of one simulated schedule.
#[derive(Debug, Clone)]
pub struct ProvenanceTrace {
    n: usize,
    n_msgs: usize,
    origins: Vec<usize>,
    makespan: usize,
    /// `first[msg][vertex]`; `None` at the origin (it never receives) and
    /// at vertices the message never reached.
    first: Vec<Vec<Option<Delivery>>>,
    rounds: Vec<RoundUtil>,
    sends: Vec<usize>,
    receives: Vec<usize>,
    first_receives: Vec<usize>,
    active_rounds: Vec<usize>,
}

impl ProvenanceTrace {
    /// Number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of messages.
    pub fn n_msgs(&self) -> usize {
        self.n_msgs
    }

    /// The executed makespan.
    pub fn makespan(&self) -> usize {
        self.makespan
    }

    /// The origin table the run used.
    pub fn origins(&self) -> &[usize] {
        &self.origins
    }

    /// The first delivery of `msg` to `vertex`, if any (`None` at the
    /// origin and at unreached vertices).
    pub fn first_delivery(&self, msg: usize, vertex: usize) -> Option<Delivery> {
        self.first[msg][vertex]
    }

    /// Total first-delivery edges in the DAG. A complete gossip run over a
    /// permutation origin table has exactly `n · (n - 1)`.
    pub fn edge_count(&self) -> usize {
        self.first
            .iter()
            .map(|per_vertex| per_vertex.iter().flatten().count())
            .sum()
    }

    /// The round at which the last vertex first learned `msg` (0 when the
    /// message reached nobody beyond its origin).
    pub fn message_latency(&self, msg: usize) -> usize {
        self.first[msg]
            .iter()
            .flatten()
            .map(|d| d.round)
            .max()
            .unwrap_or(0)
    }

    /// The longest causal chain of `msg`: origin first, each subsequent
    /// step the first delivery whose sender is the previous step's vertex.
    /// Among equally-late final deliveries the smallest vertex id wins, so
    /// the path is deterministic.
    pub fn critical_path(&self, msg: usize) -> Vec<PathStep> {
        let mut last: Option<(usize, Delivery)> = None;
        for (v, d) in self.first[msg].iter().enumerate() {
            if let Some(d) = d {
                let better = match last {
                    None => true,
                    Some((_, best)) => d.round > best.round,
                };
                if better {
                    last = Some((v, *d));
                }
            }
        }
        let mut chain = Vec::new();
        let Some((mut v, mut d)) = last else {
            // The message never moved: the path is the origin alone.
            return vec![PathStep {
                vertex: self.origins[msg],
                round: 0,
            }];
        };
        loop {
            chain.push(PathStep {
                vertex: v,
                round: d.round,
            });
            match self.first[msg][d.sender] {
                Some(prev) => {
                    v = d.sender;
                    d = prev;
                }
                None => {
                    // The sender is the origin (or the walk left the DAG,
                    // impossible for simulator-validated runs).
                    chain.push(PathStep {
                        vertex: d.sender,
                        round: 0,
                    });
                    break;
                }
            }
        }
        chain.reverse();
        chain
    }

    /// The message with the latest final first-delivery and that round —
    /// the critical path of the whole run, to compare against `n + r`.
    pub fn critical_message(&self) -> (usize, usize) {
        (0..self.n_msgs)
            .map(|m| (m, self.message_latency(m)))
            .max_by_key(|&(m, lat)| (lat, std::cmp::Reverse(m)))
            .unwrap_or((0, 0))
    }

    /// Per-round utilization, in round order.
    pub fn round_utilization(&self) -> &[RoundUtil] {
        &self.rounds
    }

    /// Per-vertex activity, indexed by vertex id.
    pub fn vertex_activity(&self) -> Vec<VertexActivity> {
        (0..self.n)
            .map(|v| {
                let informed_round = (0..self.n_msgs)
                    .filter_map(|m| self.first[m][v].map(|d| d.round))
                    .max()
                    .unwrap_or(0);
                VertexActivity {
                    vertex: v,
                    sends: self.sends[v],
                    receives: self.receives[v],
                    first_receives: self.first_receives[v],
                    idle_rounds: (self.makespan + 1).saturating_sub(self.active_rounds[v]),
                    informed_round,
                }
            })
            .collect()
    }

    /// Per-vertex slack against `bound` (usually `n + r`): how many rounds
    /// before the bound each vertex was fully informed.
    pub fn slack_against(&self, bound: usize) -> Vec<usize> {
        self.vertex_activity()
            .iter()
            .map(|a| bound.saturating_sub(a.informed_round))
            .collect()
    }

    /// The structured provenance artifact (`schema_version` 1): per-message
    /// critical paths and latencies, per-round utilization, and per-vertex
    /// activity/slack tables. `bound` is the guarantee to measure slack
    /// against (`n + r` for ConcurrentUpDown plans).
    pub fn to_value(&self, bound: Option<usize>) -> Value {
        let per_message: Vec<Value> = (0..self.n_msgs)
            .map(|m| {
                let path = self.critical_path(m);
                let latency = self.message_latency(m);
                let mut members = vec![
                    ("msg".to_string(), Value::from_u64(m as u64)),
                    (
                        "origin".to_string(),
                        Value::from_u64(self.origins[m] as u64),
                    ),
                    ("latency".to_string(), Value::from_u64(latency as u64)),
                    (
                        "critical_path".to_string(),
                        Value::Array(
                            path.iter()
                                .map(|s| Value::from_u64(s.vertex as u64))
                                .collect(),
                        ),
                    ),
                ];
                if let Some(b) = bound {
                    members.push((
                        "slack".to_string(),
                        Value::from_u64(b.saturating_sub(latency) as u64),
                    ));
                }
                Value::Object(members)
            })
            .collect();
        let rounds: Vec<Value> = self
            .rounds
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("round".to_string(), Value::from_u64(r.round as u64)),
                    (
                        "transmissions".to_string(),
                        Value::from_u64(r.transmissions as u64),
                    ),
                    (
                        "deliveries".to_string(),
                        Value::from_u64(r.deliveries as u64),
                    ),
                    (
                        "first_deliveries".to_string(),
                        Value::from_u64(r.first_deliveries as u64),
                    ),
                    (
                        "receiver_utilization".to_string(),
                        Value::from_f64(r.receiver_utilization),
                    ),
                ])
            })
            .collect();
        let vertices: Vec<Value> = self
            .vertex_activity()
            .iter()
            .map(|a| {
                let mut members = vec![
                    ("vertex".to_string(), Value::from_u64(a.vertex as u64)),
                    ("sends".to_string(), Value::from_u64(a.sends as u64)),
                    ("receives".to_string(), Value::from_u64(a.receives as u64)),
                    (
                        "first_receives".to_string(),
                        Value::from_u64(a.first_receives as u64),
                    ),
                    (
                        "idle_rounds".to_string(),
                        Value::from_u64(a.idle_rounds as u64),
                    ),
                    (
                        "informed_round".to_string(),
                        Value::from_u64(a.informed_round as u64),
                    ),
                ];
                if let Some(b) = bound {
                    members.push((
                        "slack".to_string(),
                        Value::from_u64(b.saturating_sub(a.informed_round) as u64),
                    ));
                }
                Value::Object(members)
            })
            .collect();
        let (crit_msg, crit_rounds) = self.critical_message();
        let mut members = vec![
            ("schema_version".to_string(), Value::from_u64(1)),
            ("kind".to_string(), Value::String("provenance".to_string())),
            ("n".to_string(), Value::from_u64(self.n as u64)),
            ("messages".to_string(), Value::from_u64(self.n_msgs as u64)),
            (
                "makespan".to_string(),
                Value::from_u64(self.makespan as u64),
            ),
            (
                "first_delivery_edges".to_string(),
                Value::from_u64(self.edge_count() as u64),
            ),
            (
                "critical_message".to_string(),
                Value::from_u64(crit_msg as u64),
            ),
            (
                "critical_path_rounds".to_string(),
                Value::from_u64(crit_rounds as u64),
            ),
        ];
        if let Some(b) = bound {
            members.push(("bound".to_string(), Value::from_u64(b as u64)));
        }
        members.push(("per_message".to_string(), Value::Array(per_message)));
        members.push(("rounds".to_string(), Value::Array(rounds)));
        members.push(("vertices".to_string(), Value::Array(vertices)));
        Value::Object(members)
    }
}

/// Runs `schedule` on `g` under `model`, validating every rule exactly as
/// [`crate::validate_gossip_schedule`] does, while recording the causal
/// first-delivery DAG. Returns the outcome plus the provenance record.
///
/// The replay itself goes through the bitset [`SimKernel`] over a
/// [`FlatSchedule`]; rule errors are bit-identical to the oracle
/// [`crate::Simulator`]'s.
pub fn trace_gossip(
    g: &Graph,
    schedule: &Schedule,
    origins: &[usize],
    model: CommModel,
) -> Result<(SimOutcome, ProvenanceTrace), ModelError> {
    let mut sim = SimKernel::with_origins(g, model, origins)?;
    if schedule.n != g.n() {
        return Err(ModelError::SizeMismatch {
            graph_n: g.n(),
            schedule_n: schedule.n,
        });
    }
    let flat = FlatSchedule::from_schedule(schedule);
    let n = g.n();
    let n_msgs = origins.len();
    let makespan = schedule.makespan();
    let mut first: Vec<Vec<Option<Delivery>>> = vec![vec![None; n]; n_msgs];
    let mut rounds = Vec::with_capacity(makespan);
    let mut sends = vec![0usize; n];
    let mut receives = vec![0usize; n];
    let mut first_receives = vec![0usize; n];
    let mut active_rounds = vec![0usize; n];
    // active_stamp[v] = last round slot (0..=makespan) in which v acted.
    let mut active_stamp = vec![usize::MAX; n];
    fn mark_active(v: usize, slot: usize, stamp: &mut [usize], count: &mut [usize]) {
        if stamp[v] != slot {
            stamp[v] = slot;
            count[v] += 1;
        }
    }

    let mut tx_id = 0usize;
    let mut completion_time = if sim.gossip_complete() {
        Some(sim.time())
    } else {
        None
    };
    for (t, round) in schedule.rounds[..makespan].iter().enumerate() {
        // Inspect hold sets *before* the step to spot first deliveries;
        // the step itself then validates and applies the round (on error
        // nothing is recorded past prior rounds).
        let mut fresh = 0usize;
        // (msg, dest, sender, tx_id) of would-be first deliveries.
        let mut pending: Vec<(usize, usize, usize, usize)> = Vec::new();
        for tx in &round.transmissions {
            for &d in &tx.to {
                if d < n && (tx.msg as usize) < n_msgs && !sim.contains(d, tx.msg as usize) {
                    pending.push((tx.msg as usize, d, tx.from, tx_id));
                }
            }
            tx_id += 1;
        }
        sim.step_round(&flat, t)?;
        // Validated: commit the observations for this round.
        let mut deliveries = 0usize;
        for tx in &round.transmissions {
            sends[tx.from] += 1;
            mark_active(tx.from, t, &mut active_stamp, &mut active_rounds);
            for &d in &tx.to {
                deliveries += 1;
                receives[d] += 1;
                mark_active(d, t + 1, &mut active_stamp, &mut active_rounds);
            }
        }
        for (msg, d, sender, id) in pending {
            first[msg][d] = Some(Delivery {
                round: t + 1,
                sender,
                tx_id: id,
            });
            first_receives[d] += 1;
            fresh += 1;
        }
        rounds.push(RoundUtil {
            round: t,
            transmissions: round.transmissions.len(),
            deliveries,
            first_deliveries: fresh,
            receiver_utilization: deliveries as f64 / n as f64,
        });
        if completion_time.is_none() && sim.gossip_complete() {
            completion_time = Some(sim.time());
        }
    }
    let outcome = SimOutcome {
        complete: sim.gossip_complete(),
        rounds_executed: makespan,
        completion_time,
        stats: schedule.stats(),
    };
    let trace = ProvenanceTrace {
        n,
        n_msgs,
        origins: origins.to_vec(),
        makespan,
        first,
        rounds,
        sends,
        receives,
        first_receives,
        active_rounds,
    };
    Ok((outcome, trace))
}

/// Runs `schedule` on `g` under `model` and the fault plan, recording the
/// causal first-delivery DAG of what *actually arrived*. Lost deliveries
/// show up as gaps: [`ProvenanceTrace::first_delivery`] stays `None` for
/// every (message, vertex) pair the faults kept apart, so
/// [`ProvenanceTrace::edge_count`] falls short of `n · (n - 1)` by exactly
/// the unreached pairs. Returns the lossy outcome, the gap-bearing trace,
/// and the loss log.
pub fn trace_gossip_lossy(
    g: &Graph,
    schedule: &Schedule,
    origins: &[usize],
    model: CommModel,
    plan: &FaultPlan,
) -> Result<(LossyOutcome, ProvenanceTrace, Vec<LostDelivery>), ModelError> {
    let mut sim = SimKernel::with_origins(g, model, origins)?;
    if schedule.n != g.n() {
        return Err(ModelError::SizeMismatch {
            graph_n: g.n(),
            schedule_n: schedule.n,
        });
    }
    let flat = FlatSchedule::from_schedule(schedule);
    let n = g.n();
    let n_msgs = origins.len();
    let makespan = schedule.makespan();
    let mut first: Vec<Vec<Option<Delivery>>> = vec![vec![None; n]; n_msgs];
    let mut rounds = Vec::with_capacity(makespan);
    let mut sends = vec![0usize; n];
    let mut receives = vec![0usize; n];
    let mut first_receives = vec![0usize; n];
    let mut active_rounds = vec![0usize; n];
    let mut active_stamp = vec![usize::MAX; n];
    fn mark_active(v: usize, slot: usize, stamp: &mut [usize], count: &mut [usize]) {
        if stamp[v] != slot {
            stamp[v] = slot;
            count[v] += 1;
        }
    }

    let mut lost = Vec::new();
    let mut delivered_total = 0usize;
    let mut tx_id = 0usize;
    for (t, round) in schedule.rounds[..makespan].iter().enumerate() {
        // Candidate first deliveries, confirmed after the lossy step by
        // checking the destination's hold set (the model's one-receive-per-
        // round rule means at most one transmission can have landed it).
        let mut pending: Vec<(usize, usize, usize, usize)> = Vec::new();
        for tx in &round.transmissions {
            for &d in &tx.to {
                if d < n && (tx.msg as usize) < n_msgs && !sim.contains(d, tx.msg as usize) {
                    pending.push((tx.msg as usize, d, tx.from, tx_id));
                }
            }
            tx_id += 1;
        }
        let lost_before = lost.len();
        let delivered = sim.step_round_lossy(&flat, t, plan, &mut lost)?;
        delivered_total += delivered;
        let mut fresh = 0usize;
        let mut deliveries = 0usize;
        for tx in &round.transmissions {
            sends[tx.from] += 1;
            mark_active(tx.from, t, &mut active_stamp, &mut active_rounds);
            for &d in &tx.to {
                // Only what landed counts as traffic in a lossy trace.
                let arrived = !lost[lost_before..]
                    .iter()
                    .any(|l| l.to == d && l.from == tx.from && l.msg == tx.msg);
                if arrived {
                    deliveries += 1;
                    receives[d] += 1;
                    mark_active(d, t + 1, &mut active_stamp, &mut active_rounds);
                }
            }
        }
        for (msg, d, sender, id) in pending {
            if sim.contains(d, msg) {
                first[msg][d] = Some(Delivery {
                    round: t + 1,
                    sender,
                    tx_id: id,
                });
                first_receives[d] += 1;
                fresh += 1;
            }
        }
        rounds.push(RoundUtil {
            round: t,
            transmissions: round.transmissions.len(),
            deliveries,
            first_deliveries: fresh,
            receiver_utilization: deliveries as f64 / n as f64,
        });
    }
    let outcome = LossyOutcome {
        rounds_executed: makespan,
        delivered: delivered_total,
        lost: lost.len(),
        complete_among_alive: sim.residual_count(plan) == 0,
    };
    let trace = ProvenanceTrace {
        n,
        n_msgs,
        origins: origins.to_vec(),
        makespan,
        first,
        rounds,
        sends,
        receives,
        first_receives,
        active_rounds,
    };
    Ok((outcome, trace, lost))
}

/// Exports `schedule` as a Chrome Trace Event Format array: one thread
/// lane per processor, a complete event per multicast (1 logical round =
/// 1 ms of trace time), and an instant event per arrival. `tag_of(time,
/// sender)` may supply a generator-rule label (e.g. `U4+D3`) shown on the
/// slice name so traces explain *which protocol rule* caused each send.
pub fn schedule_chrome_trace(
    schedule: &Schedule,
    tag_of: &dyn Fn(usize, usize) -> Option<String>,
) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.process_name(0, "schedule (logical rounds)");
    for p in 0..schedule.n {
        trace.thread_name(0, p as u64, &format!("P{p}"));
    }
    for (t, tx) in schedule.iter() {
        let ts = t as f64 * ChromeTrace::ROUND_US;
        let name = match tag_of(t, tx.from) {
            Some(tag) => format!("m{} [{tag}]", tx.msg),
            None => format!("m{}", tx.msg),
        };
        let args = vec![
            ("msg".to_string(), Value::from_u64(tx.msg as u64)),
            ("round".to_string(), Value::from_u64(t as u64)),
            ("fanout".to_string(), Value::from_u64(tx.to.len() as u64)),
            (
                "dests".to_string(),
                Value::Array(tx.to.iter().map(|&d| Value::from_u64(d as u64)).collect()),
            ),
        ];
        trace.complete(
            &name,
            "multicast",
            0,
            tx.from as u64,
            ts,
            ChromeTrace::ROUND_US,
            args,
        );
        for &d in &tx.to {
            trace.instant(
                &format!("recv m{}", tx.msg),
                "delivery",
                0,
                d as u64,
                ts + ChromeTrace::ROUND_US,
                vec![("from".to_string(), Value::from_u64(tx.from as u64))],
            );
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Transmission;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    /// The Fig 1 clockwise ring schedule: message m forwarded around.
    fn ring_schedule(n: usize) -> Schedule {
        let mut s = Schedule::new(n);
        for t in 0..n - 1 {
            for p in 0..n {
                let msg = ((p + n - t) % n) as u32;
                s.add_transmission(t, Transmission::unicast(msg, p, (p + 1) % n));
            }
        }
        s
    }

    fn identity(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn ring_dag_has_n_times_n_minus_1_edges() {
        let n = 6;
        let g = ring(n);
        let s = ring_schedule(n);
        let (o, tr) = trace_gossip(&g, &s, &identity(n), CommModel::Multicast).unwrap();
        assert!(o.complete);
        assert_eq!(tr.edge_count(), n * (n - 1));
        // Message 0 travels the whole ring: latency n - 1, path 0,1,...,n-1.
        assert_eq!(tr.message_latency(0), n - 1);
        let path = tr.critical_path(0);
        assert_eq!(
            path.iter().map(|s| s.vertex).collect::<Vec<_>>(),
            (0..n).collect::<Vec<_>>()
        );
        assert_eq!(path[0].round, 0);
        assert_eq!(path.last().unwrap().round, n - 1);
        // Rounds are strictly increasing along a causal chain.
        assert!(path.windows(2).all(|w| w[1].round > w[0].round));
    }

    #[test]
    fn first_delivery_identifies_sender_and_round() {
        let n = 4;
        let g = ring(n);
        let s = ring_schedule(n);
        let (_, tr) = trace_gossip(&g, &s, &identity(n), CommModel::Multicast).unwrap();
        // Message 2 reaches vertex 3 at round 1 from vertex 2.
        let d = tr.first_delivery(2, 3).unwrap();
        assert_eq!(d.round, 1);
        assert_eq!(d.sender, 2);
        // The origin has no first delivery.
        assert_eq!(tr.first_delivery(2, 2), None);
    }

    #[test]
    fn redundant_deliveries_do_not_add_edges() {
        // 0 sends m0 to 1 twice; only the first counts.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut s = Schedule::new(2);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(1, Transmission::unicast(0, 0, 1));
        s.add_transmission(2, Transmission::unicast(1, 1, 0));
        let (o, tr) = trace_gossip(&g, &s, &identity(2), CommModel::Multicast).unwrap();
        assert!(o.complete);
        assert_eq!(tr.edge_count(), 2);
        assert_eq!(tr.first_delivery(0, 1).unwrap().round, 1);
        let util = tr.round_utilization();
        assert_eq!(util[0].first_deliveries, 1);
        assert_eq!(util[1].first_deliveries, 0); // redundant
        assert_eq!(util[1].deliveries, 1);
    }

    #[test]
    fn vertex_activity_and_slack() {
        let n = 4;
        let g = ring(n);
        let s = ring_schedule(n);
        let (_, tr) = trace_gossip(&g, &s, &identity(n), CommModel::Multicast).unwrap();
        let act = tr.vertex_activity();
        for a in &act {
            // Every vertex sends n-1 times and receives n-1 fresh messages.
            assert_eq!(a.sends, n - 1);
            assert_eq!(a.first_receives, n - 1);
            assert_eq!(a.informed_round, n - 1);
        }
        let slack = tr.slack_against(n + n / 2);
        assert!(slack.iter().all(|&s| s == n / 2 + 1));
    }

    #[test]
    fn provenance_artifact_shape() {
        let n = 4;
        let g = ring(n);
        let s = ring_schedule(n);
        let (_, tr) = trace_gossip(&g, &s, &identity(n), CommModel::Multicast).unwrap();
        let v = tr.to_value(Some(n + 1));
        assert_eq!(v["schema_version"].as_u64(), Some(1));
        assert_eq!(v["kind"].as_str(), Some("provenance"));
        assert_eq!(
            v["first_delivery_edges"].as_u64(),
            Some((n * (n - 1)) as u64)
        );
        assert_eq!(v["per_message"].as_array().map(Vec::len), Some(n));
        assert_eq!(v["bound"].as_u64(), Some((n + 1) as u64));
        assert_eq!(v["critical_path_rounds"].as_u64(), Some((n - 1) as u64));
    }

    #[test]
    fn chrome_trace_covers_every_transmission() {
        let n = 4;
        let s = ring_schedule(n);
        let trace = schedule_chrome_trace(&s, &|_, _| None);
        let v = trace.to_value();
        let events = v.as_array().unwrap();
        let completes = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .count();
        assert_eq!(completes, s.stats().transmissions);
        let instants = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("i"))
            .count();
        assert_eq!(instants, s.stats().deliveries);
        for e in events {
            for f in ["ph", "ts", "pid", "tid"] {
                assert!(e.get(f).is_some(), "missing {f}");
            }
        }
    }

    #[test]
    fn chrome_trace_applies_rule_tags() {
        let mut s = Schedule::new(2);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        let trace = schedule_chrome_trace(&s, &|t, from| {
            (t == 0 && from == 0).then(|| "U3".to_string())
        });
        let v = trace.to_value();
        let slice = v
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["ph"].as_str() == Some("X"))
            .unwrap()
            .clone();
        assert_eq!(slice["name"].as_str(), Some("m0 [U3]"));
    }

    #[test]
    fn lossy_trace_leaves_gaps_for_lost_deliveries() {
        let n = 6;
        let g = ring(n);
        let s = ring_schedule(n);
        // Kill the link 0-1 for the whole run: nothing crosses it, so every
        // first-delivery chain through it is cut.
        let plan = FaultPlan::new(0).with_outage(0, 1, 0, n);
        let (out, tr, lost) =
            trace_gossip_lossy(&g, &s, &identity(n), CommModel::Multicast, &plan).unwrap();
        assert!(!out.complete_among_alive);
        assert!(!lost.is_empty());
        // The DAG has gaps: strictly fewer than n(n-1) edges, and vertex 1
        // never hears message 0 (its only route in this schedule is 0 -> 1).
        assert!(tr.edge_count() < n * (n - 1));
        assert_eq!(tr.first_delivery(0, 1), None);
        // A zero-fault plan reproduces the strict trace exactly.
        let (out2, tr2, lost2) = trace_gossip_lossy(
            &g,
            &s,
            &identity(n),
            CommModel::Multicast,
            &FaultPlan::none(),
        )
        .unwrap();
        assert!(out2.complete_among_alive && lost2.is_empty());
        assert_eq!(tr2.edge_count(), n * (n - 1));
    }

    #[test]
    fn invalid_schedule_propagates_error() {
        let g = ring(3);
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(1, 0, 1)); // 0 doesn't hold m1
        assert!(trace_gossip(&g, &s, &identity(3), CommModel::Multicast).is_err());
    }
}
