//! Topology churn plans: seeded, schema-versioned scripts of mid-run
//! network changes.
//!
//! A [`ChurnPlan`] is the topology counterpart of [`crate::FaultPlan`]: a
//! deterministic, serializable description of *when the network itself
//! changes* — edges appearing and disappearing, nodes leaving and
//! rejoining, links flapping down and back up — each event stamped with
//! the **absolute round** it takes effect at (the event fires before that
//! round's sends). The plan is pure data; `gossip_core`'s `ChurnExecutor`
//! applies it mid-run, invalidates the schedule entries the change killed,
//! and repairs incrementally.
//!
//! Two ways to get a plan:
//!
//! - [`ChurnPlan::generate`] draws a seeded, **connectivity-preserving**
//!   event stream (edge adds, permanent removals of non-bridge edges, and
//!   link flaps) at a per-round rate — the `--churn-rate` path, and the
//!   regime the ad-hoc radio setting implies.
//! - Hand-written plans (builders or a JSON file via `--churn-plan`) may
//!   additionally script node departures and rejoins; admissibility
//!   against a concrete starting graph is checked by
//!   [`ChurnPlan::validate_against`].

use gossip_graph::{is_connected, Graph};
use serde::{Deserialize, Serialize};

/// Version stamp for serialized churn plans.
pub const CHURN_PLAN_SCHEMA_VERSION: u64 = 1;

/// What one churn event does to the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnOp {
    /// A new edge `u — v` appears.
    EdgeAdd,
    /// Edge `u — v` disappears permanently.
    EdgeRemove,
    /// Node `u` departs: every edge incident to it vanishes with it. The
    /// node keeps its state (it is the same processor) but neither sends
    /// nor receives while away.
    NodeLeave,
    /// Node `u` returns, initially isolated — re-attach it with
    /// [`ChurnOp::EdgeAdd`] events listed *after* the join in the same
    /// round.
    NodeJoin,
    /// Edge `u — v` goes down for `down_for` rounds, then comes back — a
    /// link flap, normalized into a remove/add pair by
    /// [`ChurnPlan::normalized_events`].
    LinkFlap,
}

impl ChurnOp {
    /// Short display label (also the event label threaded into telemetry
    /// and flight-recorder CHURN records).
    pub fn label(&self) -> &'static str {
        match self {
            ChurnOp::EdgeAdd => "edge_add",
            ChurnOp::EdgeRemove => "edge_remove",
            ChurnOp::NodeLeave => "node_leave",
            ChurnOp::NodeJoin => "node_join",
            ChurnOp::LinkFlap => "link_flap",
        }
    }
}

/// One topology change, stamped with the absolute round it fires at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Absolute round the event takes effect at (before that round's
    /// sends).
    pub round: u32,
    /// What the event does.
    pub op: ChurnOp,
    /// First endpoint, or the node for [`ChurnOp::NodeLeave`] /
    /// [`ChurnOp::NodeJoin`].
    pub u: u32,
    /// Second endpoint (equals `u` for node events).
    pub v: u32,
    /// [`ChurnOp::LinkFlap`] only: how many rounds the link stays down
    /// (`>= 1`); 0 for every other op.
    pub down_for: u32,
}

impl ChurnEvent {
    /// An edge insertion at `round`.
    pub fn edge_add(round: u32, u: usize, v: usize) -> ChurnEvent {
        ChurnEvent {
            round,
            op: ChurnOp::EdgeAdd,
            u: u as u32,
            v: v as u32,
            down_for: 0,
        }
    }

    /// A permanent edge removal at `round`.
    pub fn edge_remove(round: u32, u: usize, v: usize) -> ChurnEvent {
        ChurnEvent {
            round,
            op: ChurnOp::EdgeRemove,
            u: u as u32,
            v: v as u32,
            down_for: 0,
        }
    }

    /// Node `v` departs at `round`.
    pub fn node_leave(round: u32, v: usize) -> ChurnEvent {
        ChurnEvent {
            round,
            op: ChurnOp::NodeLeave,
            u: v as u32,
            v: v as u32,
            down_for: 0,
        }
    }

    /// Node `v` rejoins at `round` (isolated; attach with same-round
    /// [`ChurnEvent::edge_add`] events listed after it).
    pub fn node_join(round: u32, v: usize) -> ChurnEvent {
        ChurnEvent {
            round,
            op: ChurnOp::NodeJoin,
            u: v as u32,
            v: v as u32,
            down_for: 0,
        }
    }

    /// Edge `u — v` flaps down at `round` for `down_for` rounds.
    pub fn link_flap(round: u32, u: usize, v: usize, down_for: u32) -> ChurnEvent {
        ChurnEvent {
            round,
            op: ChurnOp::LinkFlap,
            u: u as u32,
            v: v as u32,
            down_for,
        }
    }
}

/// A seeded, schema-versioned script of topology changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Layout version for serialized plans.
    pub schema_version: u64,
    /// The seed the plan was drawn from (informational for hand-written
    /// plans).
    pub seed: u64,
    /// The events, in firing order (ties within a round apply in listed
    /// order).
    pub events: Vec<ChurnEvent>,
}

/// The splitmix64 finalizer — the same deterministic mixer
/// `crate::FaultPlan` draws from, so churn plans are reproducible across
/// platforms and builds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` keyed by `(seed, a, b)`.
fn unit(seed: u64, a: u64, b: u64) -> f64 {
    let x =
        mix(seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xff51_afd7_ed55_8ccd));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform index draw in `[0, n)` keyed by `(seed, a, b)`.
fn index(seed: u64, a: u64, b: u64, n: usize) -> usize {
    (mix(seed ^ a.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        % n as u64) as usize
}

impl ChurnPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> ChurnPlan {
        ChurnPlan {
            schema_version: CHURN_PLAN_SCHEMA_VERSION,
            seed,
            events: Vec::new(),
        }
    }

    /// The empty plan (no topology changes at all).
    pub fn none() -> ChurnPlan {
        ChurnPlan::new(0)
    }

    /// Appends one event (builder style).
    pub fn with_event(mut self, event: ChurnEvent) -> ChurnPlan {
        self.events.push(event);
        self
    }

    /// Whether the plan changes nothing.
    pub fn is_trivial(&self) -> bool {
        self.events.is_empty()
    }

    /// The plan with every [`ChurnOp::LinkFlap`] expanded into its
    /// remove/add pair, stably sorted by round — the form executors apply.
    /// Ties within a round keep their listed order.
    pub fn normalized_events(&self) -> Vec<ChurnEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        for e in &self.events {
            match e.op {
                ChurnOp::LinkFlap => {
                    out.push(ChurnEvent::edge_remove(e.round, e.u as usize, e.v as usize));
                    out.push(ChurnEvent::edge_add(
                        e.round + e.down_for.max(1),
                        e.u as usize,
                        e.v as usize,
                    ));
                }
                _ => out.push(*e),
            }
        }
        out.sort_by_key(|e| e.round);
        out
    }

    /// The last round any (normalized) event fires at; 0 for a trivial
    /// plan.
    pub fn last_round(&self) -> u32 {
        self.normalized_events()
            .iter()
            .map(|e| e.round)
            .max()
            .unwrap_or(0)
    }

    /// Structural validation against a processor count: endpoints in
    /// range, no self-loop edges, flap durations nonzero, and a matching
    /// schema version.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if self.schema_version != CHURN_PLAN_SCHEMA_VERSION {
            return Err(format!(
                "churn plan schema {} unsupported (this build reads {CHURN_PLAN_SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        for e in &self.events {
            let (u, v) = (e.u as usize, e.v as usize);
            if u >= n || v >= n {
                return Err(format!(
                    "{} at round {} touches vertex out of range (n = {n})",
                    e.op.label(),
                    e.round
                ));
            }
            match e.op {
                ChurnOp::EdgeAdd | ChurnOp::EdgeRemove | ChurnOp::LinkFlap => {
                    if u == v {
                        return Err(format!(
                            "{} at round {} is a self-loop ({u})",
                            e.op.label(),
                            e.round
                        ));
                    }
                    if e.op == ChurnOp::LinkFlap && e.down_for == 0 {
                        return Err(format!("link_flap at round {} has down_for = 0", e.round));
                    }
                }
                ChurnOp::NodeLeave | ChurnOp::NodeJoin => {}
            }
        }
        Ok(())
    }

    /// Admissibility against a concrete starting graph: dry-runs the
    /// normalized events and rejects adds of existing edges, removals of
    /// absent edges, edges touching a departed node, departures of absent
    /// nodes, and rejoins of present nodes. An admissible plan is exactly
    /// one an executor can apply without skipping anything.
    pub fn validate_against(&self, g: &Graph) -> Result<(), String> {
        let n = g.n();
        self.validate(n)?;
        let key = |u: usize, v: usize| (u.min(v), u.max(v));
        let mut edges: std::collections::HashSet<(usize, usize)> =
            g.edges().map(|(u, v)| key(u, v)).collect();
        let mut present = vec![true; n];
        for e in self.normalized_events() {
            let (u, v) = (e.u as usize, e.v as usize);
            let whine = |what: &str| {
                Err(format!(
                    "inadmissible {} at round {}: {what}",
                    e.op.label(),
                    e.round
                ))
            };
            match e.op {
                ChurnOp::EdgeAdd => {
                    if !present[u] || !present[v] {
                        return whine("an endpoint is departed");
                    }
                    if !edges.insert(key(u, v)) {
                        return whine("edge already present");
                    }
                }
                ChurnOp::EdgeRemove => {
                    if !edges.remove(&key(u, v)) {
                        return whine("edge not present");
                    }
                }
                ChurnOp::NodeLeave => {
                    if !present[u] {
                        return whine("node already departed");
                    }
                    present[u] = false;
                    edges.retain(|&(a, b)| a != u && b != u);
                }
                ChurnOp::NodeJoin => {
                    if present[u] {
                        return whine("node already present");
                    }
                    present[u] = true;
                }
                ChurnOp::LinkFlap => unreachable!("normalized events have no flaps"),
            }
        }
        Ok(())
    }

    /// Draws a seeded, connectivity-preserving churn stream over rounds
    /// `1..=horizon`: each round, with probability `rate`, one event fires
    /// — an edge add (30%), a permanent removal of a non-bridge edge
    /// (20%), or a link flap of a non-bridge edge down for 1–3 rounds
    /// (50%). The graph (with flapped links counted as down) stays
    /// connected at every instant, so the resulting plan always heals (the
    /// property the churn executor's acceptance test leans on). Node
    /// departures are never generated — script those explicitly.
    pub fn generate(g: &Graph, rate: f64, seed: u64, horizon: u32) -> ChurnPlan {
        let mut plan = ChurnPlan::new(seed);
        let n = g.n();
        if n < 2 || rate <= 0.0 {
            return plan;
        }
        let mut cur = g.clone();
        // Links a flap took down, with the round they come back at.
        let mut down: Vec<(usize, usize, u32)> = Vec::new();
        for round in 1..=horizon {
            let mut restored = Vec::new();
            down.retain(|&(u, v, back)| {
                let live = back > round;
                if !live {
                    restored.push((u, v));
                }
                live
            });
            for (u, v) in restored {
                cur = cur.with_edge(u, v).expect("flap restores a removed edge");
            }
            if unit(seed, round as u64, 1) >= rate {
                continue;
            }
            let pick = unit(seed, round as u64, 2);
            if pick < 0.3 {
                // Add a random absent edge (skipping links a flap owns).
                for attempt in 0..32u64 {
                    let u = index(seed, round as u64, 3 + 2 * attempt, n);
                    let v = index(seed, round as u64, 4 + 2 * attempt, n);
                    let flapped = down.iter().any(|&(a, b, _)| {
                        (a, b) == (u.min(v), u.max(v)) || (a, b) == (u, v) || (a, b) == (v, u)
                    });
                    if u != v && !cur.has_edge(u, v) && !flapped {
                        plan.events.push(ChurnEvent::edge_add(round, u, v));
                        cur = cur.with_edge(u, v).expect("edge checked absent");
                        break;
                    }
                }
            } else {
                // Remove (pick < 0.5) or flap a random non-bridge edge.
                let live: Vec<(usize, usize)> = cur.edges().collect();
                for attempt in 0..32u64 {
                    let (u, v) = live[index(seed, round as u64, 5 + attempt, live.len())];
                    let candidate = cur.without_edge(u, v).expect("edge is live");
                    if is_connected(&candidate) {
                        if pick < 0.5 {
                            plan.events.push(ChurnEvent::edge_remove(round, u, v));
                        } else {
                            let dur = 1 + index(seed, round as u64, 6, 3) as u32;
                            plan.events.push(ChurnEvent::link_flap(round, u, v, dur));
                            down.push((u, v, round + dur));
                        }
                        cur = candidate;
                        break;
                    }
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn serde_roundtrip() {
        let plan = ChurnPlan::new(7)
            .with_event(ChurnEvent::edge_add(2, 0, 3))
            .with_event(ChurnEvent::link_flap(4, 1, 2, 2))
            .with_event(ChurnEvent::node_leave(6, 5))
            .with_event(ChurnEvent::node_join(9, 5));
        let v = plan.to_value();
        let back = ChurnPlan::from_value(&v).unwrap();
        assert_eq!(back, plan);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ChurnPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn normalization_expands_flaps_in_round_order() {
        let plan = ChurnPlan::new(0)
            .with_event(ChurnEvent::link_flap(3, 0, 1, 2))
            .with_event(ChurnEvent::edge_add(4, 2, 5));
        let norm = plan.normalized_events();
        assert_eq!(norm.len(), 3);
        assert_eq!(norm[0], ChurnEvent::edge_remove(3, 0, 1));
        assert_eq!(norm[1], ChurnEvent::edge_add(4, 2, 5));
        assert_eq!(norm[2], ChurnEvent::edge_add(5, 0, 1));
        assert_eq!(plan.last_round(), 5);
        assert!(!plan.is_trivial());
        assert!(ChurnPlan::none().is_trivial());
    }

    #[test]
    fn validate_rejects_malformed_events() {
        assert!(ChurnPlan::new(0)
            .with_event(ChurnEvent::edge_add(0, 0, 9))
            .validate(6)
            .is_err());
        assert!(ChurnPlan::new(0)
            .with_event(ChurnEvent::edge_add(0, 2, 2))
            .validate(6)
            .is_err());
        assert!(ChurnPlan::new(0)
            .with_event(ChurnEvent::link_flap(0, 0, 1, 0))
            .validate(6)
            .is_err());
        let mut wrong = ChurnPlan::none();
        wrong.schema_version = 99;
        assert!(wrong.validate(6).is_err());
    }

    #[test]
    fn admissibility_dry_runs_the_timeline() {
        let g = ring(6);
        // Remove a chord that was only just added: admissible.
        let ok = ChurnPlan::new(0)
            .with_event(ChurnEvent::edge_add(1, 0, 3))
            .with_event(ChurnEvent::edge_remove(2, 0, 3));
        assert!(ok.validate_against(&g).is_ok());
        // Removing it twice is not.
        let twice = ok.clone().with_event(ChurnEvent::edge_remove(3, 0, 3));
        assert!(twice.validate_against(&g).is_err());
        // Adding an existing edge is not.
        assert!(ChurnPlan::new(0)
            .with_event(ChurnEvent::edge_add(1, 0, 1))
            .validate_against(&g)
            .is_err());
        // A departed node cannot gain edges until it rejoins.
        let dead_attach = ChurnPlan::new(0)
            .with_event(ChurnEvent::node_leave(1, 2))
            .with_event(ChurnEvent::edge_add(2, 2, 4));
        assert!(dead_attach.validate_against(&g).is_err());
        let rejoin = ChurnPlan::new(0)
            .with_event(ChurnEvent::node_leave(1, 2))
            .with_event(ChurnEvent::node_join(3, 2))
            .with_event(ChurnEvent::edge_add(3, 2, 1))
            .with_event(ChurnEvent::edge_add(3, 2, 3));
        assert!(rejoin.validate_against(&g).is_ok());
    }

    #[test]
    fn generated_plans_are_deterministic_and_admissible() {
        let g = ring(10);
        let a = ChurnPlan::generate(&g, 0.5, 42, 20);
        let b = ChurnPlan::generate(&g, 0.5, 42, 20);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_trivial(), "rate 0.5 over 20 rounds fires something");
        a.validate_against(&g)
            .expect("generated plan is admissible");
        let c = ChurnPlan::generate(&g, 0.5, 43, 20);
        assert_ne!(a, c, "different seed, different plan");
        assert!(ChurnPlan::generate(&g, 0.0, 42, 20).is_trivial());
    }

    #[test]
    fn generated_plans_preserve_connectivity_throughout() {
        let g = ring(8);
        let plan = ChurnPlan::generate(&g, 0.8, 7, 30);
        // Replay the normalized timeline and check connectivity after
        // every event.
        let mut cur = g.clone();
        for e in plan.normalized_events() {
            let (u, v) = (e.u as usize, e.v as usize);
            cur = match e.op {
                ChurnOp::EdgeAdd => cur.with_edge(u, v).unwrap(),
                ChurnOp::EdgeRemove => cur.without_edge(u, v).unwrap(),
                _ => unreachable!("generator emits edge events only"),
            };
            assert!(is_connected(&cur), "disconnected after round {}", e.round);
        }
    }
}
