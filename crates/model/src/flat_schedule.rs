//! Arena-backed CSR schedule representation: the replay-side view of a
//! [`Schedule`].
//!
//! [`Schedule`] stores one `Vec<Transmission>` per round, each transmission
//! owning its own destination `Vec` — friendly to incremental construction,
//! hostile to replay: an n = 2048 gossip schedule is millions of tuples
//! scattered across twice as many allocations. [`FlatSchedule`] packs the
//! same data, in the same order, into five flat `u32` arrays (round-major
//! transmissions over CSR destination lists), built once and then replayed
//! any number of times by [`crate::SimKernel`] with zero pointer chasing.
//!
//! The conversion is lossless for every schedule a real graph can carry:
//! processor ids are stored as `u32` (ids above `u32::MAX`, impossible for
//! any in-range destination since `Graph` caps `n` well below that, are
//! saturated and thus still rejected as out-of-range by the validators).
//!
//! [`FlatSchedule::validate`] is the rayon round-parallel structural rule
//! check of the tentpole: rounds are independent for every rule except the
//! hold-set one (rule 4, execution-state dependent, enforced by the kernel
//! during replay), so each round is checked on its own core with
//! word-parallel sender/receiver dedup bitmaps.

use crate::error::ModelError;
use crate::models::CommModel;
use crate::schedule::{Schedule, ScheduleStats};
use gossip_graph::Graph;
use rayon::prelude::*;

#[inline]
fn id32(v: usize) -> u32 {
    v.min(u32::MAX as usize) as u32
}

/// A [`Schedule`] flattened into round-major CSR arrays.
///
/// Layout: transmissions of round `t` are `round_offsets[t]..round_offsets
/// [t + 1]` in `tx_msg` / `tx_from`; the destinations of transmission `i`
/// are `dest_offsets[i]..dest_offsets[i + 1]` in `dests`. Iteration order
/// is identical to [`Schedule::iter`], so transmission indices double as
/// the provenance layer's `tx_id`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSchedule {
    n: usize,
    round_offsets: Vec<u32>,
    tx_msg: Vec<u32>,
    tx_from: Vec<u32>,
    dest_offsets: Vec<u32>,
    dests: Vec<u32>,
    max_fanout: usize,
    busiest_round: usize,
}

impl FlatSchedule {
    /// Flattens `schedule` (trailing empty rounds are dropped, exactly as
    /// [`Schedule::makespan`] ignores them).
    ///
    /// # Panics
    ///
    /// Panics if the schedule has `u32::MAX` or more transmissions or
    /// deliveries — beyond any schedule this workspace can build (gossip on
    /// n = 8192 is ~67M tuples) but a hard cap of the `u32` CSR offsets.
    pub fn from_schedule(schedule: &Schedule) -> FlatSchedule {
        let _phase = gossip_telemetry::profile::phase("flatten");
        let makespan = schedule.makespan();
        let mut tx_count = 0usize;
        let mut deliveries = 0usize;
        for r in &schedule.rounds[..makespan] {
            tx_count += r.transmissions.len();
            deliveries += r.deliveries();
        }
        assert!(
            tx_count < u32::MAX as usize && deliveries < u32::MAX as usize,
            "schedule too large for u32 CSR offsets ({tx_count} transmissions, {deliveries} deliveries)"
        );
        let mut out = FlatSchedule {
            n: schedule.n,
            round_offsets: Vec::with_capacity(makespan + 1),
            tx_msg: Vec::with_capacity(tx_count),
            tx_from: Vec::with_capacity(tx_count),
            dest_offsets: Vec::with_capacity(tx_count + 1),
            dests: Vec::with_capacity(deliveries),
            max_fanout: 0,
            busiest_round: 0,
        };
        out.round_offsets.push(0);
        out.dest_offsets.push(0);
        for r in &schedule.rounds[..makespan] {
            out.busiest_round = out.busiest_round.max(r.transmissions.len());
            for tx in &r.transmissions {
                out.tx_msg.push(tx.msg);
                out.tx_from.push(id32(tx.from));
                out.max_fanout = out.max_fanout.max(tx.to.len());
                for &d in &tx.to {
                    out.dests.push(id32(d));
                }
                out.dest_offsets.push(out.dests.len() as u32);
            }
            out.round_offsets.push(out.tx_msg.len() as u32);
        }
        // Every element of the five CSR arrays is a u32 write.
        let csr_words = out.round_offsets.len()
            + out.tx_msg.len()
            + out.tx_from.len()
            + out.dest_offsets.len()
            + out.dests.len();
        gossip_telemetry::profile::count("csr_bytes", 4 * csr_words as u64);
        out
    }

    /// Assembles a `FlatSchedule` directly from its five CSR arrays — the
    /// fast planner's entry point: generators that emit straight into CSR
    /// (no `Vec`-of-tuples `Schedule`, no [`FlatSchedule::from_schedule`]
    /// pass) hand their arenas over here.
    ///
    /// `max_fanout` and `busiest_round` are derived from the arrays, so a
    /// CSR-direct build is indistinguishable (including [`PartialEq`] and
    /// [`FlatSchedule::digest`]) from flattening the equivalent `Schedule`.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are not a well-formed CSR: offsets must start
    /// at 0, be monotone, and end at the length of the array they index,
    /// and the two transmission arrays must have equal length.
    pub fn from_raw_parts(
        n: usize,
        round_offsets: Vec<u32>,
        tx_msg: Vec<u32>,
        tx_from: Vec<u32>,
        dest_offsets: Vec<u32>,
        dests: Vec<u32>,
    ) -> FlatSchedule {
        assert_eq!(tx_msg.len(), tx_from.len(), "tx arrays disagree");
        for (name, offsets, indexed_len) in [
            ("round_offsets", &round_offsets, tx_msg.len()),
            ("dest_offsets", &dest_offsets, dests.len()),
        ] {
            assert_eq!(offsets.first(), Some(&0), "{name} must start at 0");
            assert!(
                offsets.windows(2).all(|w| w[0] <= w[1]),
                "{name} must be monotone"
            );
            assert_eq!(
                *offsets.last().expect("nonempty") as usize,
                indexed_len,
                "{name} must end at the indexed array's length"
            );
        }
        assert_eq!(
            dest_offsets.len(),
            tx_msg.len() + 1,
            "one destination range per transmission"
        );
        let max_fanout = dest_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        let busiest_round = round_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        let out = FlatSchedule {
            n,
            round_offsets,
            tx_msg,
            tx_from,
            dest_offsets,
            dests,
            max_fanout,
            busiest_round,
        };
        let csr_words = out.round_offsets.len()
            + out.tx_msg.len()
            + out.tx_from.len()
            + out.dest_offsets.len()
            + out.dests.len();
        gossip_telemetry::profile::count("csr_bytes", 4 * csr_words as u64);
        out
    }

    /// Number of processors the source schedule was built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of rounds (the source schedule's makespan).
    #[inline]
    pub fn rounds(&self) -> usize {
        self.round_offsets.len() - 1
    }

    /// Total number of transmissions across all rounds.
    #[inline]
    pub fn tx_count(&self) -> usize {
        self.tx_msg.len()
    }

    /// Total number of deliveries (sum of destination-set sizes).
    #[inline]
    pub fn deliveries(&self) -> usize {
        self.dests.len()
    }

    /// The transmission index range of round `t`.
    #[inline]
    pub fn round_range(&self, t: usize) -> std::ops::Range<usize> {
        self.round_offsets[t] as usize..self.round_offsets[t + 1] as usize
    }

    /// The message id of transmission `i`.
    #[inline]
    pub fn msg_of(&self, i: usize) -> u32 {
        self.tx_msg[i]
    }

    /// The sender of transmission `i`.
    #[inline]
    pub fn from_of(&self, i: usize) -> u32 {
        self.tx_from[i]
    }

    /// The destination list of transmission `i` (same order as the source
    /// transmission's `to`).
    #[inline]
    pub fn dests_of(&self, i: usize) -> &[u32] {
        &self.dests[self.dest_offsets[i] as usize..self.dest_offsets[i + 1] as usize]
    }

    /// A stable fingerprint of the flattened schedule — the CSR arrays
    /// hashed in layout order — stamped into flight-record headers so
    /// `gossip diff` can tell whether two captures replayed the same
    /// schedule. Identical schedules digest identically regardless of
    /// which engine later executes them.
    pub fn digest(&self) -> u64 {
        let mut d = gossip_telemetry::flight::Digest::new();
        d.write_u64(self.n as u64);
        for arr in [
            &self.round_offsets,
            &self.tx_msg,
            &self.tx_from,
            &self.dest_offsets,
            &self.dests,
        ] {
            d.write_u64(arr.len() as u64);
            for &x in arr {
                d.write_u64(u64::from(x));
            }
        }
        d.finish()
    }

    /// Summary statistics — identical to [`Schedule::stats`] on the source
    /// schedule.
    pub fn stats(&self) -> ScheduleStats {
        ScheduleStats {
            n: self.n,
            makespan: self.rounds(),
            transmissions: self.tx_count(),
            deliveries: self.deliveries(),
            max_fanout: self.max_fanout,
            busiest_round: self.busiest_round,
        }
    }

    /// Round-parallel structural validation: every rule of the paper's §1
    /// model that does not depend on execution state — index ranges, empty
    /// and duplicate destinations, one send and one receive per processor
    /// per round (word-parallel dedup bitmaps), adjacency, and the
    /// model-specific fan-out restriction. The one state-dependent rule,
    /// sender-holds-message, is enforced by [`crate::SimKernel`] at replay.
    ///
    /// Rounds are checked concurrently; the reported error is the first
    /// failing rule of the earliest failing round. For a schedule whose
    /// earliest failing round only violates the hold-set rule, the oracle
    /// [`crate::Simulator`] and this pass therefore disagree on *which*
    /// error surfaces — use [`crate::SimKernel::run`] when byte-identical
    /// oracle errors matter.
    pub fn validate(&self, g: &Graph, model: CommModel, n_msgs: usize) -> Result<(), ModelError> {
        // Round checks run on rayon workers, so only the calling thread's
        // wall-clock wait is attributed (see the profiler's threading
        // caveat).
        let _phase = gossip_telemetry::profile::phase("validate");
        if self.n != g.n() {
            return Err(ModelError::SizeMismatch {
                graph_n: g.n(),
                schedule_n: self.n,
            });
        }
        (0..self.rounds())
            .into_par_iter()
            .map(|t| self.validate_round(t, g, model, n_msgs))
            .collect::<Result<Vec<()>, ModelError>>()?;
        Ok(())
    }

    /// Structural checks for one round, in the oracle's per-transmission
    /// check order (minus the hold-set rule).
    fn validate_round(
        &self,
        t: usize,
        g: &Graph,
        model: CommModel,
        n_msgs: usize,
    ) -> Result<(), ModelError> {
        let n = self.n;
        let words = n.div_ceil(64);
        let mut sent = vec![0u64; words];
        let mut received = vec![0u64; words];
        for i in self.round_range(t) {
            let from = self.tx_from[i] as usize;
            if from >= n {
                return Err(ModelError::ProcessorOutOfRange {
                    round: t,
                    proc: from,
                    n,
                });
            }
            let msg = self.tx_msg[i];
            if msg as usize >= n_msgs {
                return Err(ModelError::MessageOutOfRange {
                    round: t,
                    msg,
                    n: n_msgs,
                });
            }
            let dests = self.dests_of(i);
            if dests.is_empty() {
                return Err(ModelError::EmptyDestination {
                    round: t,
                    sender: from,
                });
            }
            let (w, b) = (from / 64, 1u64 << (from % 64));
            if sent[w] & b != 0 {
                return Err(ModelError::DuplicateSender {
                    round: t,
                    sender: from,
                });
            }
            sent[w] |= b;
            model
                .check_fanout(g.degree(from), dests.len())
                .map_err(|reason| ModelError::ModelViolation {
                    round: t,
                    sender: from,
                    reason,
                })?;
            let mut prev: Option<usize> = None;
            for &d32 in dests {
                let d = d32 as usize;
                if d >= n {
                    return Err(ModelError::ProcessorOutOfRange {
                        round: t,
                        proc: d,
                        n,
                    });
                }
                if prev == Some(d) {
                    return Err(ModelError::DuplicateDestination {
                        round: t,
                        sender: from,
                        receiver: d,
                    });
                }
                prev = Some(d);
                if !g.has_edge(from, d) {
                    return Err(ModelError::NotAdjacent {
                        round: t,
                        sender: from,
                        receiver: d,
                    });
                }
                let (w, b) = (d / 64, 1u64 << (d % 64));
                if received[w] & b != 0 {
                    return Err(ModelError::DuplicateReceiver {
                        round: t,
                        receiver: d,
                    });
                }
                received[w] |= b;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Transmission;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    fn ring_schedule(n: usize) -> Schedule {
        let mut s = Schedule::new(n);
        for t in 0..n - 1 {
            for p in 0..n {
                let msg = ((p + n - t) % n) as u32;
                s.add_transmission(t, Transmission::unicast(msg, p, (p + 1) % n));
            }
        }
        s
    }

    #[test]
    fn flattening_preserves_iteration_order_and_stats() {
        let s = ring_schedule(6);
        let flat = FlatSchedule::from_schedule(&s);
        assert_eq!(flat.stats(), s.stats());
        let mut i = 0;
        for (t, tx) in s.iter() {
            assert!(flat.round_range(t).contains(&i));
            assert_eq!(flat.msg_of(i), tx.msg);
            assert_eq!(flat.from_of(i) as usize, tx.from);
            let dests: Vec<usize> = flat.dests_of(i).iter().map(|&d| d as usize).collect();
            assert_eq!(dests, tx.to);
            i += 1;
        }
        assert_eq!(i, flat.tx_count());
    }

    #[test]
    fn trailing_empty_rounds_dropped() {
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.rounds.resize_with(7, crate::round::CommRound::new);
        let flat = FlatSchedule::from_schedule(&s);
        assert_eq!(flat.rounds(), 1);
        assert_eq!(flat.tx_count(), 1);
    }

    #[test]
    fn validate_accepts_ring_schedule() {
        let n = 8;
        let g = ring(n);
        let flat = FlatSchedule::from_schedule(&ring_schedule(n));
        assert!(flat.validate(&g, CommModel::Multicast, n).is_ok());
        // Telephone also holds (all unicasts); broadcast does not (degree 2).
        assert!(flat.validate(&g, CommModel::Telephone, n).is_ok());
        assert!(matches!(
            flat.validate(&g, CommModel::Broadcast, n).unwrap_err(),
            ModelError::ModelViolation { .. }
        ));
    }

    #[test]
    fn validate_reports_earliest_round_error() {
        let g = ring(4);
        let mut s = Schedule::new(4);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(2, Transmission::unicast(0, 0, 2)); // not adjacent
        s.add_transmission(5, Transmission::unicast(9, 0, 1)); // msg range
        let flat = FlatSchedule::from_schedule(&s);
        assert_eq!(
            flat.validate(&g, CommModel::Multicast, 4).unwrap_err(),
            ModelError::NotAdjacent {
                round: 2,
                sender: 0,
                receiver: 2
            }
        );
    }

    #[test]
    fn validate_word_dedup_catches_conflicts() {
        let g = Graph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 2));
        s.add_transmission(0, Transmission::unicast(1, 1, 2));
        let flat = FlatSchedule::from_schedule(&s);
        assert_eq!(
            flat.validate(&g, CommModel::Multicast, 3).unwrap_err(),
            ModelError::DuplicateReceiver {
                round: 0,
                receiver: 2
            }
        );
        let mut s2 = Schedule::new(3);
        s2.add_transmission(0, Transmission::unicast(0, 0, 2));
        s2.add_transmission(0, Transmission::unicast(0, 0, 2));
        let flat2 = FlatSchedule::from_schedule(&s2);
        assert_eq!(
            flat2.validate(&g, CommModel::Multicast, 3).unwrap_err(),
            ModelError::DuplicateSender {
                round: 0,
                sender: 0
            }
        );
    }

    #[test]
    fn validate_rejects_size_mismatch() {
        let g = ring(4);
        let flat = FlatSchedule::from_schedule(&Schedule::new(5));
        assert!(matches!(
            flat.validate(&g, CommModel::Multicast, 5).unwrap_err(),
            ModelError::SizeMismatch { .. }
        ));
    }

    #[test]
    fn from_raw_parts_matches_from_schedule() {
        let s = ring_schedule(6);
        let flat = FlatSchedule::from_schedule(&s);
        let rebuilt = FlatSchedule::from_raw_parts(
            flat.n,
            flat.round_offsets.clone(),
            flat.tx_msg.clone(),
            flat.tx_from.clone(),
            flat.dest_offsets.clone(),
            flat.dests.clone(),
        );
        assert_eq!(rebuilt, flat);
        assert_eq!(rebuilt.digest(), flat.digest());
        assert_eq!(rebuilt.stats(), flat.stats());
    }

    #[test]
    fn from_raw_parts_empty() {
        let flat = FlatSchedule::from_raw_parts(4, vec![0], vec![], vec![], vec![0], vec![]);
        assert_eq!(flat.rounds(), 0);
        assert_eq!(flat, FlatSchedule::from_schedule(&Schedule::new(4)));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_raw_parts_rejects_descending_offsets() {
        FlatSchedule::from_raw_parts(
            2,
            vec![0, 2, 1, 2],
            vec![0, 1],
            vec![0, 1],
            vec![0, 1, 2],
            vec![1, 0],
        );
    }

    #[test]
    #[should_panic(expected = "one destination range per transmission")]
    fn from_raw_parts_rejects_missing_dest_range() {
        FlatSchedule::from_raw_parts(2, vec![0, 1], vec![0], vec![0], vec![0], vec![]);
    }

    #[test]
    fn empty_schedule_flattens() {
        let flat = FlatSchedule::from_schedule(&Schedule::new(4));
        assert_eq!(flat.rounds(), 0);
        assert_eq!(flat.tx_count(), 0);
        assert_eq!(flat.stats().deliveries, 0);
        assert!(flat.validate(&ring(4), CommModel::Multicast, 4).is_ok());
    }
}
