//! The bitset simulation kernel: word-parallel replay of flat schedules.
//!
//! [`crate::Simulator`] is the oracle — it executes [`crate::Schedule`]s
//! tuple by tuple and is the semantics every other executor is checked
//! against. [`SimKernel`] is the fast path: the same rules, the same
//! errors, the same hold-set evolution, but over a [`FlatSchedule`] with
//!
//! - knowledge sets as one flat `Vec<u64>` arena (`n` rows of
//!   `ceil(n_msgs / 64)` words; union is a word-wise OR, the completion
//!   check a popcount-maintained counter);
//! - adjacency as a precomputed bitmap, so the rule-3 check is one AND
//!   instead of a binary search over neighbour lists;
//! - per-round send/receive dedup via round-stamped tables, exactly as the
//!   oracle.
//!
//! Checks run in the oracle's exact per-transmission order, so any invalid
//! schedule is rejected with the *identical* [`ModelError`] the oracle
//! produces (the differential suite in `tests/` enforces this). When a
//! schedule has already passed the rayon structural pass
//! [`FlatSchedule::validate`], [`SimKernel::run_prevalidated`] skips the
//! structural checks and replays with only the state-dependent hold-set
//! rule plus the word-OR applies — the amortized replay mode benchmarks
//! and the recovery executor use.
//!
//! Lossy mode ([`SimKernel::run_lossy`]) replicates the oracle's
//! [`crate::Simulator::step_lossy`] bit for bit, including its in-round
//! hold-set visibility: the apply pass mutates hold rows while walking the
//! round's transmissions, so a `NotHeld` classification sees deliveries
//! that landed earlier in the same round. Fault suppression is evaluated
//! per delivery against the [`FaultPlan`] at the kernel's absolute round
//! index, keeping multi-epoch recovery replays deterministic.

use crate::bitset::BitSet;
use crate::error::ModelError;
use crate::fault_plan::FaultPlan;
use crate::flat_schedule::FlatSchedule;
use crate::lossy::{LossCause, LossyOutcome, LostDelivery};
use crate::models::CommModel;
use crate::simulator::SimOutcome;
use gossip_graph::Graph;

/// Word-parallel schedule replayer over flat hold-set and adjacency
/// bitmaps. Mirrors the [`crate::Simulator`] API where the two overlap.
#[derive(Debug, Clone)]
pub struct SimKernel<'g> {
    g: &'g Graph,
    model: CommModel,
    n: usize,
    n_msgs: usize,
    /// Words per hold row (`ceil(n_msgs / 64)`).
    hold_words: usize,
    /// `n * hold_words` arena; row `v` is `hold[v * hold_words ..][..hold_words]`.
    hold: Vec<u64>,
    /// Words per adjacency row (`ceil(n / 64)`).
    adj_words: usize,
    /// `n * adj_words` adjacency bitmap.
    adj: Vec<u64>,
    time: usize,
    send_stamp: Vec<u64>,
    recv_stamp: Vec<u64>,
    round_stamp: u64,
    known_pairs: usize,
}

impl<'g> SimKernel<'g> {
    /// Creates a kernel where message `m` initially resides only at
    /// processor `origin_of_message[m]` — the same permutation-origin
    /// contract (and errors) as [`crate::Simulator::new`].
    pub fn new(
        g: &'g Graph,
        model: CommModel,
        origin_of_message: &[usize],
    ) -> Result<Self, ModelError> {
        let n = g.n();
        if origin_of_message.len() != n {
            return Err(ModelError::BadOriginTable {
                reason: format!("{} origins for {n} processors", origin_of_message.len()),
            });
        }
        let mut seen = vec![false; n];
        for (m, &p) in origin_of_message.iter().enumerate() {
            if p < n && seen.get(p).copied().unwrap_or(false) {
                return Err(ModelError::BadOriginTable {
                    reason: format!("processor {p} originates two messages (message {m})"),
                });
            }
            if p < n {
                seen[p] = true;
            }
        }
        Self::with_origins(g, model, origin_of_message)
    }

    /// Creates a kernel over an arbitrary origin table (the
    /// weighted/pipelined setting), mirroring
    /// [`crate::Simulator::with_origins`].
    pub fn with_origins(
        g: &'g Graph,
        model: CommModel,
        origins: &[usize],
    ) -> Result<Self, ModelError> {
        let n = g.n();
        let n_msgs = origins.len();
        let hold_words = n_msgs.div_ceil(64);
        let adj_words = n.div_ceil(64);
        let mut hold = vec![0u64; n * hold_words];
        let mut known_pairs = 0;
        for (m, &p) in origins.iter().enumerate() {
            if p >= n {
                return Err(ModelError::BadOriginTable {
                    reason: format!("message {m} originates at out-of-range processor {p}"),
                });
            }
            let slot = p * hold_words + m / 64;
            let bit = 1u64 << (m % 64);
            if hold[slot] & bit == 0 {
                hold[slot] |= bit;
                known_pairs += 1;
            }
        }
        let mut adj = vec![0u64; n * adj_words];
        for v in 0..n {
            let row = v * adj_words;
            for u in g.neighbors(v) {
                adj[row + u / 64] |= 1u64 << (u % 64);
            }
        }
        Ok(SimKernel {
            g,
            model,
            n,
            n_msgs,
            hold_words,
            hold,
            adj_words,
            adj,
            time: 0,
            send_stamp: vec![0; n],
            recv_stamp: vec![0; n],
            round_stamp: 0,
            known_pairs,
        })
    }

    /// Creates a kernel whose knowledge is seeded from explicit hold sets
    /// — one [`BitSet`] per processor, all with the same capacity (which
    /// becomes `n_msgs`). This resumes replay from a mid-run state: when
    /// the topology changes the kernel must be rebuilt over the patched
    /// graph, but the processors' accumulated knowledge persists.
    pub fn with_holds(
        g: &'g Graph,
        model: CommModel,
        holds: &[BitSet],
    ) -> Result<Self, ModelError> {
        let n = g.n();
        if holds.len() != n {
            return Err(ModelError::BadOriginTable {
                reason: format!("{} hold sets for {n} processors", holds.len()),
            });
        }
        let n_msgs = holds.first().map_or(0, BitSet::capacity);
        if holds.iter().any(|h| h.capacity() != n_msgs) {
            return Err(ModelError::BadOriginTable {
                reason: "hold sets have mixed capacities".to_string(),
            });
        }
        let hold_words = n_msgs.div_ceil(64);
        let adj_words = n.div_ceil(64);
        let mut hold = vec![0u64; n * hold_words];
        let mut known_pairs = 0;
        for (p, h) in holds.iter().enumerate() {
            let row = p * hold_words;
            hold[row..row + h.words().len()].copy_from_slice(h.words());
            known_pairs += h.len();
        }
        let mut adj = vec![0u64; n * adj_words];
        for v in 0..n {
            let row = v * adj_words;
            for u in g.neighbors(v) {
                adj[row + u / 64] |= 1u64 << (u % 64);
            }
        }
        Ok(SimKernel {
            g,
            model,
            n,
            n_msgs,
            hold_words,
            hold,
            adj_words,
            adj,
            time: 0,
            send_stamp: vec![0; n],
            recv_stamp: vec![0; n],
            round_stamp: 0,
            known_pairs,
        })
    }

    /// The current time (number of rounds executed).
    #[inline]
    pub fn time(&self) -> usize {
        self.time
    }

    /// Number of messages in flight.
    #[inline]
    pub fn n_msgs(&self) -> usize {
        self.n_msgs
    }

    /// Whether processor `p` currently holds message `m`. Out-of-range
    /// pairs are never held.
    #[inline]
    pub fn contains(&self, p: usize, m: usize) -> bool {
        p < self.n
            && m < self.n_msgs
            && self.hold[p * self.hold_words + m / 64] & (1u64 << (m % 64)) != 0
    }

    /// The raw hold-row words of processor `p` (bits at or above `n_msgs`
    /// are always zero).
    #[inline]
    pub fn hold_row(&self, p: usize) -> &[u64] {
        &self.hold[p * self.hold_words..(p + 1) * self.hold_words]
    }

    /// The hold set of processor `p` as a [`BitSet`], for oracle-parity
    /// comparisons and handoff to [`BitSet`]-based consumers.
    pub fn hold_bitset(&self, p: usize) -> BitSet {
        BitSet::from_words(self.hold_row(p).to_vec(), self.n_msgs)
    }

    /// All hold sets, indexed by processor — the shape
    /// `gossip_core::recovery::plan_completion` consumes.
    pub fn hold_bitsets(&self) -> Vec<BitSet> {
        (0..self.n).map(|p| self.hold_bitset(p)).collect()
    }

    /// Whether every processor holds every message (O(1): the kernel
    /// maintains the known-pair popcount incrementally).
    #[inline]
    pub fn gossip_complete(&self) -> bool {
        self.known_pairs == self.n * self.n_msgs
    }

    /// Number of (processor, message) pairs currently known.
    #[inline]
    pub fn known_pairs(&self) -> usize {
        self.known_pairs
    }

    /// Fraction of all (processor, message) pairs currently known.
    pub fn coverage(&self) -> f64 {
        let total = self.n * self.n_msgs;
        if total == 0 {
            1.0
        } else {
            self.known_pairs as f64 / total as f64
        }
    }

    #[inline]
    fn adjacent(&self, u: usize, v: usize) -> bool {
        self.adj[u * self.adj_words + v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Executes round `r` of `flat` with full rule validation in the
    /// oracle's exact check order; on error the kernel state is unchanged.
    /// Errors are stamped with the kernel's absolute time, exactly as
    /// [`crate::Simulator::step`].
    pub fn step_round(&mut self, flat: &FlatSchedule, r: usize) -> Result<(), ModelError> {
        self.step_inner(flat, r, true)
    }

    fn step_inner(
        &mut self,
        flat: &FlatSchedule,
        r: usize,
        structural: bool,
    ) -> Result<(), ModelError> {
        let n = self.n;
        let t = self.time;
        let range = flat.round_range(r);
        if structural {
            self.round_stamp += 1;
            let stamp = self.round_stamp;
            for i in range.clone() {
                let from = flat.from_of(i) as usize;
                if from >= n {
                    return Err(ModelError::ProcessorOutOfRange {
                        round: t,
                        proc: from,
                        n,
                    });
                }
                let msg = flat.msg_of(i);
                if msg as usize >= self.n_msgs {
                    return Err(ModelError::MessageOutOfRange {
                        round: t,
                        msg,
                        n: self.n_msgs,
                    });
                }
                let dests = flat.dests_of(i);
                if dests.is_empty() {
                    return Err(ModelError::EmptyDestination {
                        round: t,
                        sender: from,
                    });
                }
                if self.send_stamp[from] == stamp {
                    return Err(ModelError::DuplicateSender {
                        round: t,
                        sender: from,
                    });
                }
                self.send_stamp[from] = stamp;
                if !self.contains(from, msg as usize) {
                    return Err(ModelError::MessageNotHeld {
                        round: t,
                        sender: from,
                        msg,
                    });
                }
                self.model
                    .check_fanout(self.g.degree(from), dests.len())
                    .map_err(|reason| ModelError::ModelViolation {
                        round: t,
                        sender: from,
                        reason,
                    })?;
                let mut prev: Option<usize> = None;
                for &d32 in dests {
                    let d = d32 as usize;
                    if d >= n {
                        return Err(ModelError::ProcessorOutOfRange {
                            round: t,
                            proc: d,
                            n,
                        });
                    }
                    if prev == Some(d) {
                        return Err(ModelError::DuplicateDestination {
                            round: t,
                            sender: from,
                            receiver: d,
                        });
                    }
                    prev = Some(d);
                    if !self.adjacent(from, d) {
                        return Err(ModelError::NotAdjacent {
                            round: t,
                            sender: from,
                            receiver: d,
                        });
                    }
                    if self.recv_stamp[d] == stamp {
                        return Err(ModelError::DuplicateReceiver {
                            round: t,
                            receiver: d,
                        });
                    }
                    self.recv_stamp[d] = stamp;
                }
            }
        } else {
            // Structure was established by `FlatSchedule::validate`; only
            // the execution-state rule remains. Validate the whole round
            // before applying, preserving step atomicity.
            for i in range.clone() {
                let from = flat.from_of(i) as usize;
                let msg = flat.msg_of(i);
                if !self.contains(from, msg as usize) {
                    return Err(ModelError::MessageNotHeld {
                        round: t,
                        sender: from,
                        msg,
                    });
                }
            }
        }

        // All checks passed; apply receives (word-OR per delivery).
        for i in range {
            let m = flat.msg_of(i) as usize;
            let (w, b) = (m / 64, 1u64 << (m % 64));
            for &d32 in flat.dests_of(i) {
                let slot = d32 as usize * self.hold_words + w;
                let newly = self.hold[slot] & b == 0;
                self.hold[slot] |= b;
                self.known_pairs += newly as usize;
            }
        }
        self.time += 1;
        Ok(())
    }

    /// Runs a whole flat schedule with full validation — the kernel-side
    /// equivalent of [`crate::Simulator::run`], producing the identical
    /// [`SimOutcome`] (or the identical first [`ModelError`]).
    pub fn run(&mut self, flat: &FlatSchedule) -> Result<SimOutcome, ModelError> {
        self.run_inner(flat, true)
    }

    /// Runs a flat schedule that already passed [`FlatSchedule::validate`]
    /// for this kernel's graph, model, and message count — skips the
    /// structural checks and replays with hold-rule checks plus word-OR
    /// applies only. Calling this on a schedule that was *not* validated
    /// can silently apply structurally illegal rounds; it never corrupts
    /// memory (all index arithmetic stays bounds-checked) but forfeits
    /// oracle parity.
    pub fn run_prevalidated(&mut self, flat: &FlatSchedule) -> Result<SimOutcome, ModelError> {
        self.run_inner(flat, false)
    }

    fn run_inner(
        &mut self,
        flat: &FlatSchedule,
        structural: bool,
    ) -> Result<SimOutcome, ModelError> {
        if flat.n() != self.n {
            return Err(ModelError::SizeMismatch {
                graph_n: self.n,
                schedule_n: flat.n(),
            });
        }
        let mut completion_time = if self.gossip_complete() {
            Some(self.time)
        } else {
            None
        };
        let rounds = flat.rounds();
        for r in 0..rounds {
            self.step_inner(flat, r, structural)?;
            if completion_time.is_none() && self.gossip_complete() {
                completion_time = Some(self.time);
            }
        }
        Ok(SimOutcome {
            complete: self.gossip_complete(),
            rounds_executed: rounds,
            completion_time,
            stats: flat.stats(),
        })
    }

    /// Runs a whole flat schedule with full validation, streaming live
    /// instrumentation into `recorder` — the clean-run counterpart of
    /// [`SimKernel::run_lossy_recorded`]: per round a `round_start` /
    /// `round_end` event pair, `exec/deliveries` counters, and the
    /// knowledge-curve gauges `round_current` / `known_pairs`. Recorders
    /// that opt into `wants_transmissions` (the flight recorder) also get
    /// every transmission as it executes. With a disabled recorder this is
    /// exactly [`SimKernel::run`].
    pub fn run_recorded(
        &mut self,
        flat: &FlatSchedule,
        recorder: &dyn gossip_telemetry::Recorder,
    ) -> Result<SimOutcome, ModelError> {
        use gossip_telemetry::Value;
        if !recorder.enabled() {
            return self.run(flat);
        }
        if flat.n() != self.n {
            return Err(ModelError::SizeMismatch {
                graph_n: self.n,
                schedule_n: flat.n(),
            });
        }
        let wants_tx = recorder.wants_transmissions();
        let mut completion_time = if self.gossip_complete() {
            Some(self.time)
        } else {
            None
        };
        let rounds = flat.rounds();
        for r in 0..rounds {
            let t = self.time;
            recorder.event("round_start", &[("round", Value::from_u64(t as u64))]);
            if wants_tx {
                for i in flat.round_range(r) {
                    recorder.transmission(t, flat.msg_of(i), flat.from_of(i), flat.dests_of(i));
                }
            }
            self.step_inner(flat, r, true)?;
            if completion_time.is_none() && self.gossip_complete() {
                completion_time = Some(self.time);
            }
            let delivered: usize = flat.round_range(r).map(|i| flat.dests_of(i).len()).sum();
            recorder.counter("exec/deliveries", delivered as u64);
            recorder.gauge("round_current", self.time as f64);
            recorder.gauge("known_pairs", self.known_pairs as f64);
            recorder.event(
                "round_end",
                &[
                    ("round", Value::from_u64(t as u64)),
                    ("delivered", Value::from_u64(delivered as u64)),
                    ("known_pairs", Value::from_u64(self.known_pairs as u64)),
                ],
            );
        }
        Ok(SimOutcome {
            complete: self.gossip_complete(),
            rounds_executed: rounds,
            completion_time,
            stats: flat.stats(),
        })
    }

    /// Executes round `r` of `flat` under `plan`, degrading on
    /// fault-induced failures exactly as [`crate::Simulator::step_lossy`]:
    /// structural violations error with state unchanged, the hold-set rule
    /// becomes a recorded [`LossCause::NotHeld`] cascade, and the loss log
    /// receives identical entries in identical order. Returns deliveries
    /// that landed.
    pub fn step_round_lossy(
        &mut self,
        flat: &FlatSchedule,
        r: usize,
        plan: &FaultPlan,
        lost: &mut Vec<LostDelivery>,
    ) -> Result<usize, ModelError> {
        let n = self.n;
        let t = self.time;
        self.round_stamp += 1;
        let stamp = self.round_stamp;
        let range = flat.round_range(r);

        // Validation pass: every structural rule, minus the hold-set check
        // (faults legitimately break relay chains).
        for i in range.clone() {
            let from = flat.from_of(i) as usize;
            if from >= n {
                return Err(ModelError::ProcessorOutOfRange {
                    round: t,
                    proc: from,
                    n,
                });
            }
            let msg = flat.msg_of(i);
            if msg as usize >= self.n_msgs {
                return Err(ModelError::MessageOutOfRange {
                    round: t,
                    msg,
                    n: self.n_msgs,
                });
            }
            let dests = flat.dests_of(i);
            if dests.is_empty() {
                return Err(ModelError::EmptyDestination {
                    round: t,
                    sender: from,
                });
            }
            if self.send_stamp[from] == stamp {
                return Err(ModelError::DuplicateSender {
                    round: t,
                    sender: from,
                });
            }
            self.send_stamp[from] = stamp;
            self.model
                .check_fanout(self.g.degree(from), dests.len())
                .map_err(|reason| ModelError::ModelViolation {
                    round: t,
                    sender: from,
                    reason,
                })?;
            let mut prev: Option<usize> = None;
            for &d32 in dests {
                let d = d32 as usize;
                if d >= n {
                    return Err(ModelError::ProcessorOutOfRange {
                        round: t,
                        proc: d,
                        n,
                    });
                }
                if prev == Some(d) {
                    return Err(ModelError::DuplicateDestination {
                        round: t,
                        sender: from,
                        receiver: d,
                    });
                }
                prev = Some(d);
                if !self.adjacent(from, d) {
                    return Err(ModelError::NotAdjacent {
                        round: t,
                        sender: from,
                        receiver: d,
                    });
                }
                if self.recv_stamp[d] == stamp {
                    return Err(ModelError::DuplicateReceiver {
                        round: t,
                        receiver: d,
                    });
                }
                self.recv_stamp[d] = stamp;
            }
        }

        // Apply pass: deliveries land unless a fault condition intercepts.
        // Hold rows mutate in transmission order, so the NotHeld
        // classification sees earlier same-round deliveries — the oracle's
        // exact in-round visibility.
        let mut delivered = 0;
        for i in range {
            let from = flat.from_of(i) as usize;
            let msg = flat.msg_of(i);
            let m = msg as usize;
            let whole_tx_cause = if plan.is_crashed(from, t) {
                Some(LossCause::SenderCrashed)
            } else if !self.contains(from, m) {
                Some(LossCause::NotHeld)
            } else {
                None
            };
            let (w, b) = (m / 64, 1u64 << (m % 64));
            for &d32 in flat.dests_of(i) {
                let d = d32 as usize;
                let cause = whole_tx_cause.or_else(|| {
                    if plan.is_crashed(d, t) {
                        Some(LossCause::ReceiverCrashed)
                    } else if plan.link_down(from, d, t) {
                        Some(LossCause::LinkDown)
                    } else if plan.loses(t, from, d) {
                        Some(LossCause::Sampled)
                    } else {
                        None
                    }
                });
                match cause {
                    Some(cause) => lost.push(LostDelivery {
                        round: t,
                        msg,
                        from,
                        to: d,
                        cause,
                    }),
                    None => {
                        let slot = d * self.hold_words + w;
                        let newly = self.hold[slot] & b == 0;
                        self.hold[slot] |= b;
                        self.known_pairs += newly as usize;
                        delivered += 1;
                    }
                }
            }
        }
        self.time += 1;
        Ok(delivered)
    }

    /// Runs a whole flat schedule under `plan` from the kernel's current
    /// time — the kernel-side equivalent of [`crate::Simulator::run_lossy`]
    /// (absolute rounds index the fault plan, so one kernel carried across
    /// repair epochs keeps sampling the same deterministic fault sequence).
    pub fn run_lossy(
        &mut self,
        flat: &FlatSchedule,
        plan: &FaultPlan,
        lost: &mut Vec<LostDelivery>,
    ) -> Result<LossyOutcome, ModelError> {
        if flat.n() != self.n {
            return Err(ModelError::SizeMismatch {
                graph_n: self.n,
                schedule_n: flat.n(),
            });
        }
        let before = lost.len();
        let rounds = flat.rounds();
        let mut delivered = 0;
        for r in 0..rounds {
            delivered += self.step_round_lossy(flat, r, plan, lost)?;
        }
        Ok(LossyOutcome {
            rounds_executed: rounds,
            delivered,
            lost: lost.len() - before,
            complete_among_alive: self.residual_count(plan) == 0,
        })
    }

    /// [`SimKernel::run_lossy`] with live instrumentation: per round a
    /// `round_start`/`round_end` event pair, a `loss` event per lost
    /// delivery (with its cause label), `exec/deliveries` /
    /// `exec/losses` / per-cause `exec/lost/<cause>` counters, and the
    /// knowledge-curve gauges `round_current` / `known_pairs`. Recorders
    /// that opt into `wants_transmissions` (the flight recorder) also get
    /// every attempted transmission. With a disabled recorder this is
    /// exactly [`SimKernel::run_lossy`].
    pub fn run_lossy_recorded(
        &mut self,
        flat: &FlatSchedule,
        plan: &FaultPlan,
        lost: &mut Vec<LostDelivery>,
        recorder: &dyn gossip_telemetry::Recorder,
    ) -> Result<LossyOutcome, ModelError> {
        use gossip_telemetry::Value;
        if !recorder.enabled() {
            return self.run_lossy(flat, plan, lost);
        }
        if flat.n() != self.n {
            return Err(ModelError::SizeMismatch {
                graph_n: self.n,
                schedule_n: flat.n(),
            });
        }
        let wants_tx = recorder.wants_transmissions();
        let before = lost.len();
        let rounds = flat.rounds();
        let mut delivered = 0;
        for r in 0..rounds {
            let t = self.time;
            recorder.event("round_start", &[("round", Value::from_u64(t as u64))]);
            if wants_tx {
                // Every *attempt* is captured, including transmissions whose
                // deliveries are all suppressed — the matching `loss` events
                // record which ones, so replay is txs minus losses.
                for i in flat.round_range(r) {
                    recorder.transmission(t, flat.msg_of(i), flat.from_of(i), flat.dests_of(i));
                }
            }
            let lost_before = lost.len();
            let d = self.step_round_lossy(flat, r, plan, lost)?;
            delivered += d;
            for l in &lost[lost_before..] {
                recorder.counter(&format!("exec/lost/{}", l.cause.label()), 1);
                recorder.event(
                    "loss",
                    &[
                        ("round", Value::from_u64(l.round as u64)),
                        ("msg", Value::from_u64(l.msg as u64)),
                        ("from", Value::from_u64(l.from as u64)),
                        ("to", Value::from_u64(l.to as u64)),
                        ("cause", Value::String(l.cause.label().to_string())),
                    ],
                );
            }
            let lost_now = (lost.len() - lost_before) as u64;
            recorder.counter("exec/deliveries", d as u64);
            recorder.counter("exec/losses", lost_now);
            recorder.gauge("round_current", self.time as f64);
            recorder.gauge("known_pairs", self.known_pairs() as f64);
            recorder.event(
                "round_end",
                &[
                    ("round", Value::from_u64(t as u64)),
                    ("delivered", Value::from_u64(d as u64)),
                    ("lost", Value::from_u64(lost_now)),
                    ("known_pairs", Value::from_u64(self.known_pairs() as u64)),
                ],
            );
        }
        Ok(LossyOutcome {
            rounds_executed: rounds,
            delivered,
            lost: lost.len() - before,
            complete_among_alive: self.residual_count(plan) == 0,
        })
    }

    /// The missing (message, vertex) pairs among processors still alive at
    /// the current time, in the oracle's (vertex-major, message-ascending)
    /// order — extracted by a word-level complement walk instead of a
    /// per-pair probe.
    pub fn residual(&self, plan: &FaultPlan) -> Vec<(u32, usize)> {
        let alive = plan.alive_at(self.n, self.time);
        let tail = self.n_msgs % 64;
        let mut out = Vec::new();
        for (v, &v_alive) in alive.iter().enumerate() {
            if !v_alive {
                continue;
            }
            for (wi, &word) in self.hold_row(v).iter().enumerate() {
                let mut missing = !word;
                if tail != 0 && wi == self.hold_words - 1 {
                    missing &= (1u64 << tail) - 1;
                }
                while missing != 0 {
                    let m = wi * 64 + missing.trailing_zeros() as usize;
                    missing &= missing - 1;
                    out.push((m as u32, v));
                }
            }
        }
        out
    }

    /// Number of missing (message, vertex) pairs among alive processors —
    /// popcount only, no materialization.
    pub fn residual_count(&self, plan: &FaultPlan) -> usize {
        let alive = plan.alive_at(self.n, self.time);
        (0..self.n)
            .filter(|&v| alive[v])
            .map(|v| {
                let held: usize = self
                    .hold_row(v)
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum();
                self.n_msgs - held
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Transmission;
    use crate::schedule::Schedule;
    use crate::simulator::Simulator;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    fn ring_schedule(n: usize) -> Schedule {
        let mut s = Schedule::new(n);
        for t in 0..n - 1 {
            for p in 0..n {
                let msg = ((p + n - t) % n) as u32;
                s.add_transmission(t, Transmission::unicast(msg, p, (p + 1) % n));
            }
        }
        s
    }

    fn identity(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn ring_replay_matches_oracle_outcome() {
        let n = 8;
        let g = ring(n);
        let s = ring_schedule(n);
        let flat = FlatSchedule::from_schedule(&s);
        let mut oracle = Simulator::new(&g, CommModel::Multicast, &identity(n)).unwrap();
        let want = oracle.run(&s).unwrap();
        let mut k = SimKernel::new(&g, CommModel::Multicast, &identity(n)).unwrap();
        let got = k.run(&flat).unwrap();
        assert_eq!(got, want);
        assert!(k.gossip_complete());
        for v in 0..n {
            assert_eq!(k.hold_bitset(v), oracle.holds(v).clone());
        }
    }

    #[test]
    fn prevalidated_replay_matches_full_run() {
        let n = 8;
        let g = ring(n);
        let flat = FlatSchedule::from_schedule(&ring_schedule(n));
        flat.validate(&g, CommModel::Multicast, n).unwrap();
        let mut full = SimKernel::new(&g, CommModel::Multicast, &identity(n)).unwrap();
        let mut fast = SimKernel::new(&g, CommModel::Multicast, &identity(n)).unwrap();
        let a = full.run(&flat).unwrap();
        let b = fast.run_prevalidated(&flat).unwrap();
        assert_eq!(a, b);
        assert_eq!(full.hold_bitsets(), fast.hold_bitsets());
    }

    #[test]
    fn rejects_unheld_message_like_oracle() {
        let g = ring(3);
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(1, 0, 1));
        let flat = FlatSchedule::from_schedule(&s);
        let mut k = SimKernel::new(&g, CommModel::Multicast, &identity(3)).unwrap();
        let err = k.run(&flat).unwrap_err();
        let want = Simulator::new(&g, CommModel::Multicast, &identity(3))
            .unwrap()
            .run(&s)
            .unwrap_err();
        assert_eq!(err, want);
        // State unchanged on error: sender 0 still lacks message 1.
        assert_eq!(k.time(), 0);
        assert!(!k.contains(0, 1));
    }

    #[test]
    fn failed_round_leaves_state_unchanged() {
        let g = Graph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 2));
        s.add_transmission(0, Transmission::unicast(1, 1, 2));
        let flat = FlatSchedule::from_schedule(&s);
        let mut k = SimKernel::new(&g, CommModel::Multicast, &identity(3)).unwrap();
        assert_eq!(
            k.run(&flat).unwrap_err(),
            ModelError::DuplicateReceiver {
                round: 0,
                receiver: 2
            }
        );
        assert!(!k.contains(2, 0));
        assert_eq!(k.time(), 0);
    }

    #[test]
    fn lossy_replay_matches_oracle() {
        let n = 8;
        let g = ring(n);
        let s = ring_schedule(n);
        let flat = FlatSchedule::from_schedule(&s);
        let plan = FaultPlan::new(42).with_loss_rate(0.3).with_crash(3, 4);
        let mut oracle = Simulator::new(&g, CommModel::Multicast, &identity(n)).unwrap();
        let mut want_lost = Vec::new();
        let want = oracle.run_lossy(&s, &plan, &mut want_lost).unwrap();
        let mut k = SimKernel::new(&g, CommModel::Multicast, &identity(n)).unwrap();
        let mut got_lost = Vec::new();
        let got = k.run_lossy(&flat, &plan, &mut got_lost).unwrap();
        assert_eq!(got, want);
        assert_eq!(got_lost, want_lost);
        assert_eq!(k.residual(&plan), oracle.residual(&plan));
        assert_eq!(k.residual_count(&plan), oracle.residual(&plan).len());
        for v in 0..n {
            assert_eq!(k.hold_bitset(v), oracle.holds(v).clone());
        }
    }

    #[test]
    fn absolute_rounds_survive_split_replay() {
        let n = 8;
        let g = ring(n);
        let s = ring_schedule(n);
        let plan = FaultPlan::new(123).with_loss_rate(0.3);
        let run = |split: usize| {
            let mut k = SimKernel::new(&g, CommModel::Multicast, &identity(n)).unwrap();
            let mut lost = Vec::new();
            let mut first = Schedule::new(n);
            let mut second = Schedule::new(n);
            for (t, tx) in s.iter() {
                if t < split {
                    first.add_transmission(t, tx.clone());
                } else {
                    second.add_transmission(t - split, tx.clone());
                }
            }
            k.run_lossy(&FlatSchedule::from_schedule(&first), &plan, &mut lost)
                .unwrap();
            k.run_lossy(&FlatSchedule::from_schedule(&second), &plan, &mut lost)
                .unwrap();
            (lost, k.hold_bitsets())
        };
        assert_eq!(run(7), run(3));
    }

    #[test]
    fn with_holds_resumes_a_split_run() {
        let n = 8;
        let g = ring(n);
        let s = ring_schedule(n);
        let split = 4;
        let mut first = Schedule::new(n);
        let mut second = Schedule::new(n);
        for (t, tx) in s.iter() {
            if t < split {
                first.add_transmission(t, tx.clone());
            } else {
                second.add_transmission(t - split, tx.clone());
            }
        }
        let mut whole = SimKernel::new(&g, CommModel::Multicast, &identity(n)).unwrap();
        whole.run(&FlatSchedule::from_schedule(&s)).unwrap();
        let mut head = SimKernel::new(&g, CommModel::Multicast, &identity(n)).unwrap();
        head.run(&FlatSchedule::from_schedule(&first)).unwrap();
        // Rebuild a fresh kernel from the mid-run hold sets (as the churn
        // executor does across a topology patch) and finish the run.
        let mid = head.hold_bitsets();
        let mut tail = SimKernel::with_holds(&g, CommModel::Multicast, &mid).unwrap();
        tail.run(&FlatSchedule::from_schedule(&second)).unwrap();
        assert_eq!(tail.hold_bitsets(), whole.hold_bitsets());
        assert_eq!(tail.known_pairs(), whole.known_pairs());
        assert!(tail.gossip_complete());
    }

    #[test]
    fn with_holds_rejects_bad_shapes() {
        let g = ring(3);
        let short = vec![BitSet::new(3); 2];
        assert!(SimKernel::with_holds(&g, CommModel::Multicast, &short).is_err());
        let mixed = vec![BitSet::new(3), BitSet::new(3), BitSet::new(4)];
        assert!(SimKernel::with_holds(&g, CommModel::Multicast, &mixed).is_err());
    }

    #[test]
    fn origin_table_errors_match_oracle() {
        let g = ring(3);
        for bad in [vec![0usize, 0, 1], vec![0, 1], vec![0, 1, 3]] {
            let k = SimKernel::new(&g, CommModel::Multicast, &bad).map(|_| ());
            let s = Simulator::new(&g, CommModel::Multicast, &bad).map(|_| ());
            assert_eq!(k.unwrap_err(), s.unwrap_err());
        }
    }

    #[test]
    fn size_mismatch_rejected() {
        let g = ring(3);
        let flat = FlatSchedule::from_schedule(&Schedule::new(4));
        let mut k = SimKernel::new(&g, CommModel::Multicast, &identity(3)).unwrap();
        assert!(matches!(
            k.run(&flat).unwrap_err(),
            ModelError::SizeMismatch { .. }
        ));
    }

    #[test]
    fn singleton_and_empty_edge_cases() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let flat = FlatSchedule::from_schedule(&Schedule::new(1));
        let mut k = SimKernel::new(&g, CommModel::Multicast, &[0]).unwrap();
        let out = k.run(&flat).unwrap();
        assert!(out.complete);
        assert_eq!(out.completion_time, Some(0));
        assert!((k.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_message_space_crosses_word_boundaries() {
        // 130 messages on a 3-path: hold rows span 3 words; exercise the
        // tail-masking in residual().
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let origins: Vec<usize> = (0..130).map(|m| m % 3).collect();
        let mut k = SimKernel::with_origins(&g, CommModel::Multicast, &origins).unwrap();
        let mut oracle = Simulator::with_origins(&g, CommModel::Multicast, &origins).unwrap();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(64, 1, 0));
        s.add_transmission(0, Transmission::unicast(129, 0, 1));
        let flat = FlatSchedule::from_schedule(&s);
        assert_eq!(k.run(&flat).unwrap(), oracle.run(&s).unwrap());
        assert_eq!(
            k.residual(&FaultPlan::none()),
            oracle.residual(&FaultPlan::none())
        );
    }
}
