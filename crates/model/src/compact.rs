//! Schedule compaction: a post-optimizer for any valid schedule.
//!
//! Two passes, iterated to a fixed point:
//!
//! 1. **Prune** — drop deliveries that hand a receiver a message it already
//!    holds (and whole transmissions that become empty);
//! 2. **Shift** — move a transmission one round earlier whenever the
//!    sender is free, every destination has a free receive slot, and the
//!    sender already holds the message at the earlier time.
//!
//! Compaction never increases the makespan and preserves completion: every
//! hold set at the final time is unchanged or larger. It quantifies how
//! much slack a scheduling algorithm leaves on the table — ConcurrentUpDown
//! schedules are already redundancy-free, while algorithm Simple's
//! wait-for-everything down phase compacts substantially.

use crate::error::ModelError;
use crate::schedule::Schedule;
use gossip_graph::Graph;

/// Result of a compaction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// The compacted schedule.
    pub schedule: Schedule,
    /// Makespan before compaction.
    pub makespan_before: usize,
    /// Makespan after compaction.
    pub makespan_after: usize,
    /// Redundant deliveries removed.
    pub deliveries_pruned: usize,
    /// Transmissions moved earlier (counting repeated moves).
    pub shifts: usize,
}

/// Compacts `schedule` over `g` with the given origin table. The input
/// must already be valid (validate first); the output is guaranteed valid
/// and at least as complete.
pub fn compact_schedule(
    g: &Graph,
    schedule: &Schedule,
    origins: &[usize],
) -> Result<CompactionReport, ModelError> {
    let n = g.n();
    if schedule.n != n {
        return Err(ModelError::SizeMismatch {
            graph_n: n,
            schedule_n: schedule.n,
        });
    }
    let n_msgs = origins.len();
    let mut s = schedule.clone();
    let makespan_before = s.makespan();
    let mut deliveries_pruned = 0usize;
    let mut shifts = 0usize;

    loop {
        let mut changed = false;

        // --- Pass 1: prune redundant deliveries. ---
        let earliest = hold_times(&s, origins, n, n_msgs)?;
        for t in 0..s.rounds.len() {
            let round = &mut s.rounds[t];
            for tx in &mut round.transmissions {
                let before = tx.to.len();
                tx.to
                    .retain(|&d| earliest[d][tx.msg as usize] == Some(t + 1));
                // A destination whose hold time precedes this delivery was
                // getting a duplicate; one whose hold time IS t+1 keeps the
                // earliest delivery (ties: this one may be the duplicate of
                // a same-round delivery, impossible — receivers get one
                // message per round in a valid schedule).
                deliveries_pruned += before - tx.to.len();
            }
            let before_tx = round.transmissions.len();
            round.transmissions.retain(|tx| !tx.to.is_empty());
            if round.transmissions.len() != before_tx {
                changed = true;
            }
        }

        // --- Pass 2: shift transmissions earlier. ---
        // Occupancy tables for the current layout.
        let horizon = s.rounds.len();
        let mut send_busy = vec![vec![false; horizon]; n];
        let mut recv_busy = vec![vec![false; horizon + 1]; n];
        for (t, tx) in s.iter() {
            send_busy[tx.from][t] = true;
            for &d in &tx.to {
                recv_busy[d][t + 1] = true;
            }
        }
        let earliest = hold_times(&s, origins, n, n_msgs)?;
        for t in 1..s.rounds.len() {
            let round = std::mem::take(&mut s.rounds[t].transmissions);
            let mut kept = Vec::with_capacity(round.len());
            for tx in round {
                let movable = !send_busy[tx.from][t - 1]
                    && tx.to.iter().all(|&d| !recv_busy[d][t])
                    && earliest[tx.from][tx.msg as usize].is_some_and(|h| h < t);
                if movable {
                    send_busy[tx.from][t - 1] = true;
                    send_busy[tx.from][t] = false;
                    for &d in &tx.to {
                        recv_busy[d][t] = true;
                        recv_busy[d][t + 1] = false;
                    }
                    s.rounds[t - 1].transmissions.push(tx);
                    shifts += 1;
                    changed = true;
                } else {
                    kept.push(tx);
                }
            }
            s.rounds[t].transmissions = kept;
        }

        if !changed {
            break;
        }
    }

    s.trim();
    Ok(CompactionReport {
        makespan_after: s.makespan(),
        schedule: s,
        makespan_before,
        deliveries_pruned,
        shifts,
    })
}

/// `hold_times[p][m]` = earliest time processor `p` holds message `m`
/// under the schedule (0 for origins), or `None` if never.
fn hold_times(
    s: &Schedule,
    origins: &[usize],
    n: usize,
    n_msgs: usize,
) -> Result<Vec<Vec<Option<usize>>>, ModelError> {
    let mut hold = vec![vec![None; n_msgs]; n];
    for (m, &p) in origins.iter().enumerate() {
        if p >= n {
            return Err(ModelError::BadOriginTable {
                reason: format!("message {m} at out-of-range processor {p}"),
            });
        }
        hold[p][m] = Some(0);
    }
    for (t, tx) in s.iter() {
        if tx.msg as usize >= n_msgs {
            return Err(ModelError::MessageOutOfRange {
                round: t,
                msg: tx.msg,
                n: n_msgs,
            });
        }
        for &d in &tx.to {
            let slot = &mut hold[d][tx.msg as usize];
            if slot.is_none() || slot.is_some_and(|h| h > t + 1) {
                *slot = Some(t + 1);
            }
        }
    }
    Ok(hold)
}

/// Sanity check used by tests and callers that want belt-and-braces
/// verification: validates the compacted schedule and confirms gossip still
/// completes.
pub fn verify_compaction(
    g: &Graph,
    report: &CompactionReport,
    origins: &[usize],
) -> Result<bool, ModelError> {
    let mut sim =
        crate::simulator::Simulator::with_origins(g, crate::models::CommModel::Multicast, origins)?;
    Ok(sim.run(&report.schedule)?.complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Transmission;
    use crate::simulator::simulate_gossip;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn prunes_redundant_deliveries() {
        let g = path(3);
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(1, Transmission::unicast(0, 0, 1)); // duplicate
        s.add_transmission(2, Transmission::unicast(0, 1, 2));
        s.add_transmission(3, Transmission::unicast(1, 1, 0));
        s.add_transmission(4, Transmission::unicast(2, 2, 1));
        s.add_transmission(5, Transmission::unicast(2, 1, 0));
        s.add_transmission(6, Transmission::unicast(1, 1, 2));
        let r = compact_schedule(&g, &s, &[0, 1, 2]).unwrap();
        assert!(r.deliveries_pruned >= 1);
        assert!(verify_compaction(&g, &r, &[0, 1, 2]).unwrap());
        assert!(r.makespan_after < r.makespan_before);
    }

    #[test]
    fn shifts_late_transmissions() {
        let g = path(2);
        let mut s = Schedule::new(2);
        // Needlessly late swap.
        s.add_transmission(3, Transmission::unicast(0, 0, 1));
        s.add_transmission(3, Transmission::unicast(1, 1, 0));
        let r = compact_schedule(&g, &s, &[0, 1]).unwrap();
        assert_eq!(r.makespan_after, 1);
        assert!(r.shifts >= 2);
        assert!(verify_compaction(&g, &r, &[0, 1]).unwrap());
    }

    #[test]
    fn respects_causality_when_shifting() {
        let g = path(3);
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        // Relay cannot move to round 0: vertex 1 holds msg 0 only at t=1.
        s.add_transmission(1, Transmission::unicast(0, 1, 2));
        s.add_transmission(2, Transmission::unicast(1, 1, 0));
        s.add_transmission(3, Transmission::unicast(2, 2, 1));
        s.add_transmission(4, Transmission::unicast(2, 1, 0));
        s.add_transmission(5, Transmission::unicast(1, 1, 2));
        let r = compact_schedule(&g, &s, &[0, 1, 2]).unwrap();
        assert!(verify_compaction(&g, &r, &[0, 1, 2]).unwrap());
        // The relay stayed strictly after the first hop.
        let relay_time = r
            .schedule
            .iter()
            .find(|(_, tx)| tx.msg == 0 && tx.from == 1)
            .map(|(t, _)| t)
            .unwrap();
        let first_hop = r
            .schedule
            .iter()
            .find(|(_, tx)| tx.msg == 0 && tx.from == 0)
            .map(|(t, _)| t)
            .unwrap();
        assert!(relay_time > first_hop);
    }

    #[test]
    fn idempotent_on_compact_input() {
        let g = path(4);
        let mut s = Schedule::new(4);
        // A tight hand schedule.
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(0, Transmission::unicast(2, 2, 3));
        let r1 = compact_schedule(&g, &s, &[0, 1, 2, 3]).unwrap();
        let r2 = compact_schedule(&g, &r1.schedule, &[0, 1, 2, 3]).unwrap();
        assert_eq!(r1.schedule, r2.schedule);
        assert_eq!(r2.shifts, 0);
        assert_eq!(r2.deliveries_pruned, 0);
    }

    #[test]
    fn preserves_completion_of_valid_gossip() {
        // Build a long-winded but valid gossip on a path and compact it.
        let g = path(4);
        let mut s = Schedule::new(4);
        let mut time = 0;
        for m in 0..4u32 {
            let o = m as usize;
            for v in o..3 {
                s.add_transmission(time, Transmission::unicast(m, v, v + 1));
                time += 1;
            }
            for v in (1..=o).rev() {
                s.add_transmission(time, Transmission::unicast(m, v, v - 1));
                time += 1;
            }
        }
        let before = simulate_gossip(&g, &s, &[0, 1, 2, 3]).unwrap();
        assert!(before.complete);
        let r = compact_schedule(&g, &s, &[0, 1, 2, 3]).unwrap();
        let after = simulate_gossip(&g, &r.schedule, &[0, 1, 2, 3]).unwrap();
        assert!(after.complete);
        assert!(
            r.makespan_after < r.makespan_before,
            "sequential schedule must compact"
        );
    }
}
