//! Communication rounds: the paper's `(m, l, D)` tuples.
//!
//! "A communication round C is a set of tuples of the form (m, l, D), where
//! l is a processor index, and message m ∈ h_l is to be multicasted from
//! processor P_l to the set of processors with indices in D", subject to:
//! every pair of D sets disjoint, and all senders distinct.

use serde::{Deserialize, Serialize};

/// One multicast: the paper's tuple `(m, l, D)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transmission {
    /// The message id `m`.
    pub msg: u32,
    /// The sending processor `l`.
    pub from: usize,
    /// The destination set `D` (kept sorted and duplicate-free by
    /// [`Transmission::new`]).
    pub to: Vec<usize>,
}

impl Transmission {
    /// Builds a transmission, normalizing the destination set to sorted
    /// order (duplicates are preserved so the validator can reject them).
    pub fn new(msg: u32, from: usize, mut to: Vec<usize>) -> Self {
        to.sort_unstable();
        Transmission { msg, from, to }
    }

    /// A unicast — the only shape allowed under the telephone model.
    pub fn unicast(msg: u32, from: usize, to: usize) -> Self {
        Transmission {
            msg,
            from,
            to: vec![to],
        }
    }
}

/// One synchronous communication round: a set of non-conflicting
/// transmissions all sent at the same time `t` (and received at `t + 1`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommRound {
    /// The transmissions of this round.
    pub transmissions: Vec<Transmission>,
}

impl CommRound {
    /// An empty round (nobody communicates).
    pub fn new() -> Self {
        CommRound::default()
    }

    /// A round from a transmission list.
    pub fn from_transmissions(transmissions: Vec<Transmission>) -> Self {
        CommRound { transmissions }
    }

    /// Adds a transmission.
    pub fn push(&mut self, t: Transmission) {
        self.transmissions.push(t);
    }

    /// Whether no processor communicates this round.
    pub fn is_empty(&self) -> bool {
        self.transmissions.is_empty()
    }

    /// Total number of message deliveries this round (sum of `|D|`).
    pub fn deliveries(&self) -> usize {
        self.transmissions.iter().map(|t| t.to.len()).sum()
    }

    /// The largest destination set in the round (0 if empty).
    pub fn max_fanout(&self) -> usize {
        self.transmissions
            .iter()
            .map(|t| t.to.len())
            .max()
            .unwrap_or(0)
    }

    /// Looks up what `proc` sends this round, if anything.
    pub fn sent_by(&self, proc: usize) -> Option<&Transmission> {
        self.transmissions.iter().find(|t| t.from == proc)
    }

    /// Looks up what `proc` receives this round, if anything, as
    /// `(msg, sender)`.
    pub fn received_by(&self, proc: usize) -> Option<(u32, usize)> {
        self.transmissions
            .iter()
            .find(|t| t.to.binary_search(&proc).is_ok())
            .map(|t| (t.msg, t.from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_normalizes_order() {
        let t = Transmission::new(3, 0, vec![5, 2, 9]);
        assert_eq!(t.to, vec![2, 5, 9]);
    }

    #[test]
    fn unicast_shape() {
        let t = Transmission::unicast(1, 4, 7);
        assert_eq!(t.to, vec![7]);
    }

    #[test]
    fn round_queries() {
        let mut r = CommRound::new();
        assert!(r.is_empty());
        r.push(Transmission::new(0, 0, vec![1, 2]));
        r.push(Transmission::new(5, 3, vec![4]));
        assert_eq!(r.deliveries(), 3);
        assert_eq!(r.max_fanout(), 2);
        assert_eq!(r.sent_by(0).unwrap().msg, 0);
        assert_eq!(r.sent_by(1), None);
        assert_eq!(r.received_by(2), Some((0, 0)));
        assert_eq!(r.received_by(4), Some((5, 3)));
        assert_eq!(r.received_by(0), None);
    }
}
