//! The three communication models discussed in the paper's §1–2.

use crate::round::Transmission;
use gossip_graph::Graph;
use serde::{Deserialize, Serialize};

/// Which per-round send primitive the network offers.
///
/// All three share the receive rule (at most one message per processor per
/// round) and the send rule (at most one message per processor per round);
/// they differ only in the allowed destination set `D` of a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CommModel {
    /// The paper's model: `D` is any nonempty subset of the sender's
    /// neighbours.
    #[default]
    Multicast,
    /// The telephone (unicasting) model: `|D| = 1`.
    Telephone,
    /// The (local) broadcasting model: `D` is *all* of the sender's
    /// neighbours, or the transmission does not happen.
    Broadcast,
}

impl CommModel {
    /// Checks the model-specific restriction on a transmission's destination
    /// set; the general rules (adjacency, disjointness, hold sets) are
    /// enforced by the validator regardless of model.
    ///
    /// Returns `Err(reason)` with a human-readable reason on violation.
    pub fn check_destinations(&self, g: &Graph, t: &Transmission) -> Result<(), String> {
        self.check_fanout(g.degree(t.from), t.to.len())
    }

    /// The fan-out form of [`CommModel::check_destinations`]: all three
    /// models restrict only the *size* of the destination set relative to
    /// the sender's degree, so validators that store destinations in flat
    /// arrays (the bitset kernel) can check the rule without materializing
    /// a [`Transmission`]. Shared with `check_destinations` so both
    /// validators emit byte-identical violation reasons.
    pub fn check_fanout(&self, sender_degree: usize, fanout: usize) -> Result<(), String> {
        match self {
            CommModel::Multicast => Ok(()),
            CommModel::Telephone => {
                if fanout == 1 {
                    Ok(())
                } else {
                    Err(format!(
                        "telephone model allows exactly 1 destination, got {fanout}"
                    ))
                }
            }
            CommModel::Broadcast => {
                if fanout == sender_degree {
                    Ok(())
                } else {
                    Err(format!(
                        "broadcast model requires all {sender_degree} neighbours, got {fanout}"
                    ))
                }
            }
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CommModel::Multicast => "multicast",
            CommModel::Telephone => "telephone",
            CommModel::Broadcast => "broadcast",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap()
    }

    #[test]
    fn multicast_allows_any_subset() {
        let g = star();
        for dests in [vec![1], vec![1, 2], vec![1, 2, 3]] {
            let t = Transmission::new(0, 0, dests);
            assert!(CommModel::Multicast.check_destinations(&g, &t).is_ok());
        }
    }

    #[test]
    fn telephone_requires_single() {
        let g = star();
        let ok = Transmission::new(0, 0, vec![2]);
        let bad = Transmission::new(0, 0, vec![1, 2]);
        assert!(CommModel::Telephone.check_destinations(&g, &ok).is_ok());
        assert!(CommModel::Telephone.check_destinations(&g, &bad).is_err());
    }

    #[test]
    fn broadcast_requires_all_neighbors() {
        let g = star();
        let all = Transmission::new(0, 0, vec![1, 2, 3]);
        let some = Transmission::new(0, 0, vec![1, 2]);
        assert!(CommModel::Broadcast.check_destinations(&g, &all).is_ok());
        assert!(CommModel::Broadcast.check_destinations(&g, &some).is_err());
        // A leaf broadcasting reaches exactly its single neighbour.
        let leaf = Transmission::new(1, 1, vec![0]);
        assert!(CommModel::Broadcast.check_destinations(&g, &leaf).is_ok());
    }

    #[test]
    fn names() {
        assert_eq!(CommModel::Multicast.name(), "multicast");
        assert_eq!(CommModel::Telephone.name(), "telephone");
        assert_eq!(CommModel::Broadcast.name(), "broadcast");
    }
}
