//! Per-vertex communication traces in the format of the paper's
//! Tables 1–4.
//!
//! Each table row answers, for one tree vertex and each time step:
//! *Receive from Parent*, *Receive from Child*, *Send to Parent*,
//! *Send to Child(ren)*. Receives at time `t` correspond to transmissions
//! sent in round `t - 1`; sends at time `t` to transmissions in round `t`.

use crate::schedule::Schedule;
use gossip_graph::RootedTree;
use serde::{Deserialize, Serialize};

/// The four-row trace of one vertex, indexed by time step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexTrace {
    /// The traced vertex.
    pub vertex: usize,
    /// `recv_from_parent[t]` = message received from the parent at time `t`.
    pub recv_from_parent: Vec<Option<u32>>,
    /// `recv_from_child[t]` = message received from a child at time `t`.
    pub recv_from_child: Vec<Option<u32>>,
    /// `send_to_parent[t]` = message sent to the parent at time `t`.
    pub send_to_parent: Vec<Option<u32>>,
    /// `send_to_children[t]` = message multicast to (some of the) children
    /// at time `t`.
    pub send_to_children: Vec<Option<u32>>,
}

impl VertexTrace {
    /// The last time index carried by the trace.
    pub fn horizon(&self) -> usize {
        self.recv_from_parent.len().saturating_sub(1)
    }

    /// Renders the trace in the paper's table format.
    pub fn render(&self) -> String {
        let horizon = self.horizon();
        let mut out = String::new();
        let cell = |m: Option<u32>| match m {
            Some(m) => m.to_string(),
            None => "-".to_string(),
        };
        let row = |name: &str, data: &[Option<u32>]| {
            let cells: Vec<String> = data.iter().map(|&m| cell(m)).collect();
            format!("{name:<22}| {}\n", cells.join(" | "))
        };
        let times: Vec<String> = (0..=horizon).map(|t| t.to_string()).collect();
        out.push_str(&format!("{:<22}| {}\n", "Time", times.join(" | ")));
        out.push_str(&row("Receive from Parent", &self.recv_from_parent));
        out.push_str(&row("Receive from Child", &self.recv_from_child));
        out.push_str(&row("Send to Parent", &self.send_to_parent));
        out.push_str(&row("Send to Children", &self.send_to_children));
        out
    }
}

/// Extracts the per-vertex trace of `vertex` from a tree schedule.
///
/// The trace spans times `0..=schedule.makespan()` (the final receives land
/// one step after the final sends).
///
/// # Panics
///
/// Panics if the schedule references vertices outside the tree, or if a
/// vertex exchanges messages with a non-neighbour in the tree — both
/// indicate the schedule was not built for `tree`. (Run the schedule
/// through [`crate::Simulator`] first for a graceful error.)
pub fn vertex_trace(schedule: &Schedule, tree: &RootedTree, vertex: usize) -> VertexTrace {
    let horizon = schedule.makespan();
    let mut trace = VertexTrace {
        vertex,
        recv_from_parent: vec![None; horizon + 1],
        recv_from_child: vec![None; horizon + 1],
        send_to_parent: vec![None; horizon + 1],
        send_to_children: vec![None; horizon + 1],
    };
    let parent = tree.parent(vertex);
    for (t, tx) in schedule.iter() {
        if tx.from == vertex {
            for &d in &tx.to {
                if Some(d) == parent {
                    trace.send_to_parent[t] = Some(tx.msg);
                } else {
                    assert_eq!(
                        tree.parent(d),
                        Some(vertex),
                        "schedule sends {} -> {d}, not a tree edge",
                        tx.from
                    );
                    trace.send_to_children[t] = Some(tx.msg);
                }
            }
        } else if tx.to.binary_search(&vertex).is_ok() {
            if Some(tx.from) == parent {
                trace.recv_from_parent[t + 1] = Some(tx.msg);
            } else {
                assert_eq!(
                    tree.parent(tx.from),
                    Some(vertex),
                    "schedule sends {} -> {vertex}, not a tree edge",
                    tx.from
                );
                trace.recv_from_child[t + 1] = Some(tx.msg);
            }
        }
    }
    trace
}

/// Traces for every vertex of the tree.
pub fn full_trace(schedule: &Schedule, tree: &RootedTree) -> Vec<VertexTrace> {
    (0..tree.n())
        .map(|v| vertex_trace(schedule, tree, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Transmission;
    use gossip_graph::NO_PARENT;

    fn chain3() -> RootedTree {
        RootedTree::from_parents(0, &[NO_PARENT, 0, 1]).unwrap()
    }

    #[test]
    fn classifies_directions() {
        let tree = chain3();
        let mut s = Schedule::new(3);
        // t0: 1 sends msg 1 to parent 0; t1: 1 sends msg 2 to child 2.
        s.add_transmission(0, Transmission::unicast(1, 1, 0));
        s.add_transmission(1, Transmission::unicast(2, 1, 2));
        let tr = vertex_trace(&s, &tree, 1);
        assert_eq!(tr.send_to_parent[0], Some(1));
        assert_eq!(tr.send_to_children[1], Some(2));
        assert_eq!(tr.recv_from_parent.iter().flatten().count(), 0);

        let tr0 = vertex_trace(&s, &tree, 0);
        assert_eq!(tr0.recv_from_child[1], Some(1));

        let tr2 = vertex_trace(&s, &tree, 2);
        assert_eq!(tr2.recv_from_parent[2], Some(2));
    }

    #[test]
    fn simultaneous_parent_and_child_send() {
        // One multicast to parent and child shows up in both send rows.
        let tree = chain3();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::new(1, 1, vec![0, 2]));
        let tr = vertex_trace(&s, &tree, 1);
        assert_eq!(tr.send_to_parent[0], Some(1));
        assert_eq!(tr.send_to_children[0], Some(1));
    }

    #[test]
    fn render_contains_rows() {
        let tree = chain3();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(1, 1, 0));
        let txt = vertex_trace(&s, &tree, 0).render();
        assert!(txt.contains("Receive from Child"));
        assert!(txt.contains("Send to Parent"));
        assert!(txt.starts_with("Time"));
    }

    #[test]
    fn full_trace_covers_all() {
        let tree = chain3();
        let s = Schedule::new(3);
        assert_eq!(full_trace(&s, &tree).len(), 3);
    }
}
