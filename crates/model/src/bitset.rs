//! Fixed-width bitsets for hold sets.
//!
//! The simulator tracks, for each processor, which of the `n` messages it
//! holds. Hold sets are append-only (a received message is never dropped),
//! dense by the end of a run, and queried in hot validation loops — a flat
//! `u64`-block bitset beats `HashSet<u32>` on every axis here.

use serde::{Deserialize, Serialize};

/// A fixed-capacity set of small integers backed by `u64` blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl BitSet {
    /// An empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// The value range `0..capacity` this set admits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of elements currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every value in `0..capacity` is present.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Inserts `value`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bitset value {value} >= capacity {}",
            self.capacity
        );
        let (b, m) = (value / 64, 1u64 << (value % 64));
        let newly = self.blocks[b] & m == 0;
        self.blocks[b] |= m;
        self.len += newly as usize;
        newly
    }

    /// Whether `value` is present. Values `>= capacity` are never present.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        value < self.capacity && self.blocks[value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Iterates the present values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(bi * 64 + tz)
            })
        })
    }

    /// The backing `u64` blocks, least-significant value first. Bits at or
    /// above `capacity` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.blocks
    }

    /// Builds a set directly from backing words (the bitset kernel's flat
    /// hold rows). Bits at or above `capacity` are masked off; `len` is
    /// recomputed by popcount.
    pub fn from_words(mut words: Vec<u64>, capacity: usize) -> Self {
        words.resize(capacity.div_ceil(64), 0);
        if !capacity.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (capacity % 64)) - 1;
            }
        }
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        BitSet {
            blocks: words,
            capacity,
            len,
        }
    }

    /// Word-wise union: ORs `other` into `self`, returning how many values
    /// were newly added. Both sets must have the same capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> usize {
        assert_eq!(
            self.capacity, other.capacity,
            "union of bitsets with different capacities"
        );
        let before = self.len;
        for (a, &b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
        self.len = self.blocks.iter().map(|w| w.count_ones() as usize).sum();
        self.len - before
    }

    /// Iterates the *absent* values in `0..capacity` in ascending order —
    /// the word-parallel complement walk residual extraction runs on.
    pub fn iter_missing(&self) -> impl Iterator<Item = usize> + '_ {
        let capacity = self.capacity;
        self.blocks
            .iter()
            .enumerate()
            .flat_map(move |(bi, &block)| {
                let mut bits = !block;
                if bi == capacity / 64 && !capacity.is_multiple_of(64) {
                    bits &= (1u64 << (capacity % 64)) - 1;
                }
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(bi * 64 + tz)
                })
                .filter(move |&v| v < capacity)
            })
    }

    /// The smallest absent value in `0..capacity`, if any.
    pub fn first_missing(&self) -> Option<usize> {
        for (bi, &block) in self.blocks.iter().enumerate() {
            if block != u64::MAX {
                let candidate = bi * 64 + (!block).trailing_zeros() as usize;
                if candidate < self.capacity {
                    return Some(candidate);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(63)); // already present
        assert_eq!(s.len(), 4);
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(!s.contains(1));
        assert!(!s.contains(1000));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(130);
        for v in [5, 64, 127, 128, 0] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 64, 127, 128]);
    }

    #[test]
    fn fullness() {
        let mut s = BitSet::new(3);
        assert!(!s.is_full());
        s.insert(0);
        s.insert(1);
        assert_eq!(s.first_missing(), Some(2));
        s.insert(2);
        assert!(s.is_full());
        assert_eq!(s.first_missing(), None);
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full()); // vacuously
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn first_missing_at_block_boundary() {
        let mut s = BitSet::new(65);
        for v in 0..64 {
            s.insert(v);
        }
        assert_eq!(s.first_missing(), Some(64));
    }
}
