//! Fault injection: adversarial schedule mutations for validator hardening.
//!
//! The simulator is the reproduction's trust anchor, so it gets the same
//! treatment a production validator would: seeded mutations that break a
//! known-good schedule in targeted ways, paired with tests asserting the
//! simulator rejects (or detects the incompleteness of) every mutant. A
//! validator that accepts a mutant would be silently vouching for broken
//! algorithms.

use crate::round::Transmission;
use crate::schedule::Schedule;
use gossip_graph::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The kinds of damage [`inject_fault`] can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Delete one transmission (schedule stays legal but must become
    /// incomplete — unless the delivery was redundant).
    DropTransmission,
    /// Duplicate a transmission within its round (its receivers then
    /// receive twice: must be rejected).
    DuplicateTransmission,
    /// Replace a transmission's message with one the sender cannot yet
    /// hold (its own future receive): usually rejected as not-held.
    CorruptMessage,
    /// Redirect one destination to a non-neighbour (must be rejected).
    RedirectToNonNeighbor,
    /// Move a transmission one round earlier (often breaks hold-set
    /// causality for relayed messages).
    ShiftEarlier,
}

impl Fault {
    /// All fault kinds.
    pub fn all() -> &'static [Fault] {
        &[
            Fault::DropTransmission,
            Fault::DuplicateTransmission,
            Fault::CorruptMessage,
            Fault::RedirectToNonNeighbor,
            Fault::ShiftEarlier,
        ]
    }
}

/// Applies `fault` to a random location of `schedule` (seeded, so mutants
/// are reproducible). Returns `None` when the schedule offers no applicable
/// site (e.g. empty schedule, round-0-only schedule for [`Fault::ShiftEarlier`],
/// or a complete graph for [`Fault::RedirectToNonNeighbor`]).
///
/// Sites are filtered per fault kind *before* sampling, so every seed
/// yields a mutant whenever any applicable site exists.
pub fn inject_fault(schedule: &Schedule, fault: Fault, g: &Graph, seed: u64) -> Option<Schedule> {
    let n = g.n();
    let mut rng = SmallRng::seed_from_u64(seed);
    let sites: Vec<(usize, usize)> = schedule
        .rounds
        .iter()
        .enumerate()
        .flat_map(|(t, r)| (0..r.transmissions.len()).map(move |i| (t, i)))
        .filter(|&(t, i)| match fault {
            // Shifting a round-0 transmission earlier is impossible; keep
            // only sites that can actually move.
            Fault::ShiftEarlier => t > 0,
            // Redirecting needs an actual non-neighbour to aim at.
            Fault::RedirectToNonNeighbor => {
                let from = schedule.rounds[t].transmissions[i].from;
                from < n && g.degree(from) + 1 < n
            }
            _ => true,
        })
        .collect();
    if sites.is_empty() {
        return None;
    }
    let (t, i) = sites[rng.gen_range(0..sites.len())];
    let mut s = schedule.clone();
    let tx = s.rounds[t].transmissions[i].clone();
    match fault {
        Fault::DropTransmission => {
            s.rounds[t].transmissions.remove(i);
        }
        Fault::DuplicateTransmission => {
            s.rounds[t].transmissions.push(tx);
        }
        Fault::CorruptMessage => {
            let other = (tx.msg as usize + 1 + rng.gen_range(0..n.saturating_sub(1))) % n;
            s.rounds[t].transmissions[i].msg = other as u32;
        }
        Fault::RedirectToNonNeighbor => {
            // Sample an actual non-neighbour of the sender (site filtering
            // guarantees at least one exists), so the mutant always
            // violates the adjacency rule.
            let non_neighbors: Vec<usize> = (0..n)
                .filter(|&j| j != tx.from && !g.has_edge(tx.from, j))
                .collect();
            let j = non_neighbors[rng.gen_range(0..non_neighbors.len())];
            let mut redirected = tx.clone();
            redirected.to[0] = j;
            s.rounds[t].transmissions[i] =
                Transmission::new(redirected.msg, redirected.from, redirected.to);
        }
        Fault::ShiftEarlier => {
            s.rounds[t].transmissions.remove(i);
            s.rounds[t - 1].transmissions.push(tx);
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::CommModel;
    use crate::simulator::Simulator;
    use gossip_graph::Graph;

    /// A known-good hand schedule on a 4-path.
    fn good() -> (Graph, Schedule, Vec<usize>) {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut s = Schedule::new(4);
        // Build explicitly: flood msg by msg through the path, one hop per
        // round (non-optimal, redundancy-free).
        let mut time = 0;
        for m in 0..4u32 {
            let o = m as usize;
            for v in o..3 {
                s.add_transmission(time, Transmission::unicast(m, v, v + 1));
                time += 1;
            }
            for v in (1..=o).rev() {
                s.add_transmission(time, Transmission::unicast(m, v, v - 1));
                time += 1;
            }
        }
        (g, s, vec![0, 1, 2, 3])
    }

    fn run(g: &Graph, s: &Schedule, o: &[usize]) -> Result<bool, crate::error::ModelError> {
        let mut sim = Simulator::new(g, CommModel::Multicast, o)?;
        Ok(sim.run(s)?.complete)
    }

    #[test]
    fn baseline_is_good() {
        let (g, s, o) = good();
        assert_eq!(run(&g, &s, &o), Ok(true));
    }

    #[test]
    fn every_fault_kind_is_caught() {
        let (g, s, o) = good();
        for &fault in Fault::all() {
            let mut detected = 0;
            let mut applied = 0;
            for seed in 0..40 {
                let Some(mutant) = inject_fault(&s, fault, &g, seed) else {
                    continue;
                };
                if mutant == s {
                    continue;
                }
                applied += 1;
                match run(&g, &mutant, &o) {
                    Err(_) => detected += 1,    // rule violation caught
                    Ok(false) => detected += 1, // incompleteness caught
                    Ok(true) => {}              // silently fine = miss
                }
            }
            assert!(applied > 0, "{fault:?} never applied");
            // Most mutants must be caught; a minority can be semantically
            // harmless (e.g. a redirect that lands on a free neighbour, or
            // an origin hop legally shifted into an empty slot).
            assert!(
                detected * 2 >= applied,
                "{fault:?}: caught only {detected}/{applied}"
            );
        }
    }

    #[test]
    fn drop_makes_incomplete() {
        let (g, s, o) = good();
        // Dropping any single delivery from a redundancy-free schedule must
        // leave someone missing a message.
        for seed in 0..20 {
            if let Some(mutant) = inject_fault(&s, Fault::DropTransmission, &g, seed) {
                assert_ne!(run(&g, &mutant, &o), Ok(true), "seed {seed}");
            }
        }
    }

    #[test]
    fn duplicate_always_rejected() {
        let (g, s, o) = good();
        for seed in 0..20 {
            if let Some(mutant) = inject_fault(&s, Fault::DuplicateTransmission, &g, seed) {
                assert!(run(&g, &mutant, &o).is_err(), "seed {seed}");
            }
        }
    }

    #[test]
    fn redirect_always_hits_a_real_non_neighbor() {
        // The redirect targets an actual non-edge of the sender, so every
        // mutant (not just "overwhelmingly" many) violates adjacency.
        let (g, s, o) = good();
        for seed in 0..40 {
            let mutant = inject_fault(&s, Fault::RedirectToNonNeighbor, &g, seed)
                .expect("the 4-path has non-neighbours for every sender");
            assert!(
                matches!(
                    run(&g, &mutant, &o),
                    Err(crate::error::ModelError::NotAdjacent { .. })
                ),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn redirect_on_complete_graph_has_no_site() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        assert_eq!(inject_fault(&s, Fault::RedirectToNonNeighbor, &g, 0), None);
    }

    #[test]
    fn shift_earlier_never_wastes_a_seed() {
        // Every seed must yield a mutant because the schedule has sites
        // beyond round 0; previously a draw landing on round 0 was wasted.
        let (g, s, _o) = good();
        for seed in 0..40 {
            let mutant = inject_fault(&s, Fault::ShiftEarlier, &g, seed)
                .expect("sites at t > 0 exist, so every seed must produce a mutant");
            assert_ne!(mutant, s);
        }
    }

    #[test]
    fn shift_earlier_with_only_round_zero_has_no_site() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut s = Schedule::new(2);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(0, Transmission::unicast(1, 1, 0));
        assert_eq!(inject_fault(&s, Fault::ShiftEarlier, &g, 7), None);
    }
}
