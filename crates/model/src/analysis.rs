//! Schedule analysis: latency profiles, link loads, redundancy, and the
//! per-processor Gantt rendering used by experiment reports.
//!
//! The validator answers "is this schedule legal and complete?"; this
//! module answers "what does it look like?" — when each message finishes
//! spreading, how evenly links are loaded, how much of the traffic is
//! redundant (re-delivering something the receiver already holds), and how
//! busy each processor's send/receive ports are.

use crate::bitset::BitSet;
use crate::error::ModelError;
use crate::schedule::Schedule;
use gossip_graph::Graph;
use serde::{Deserialize, Serialize};

/// Per-message and per-link profile of one schedule execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleAnalysis {
    /// `completion[m]` = earliest time every processor holds message `m`
    /// (`None` if it never finishes spreading).
    pub message_completion: Vec<Option<usize>>,
    /// Deliveries that handed a receiver a message it already held.
    pub redundant_deliveries: usize,
    /// Total deliveries.
    pub total_deliveries: usize,
    /// `(u, v, uses)` per undirected link actually used, descending by use.
    pub link_loads: Vec<(usize, usize, usize)>,
    /// Rounds in which each processor sent, indexed by processor.
    pub send_rounds: Vec<usize>,
    /// Rounds in which each processor received, indexed by processor.
    pub recv_rounds: Vec<usize>,
}

impl ScheduleAnalysis {
    /// The latest message completion time (the schedule's effective
    /// makespan from the knowledge point of view).
    pub fn last_completion(&self) -> Option<usize> {
        self.message_completion.iter().copied().max().flatten()
    }

    /// Redundancy ratio in `[0, 1]`: 0 = every delivery was new
    /// information.
    pub fn redundancy(&self) -> f64 {
        if self.total_deliveries == 0 {
            0.0
        } else {
            self.redundant_deliveries as f64 / self.total_deliveries as f64
        }
    }

    /// Ratio of the busiest link's load to the average over used links
    /// (1.0 = perfectly balanced).
    pub fn link_imbalance(&self) -> f64 {
        if self.link_loads.is_empty() {
            return 1.0;
        }
        let max = self.link_loads[0].2 as f64;
        let avg = self.link_loads.iter().map(|&(_, _, u)| u).sum::<usize>() as f64
            / self.link_loads.len() as f64;
        max / avg
    }
}

/// Replays `schedule` (assumed already validated) and computes its profile.
///
/// Returns the same errors as the simulator for malformed inputs, so it can
/// be used standalone.
pub fn analyze_schedule(
    g: &Graph,
    schedule: &Schedule,
    origin_of_message: &[usize],
) -> Result<ScheduleAnalysis, ModelError> {
    let n = g.n();
    if schedule.n != n {
        return Err(ModelError::SizeMismatch {
            graph_n: n,
            schedule_n: schedule.n,
        });
    }
    if origin_of_message.len() != n {
        return Err(ModelError::BadOriginTable {
            reason: format!("{} origins for {n} processors", origin_of_message.len()),
        });
    }
    let mut hold: Vec<BitSet> = vec![BitSet::new(n); n];
    let mut holders = vec![0usize; n];
    for (m, &p) in origin_of_message.iter().enumerate() {
        hold[p].insert(m);
        holders[m] = 1;
    }
    let mut analysis = ScheduleAnalysis {
        message_completion: vec![if n == 1 { Some(0) } else { None }; n],
        redundant_deliveries: 0,
        total_deliveries: 0,
        link_loads: Vec::new(),
        send_rounds: vec![0; n],
        recv_rounds: vec![0; n],
    };
    let mut link_uses: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();

    for (t, round) in schedule.rounds.iter().enumerate() {
        for tx in &round.transmissions {
            analysis.send_rounds[tx.from] += 1;
            for &d in &tx.to {
                analysis.total_deliveries += 1;
                analysis.recv_rounds[d] += 1;
                let key = (tx.from.min(d), tx.from.max(d));
                *link_uses.entry(key).or_default() += 1;
                if hold[d].insert(tx.msg as usize) {
                    holders[tx.msg as usize] += 1;
                    if holders[tx.msg as usize] == n {
                        analysis.message_completion[tx.msg as usize] = Some(t + 1);
                    }
                } else {
                    analysis.redundant_deliveries += 1;
                }
            }
        }
    }
    analysis.link_loads = link_uses.into_iter().map(|((u, v), c)| (u, v, c)).collect();
    analysis
        .link_loads
        .sort_by_key(|&(u, v, c)| (std::cmp::Reverse(c), u, v));
    Ok(analysis)
}

/// The knowledge curve of a schedule: entry `t` is the fraction of
/// (processor, message) pairs known at time `t`, from `t = 0` (just the
/// origins) through the makespan (1.0 for a complete gossip).
///
/// This is the round-by-round progress profile that distinguishes
/// algorithms with equal makespans and shows *where* each algorithm's time
/// goes (e.g. algorithm Simple's flat segment while everything funnels
/// through the root).
///
/// The curve is the coverage component of the simulator's per-round probes
/// ([`crate::Simulator::run_probed`]), so the schedule is also validated
/// against the multicast model rules; rule violations surface as errors.
pub fn knowledge_curve(
    g: &Graph,
    schedule: &Schedule,
    origin_of_message: &[usize],
) -> Result<Vec<f64>, ModelError> {
    let mut sim =
        crate::Simulator::with_origins(g, crate::CommModel::Multicast, origin_of_message)?;
    let mut curve = Vec::with_capacity(schedule.makespan() + 1);
    curve.push(sim.coverage());
    let (_, probes) = sim.run_probed(schedule)?;
    curve.extend(probes.iter().map(|p| p.coverage));
    Ok(curve)
}

/// Renders a knowledge curve as a unicode sparkline (one glyph per round).
pub fn render_sparkline(curve: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    curve
        .iter()
        .map(|&v| {
            let idx = ((v.clamp(0.0, 1.0)) * 7.0).round() as usize;
            GLYPHS[idx]
        })
        .collect()
}

/// Renders a per-processor Gantt chart of the schedule: one row per
/// processor, one column per round; `S` = send, `R` = receive, `B` = both,
/// `.` = idle. Useful for eyeballing pipelining structure.
pub fn render_gantt(schedule: &Schedule) -> String {
    let n = schedule.n;
    let horizon = schedule.makespan();
    let mut grid = vec![vec![b'.'; horizon + 1]; n];
    for (t, tx) in schedule.iter() {
        grid[tx.from][t] = match grid[tx.from][t] {
            b'R' | b'B' => b'B',
            _ => b'S',
        };
        for &d in &tx.to {
            grid[d][t + 1] = match grid[d][t + 1] {
                b'S' | b'B' => b'B',
                _ => b'R',
            };
        }
    }
    let mut out = String::with_capacity(n * (horizon + 16));
    for (p, row) in grid.iter().enumerate() {
        out.push_str(&format!("{p:>4} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Transmission;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn completion_times() {
        let g = path3();
        let mut s = Schedule::new(3);
        // msg 1 multicast both ways at t0 -> complete at t1.
        s.add_transmission(0, Transmission::new(1, 1, vec![0, 2]));
        // msg 0: 0->1 at t0? receiver 1 busy; do t1 and t2.
        s.add_transmission(1, Transmission::unicast(0, 0, 1));
        s.add_transmission(2, Transmission::unicast(0, 1, 2));
        // msg 2 never spreads.
        let a = analyze_schedule(&g, &s, &[0, 1, 2]).unwrap();
        assert_eq!(a.message_completion[1], Some(1));
        assert_eq!(a.message_completion[0], Some(3));
        assert_eq!(a.message_completion[2], None);
        assert_eq!(a.last_completion(), Some(3));
        assert_eq!(a.redundant_deliveries, 0);
        assert_eq!(a.total_deliveries, 4);
    }

    #[test]
    fn redundancy_counted() {
        let g = path3();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(1, Transmission::unicast(0, 0, 1)); // redundant
        let a = analyze_schedule(&g, &s, &[0, 1, 2]).unwrap();
        assert_eq!(a.redundant_deliveries, 1);
        assert!((a.redundancy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn link_loads_sorted() {
        let g = path3();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(1, Transmission::unicast(0, 1, 2));
        s.add_transmission(2, Transmission::unicast(1, 1, 2));
        let a = analyze_schedule(&g, &s, &[0, 1, 2]).unwrap();
        assert_eq!(a.link_loads[0], (1, 2, 2));
        assert_eq!(a.link_loads[1], (0, 1, 1));
        assert!(a.link_imbalance() > 1.0);
    }

    #[test]
    fn gantt_marks() {
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(1, Transmission::unicast(0, 1, 2));
        let txt = render_gantt(&s);
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].contains("S"));
        assert!(lines[1].contains("B") || lines[1].contains("RS")); // 1 receives at t1, sends at t1
        assert!(lines[2].contains("R"));
    }

    #[test]
    fn knowledge_curve_monotone_and_complete() {
        let g = path3();
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::new(1, 1, vec![0, 2]));
        s.add_transmission(1, Transmission::unicast(0, 0, 1));
        s.add_transmission(2, Transmission::unicast(0, 1, 2));
        s.add_transmission(2, Transmission::unicast(2, 2, 1));
        s.add_transmission(3, Transmission::unicast(2, 1, 0));
        let c = knowledge_curve(&g, &s, &[0, 1, 2]).unwrap();
        assert_eq!(c.len(), s.makespan() + 1);
        assert!((c[0] - 3.0 / 9.0).abs() < 1e-9);
        for w in c.windows(2) {
            assert!(w[1] >= w[0], "curve must be monotone");
        }
        assert!((c.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparkline_renders_one_glyph_per_point() {
        let spark = render_sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(spark.chars().count(), 3);
        assert!(spark.starts_with('▁'));
        assert!(spark.ends_with('█'));
    }

    #[test]
    fn singleton_complete_at_zero() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let a = analyze_schedule(&g, &Schedule::new(1), &[0]).unwrap();
        assert_eq!(a.message_completion[0], Some(0));
    }
}
