//! Lossy execution: running schedules under a [`FaultPlan`], degrading
//! instead of erroring.
//!
//! The strict [`Simulator::step`] is the trust anchor — any deviation from
//! the paper's model is an error. Real deployments are not so kind: packets
//! drop, links flap, processors die. This module adds a second execution
//! mode where *fault-induced* failures (a sender that never received the
//! message it was scheduled to relay, a crashed receiver, a sampled loss)
//! are recorded as [`LostDelivery`] entries and execution continues, while
//! *structural* schedule bugs (out-of-range indices, duplicate
//! senders/receivers, non-adjacent destinations, model violations) still
//! error exactly as in strict mode. Hold sets reflect only what actually
//! arrived, and [`Simulator::residual`] reports the missing
//! (message, vertex) pairs the recovery layer must still complete.
//!
//! Rounds are indexed absolutely: a simulator that has already executed
//! `t` rounds samples the fault plan at round `t`, so one simulator carried
//! across repair epochs keeps drawing from the same deterministic fault
//! sequence — replaying the combined transcript against the same plan
//! reproduces identical outcomes.

use crate::error::ModelError;
use crate::fault_plan::FaultPlan;
use crate::round::CommRound;
use crate::schedule::Schedule;
use crate::simulator::Simulator;
use serde::{Deserialize, Serialize};

/// Why a scheduled delivery did not land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossCause {
    /// Dropped by the per-delivery loss sampler.
    Sampled,
    /// The link between sender and receiver was down this round.
    LinkDown,
    /// The sender had crash-stopped before this round.
    SenderCrashed,
    /// The receiver had crash-stopped before this round.
    ReceiverCrashed,
    /// The sender never received the message it was scheduled to forward
    /// (a cascade from an earlier loss).
    NotHeld,
}

impl LossCause {
    /// Stable snake_case label used in streamed `loss` events and loss
    /// breakdown metric names.
    pub fn label(&self) -> &'static str {
        match self {
            LossCause::Sampled => "sampled",
            LossCause::LinkDown => "link_down",
            LossCause::SenderCrashed => "sender_crashed",
            LossCause::ReceiverCrashed => "receiver_crashed",
            LossCause::NotHeld => "not_held",
        }
    }
}

/// One scheduled delivery that was lost, with its cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LostDelivery {
    /// Absolute round at which the delivery was scheduled.
    pub round: usize,
    /// The message that failed to arrive.
    pub msg: u32,
    /// The scheduled sender.
    pub from: usize,
    /// The scheduled receiver.
    pub to: usize,
    /// Why the delivery was lost.
    pub cause: LossCause,
}

/// What a lossy run of a schedule established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossyOutcome {
    /// Rounds executed (the schedule makespan).
    pub rounds_executed: usize,
    /// Deliveries that actually landed.
    pub delivered: usize,
    /// Deliveries lost during this run (same count as the entries appended
    /// to the caller's loss log).
    pub lost: usize,
    /// Whether every *surviving* processor ended holding every message.
    pub complete_among_alive: bool,
}

impl<'g> Simulator<'g> {
    /// Executes one round under `plan`, degrading on fault-induced
    /// failures.
    ///
    /// Structural schedule violations still error with the state unchanged,
    /// exactly as [`Simulator::step`]; the only strict check *not* enforced
    /// is `MessageNotHeld`, which becomes a recorded [`LossCause::NotHeld`]
    /// cascade loss. Lost deliveries are appended to `lost`. Returns the
    /// number of deliveries that landed.
    pub fn step_lossy(
        &mut self,
        round: &CommRound,
        plan: &FaultPlan,
        lost: &mut Vec<LostDelivery>,
    ) -> Result<usize, ModelError> {
        let n = self.g.n();
        let t = self.time;
        self.round_stamp += 1;
        let stamp = self.round_stamp;

        // Validation pass: every structural rule of the strict simulator,
        // minus the hold-set check (faults legitimately break relay
        // chains). Nothing is mutated before this pass completes.
        for tx in &round.transmissions {
            if tx.from >= n {
                return Err(ModelError::ProcessorOutOfRange {
                    round: t,
                    proc: tx.from,
                    n,
                });
            }
            let n_msgs = self.n_msgs;
            if tx.msg as usize >= n_msgs {
                return Err(ModelError::MessageOutOfRange {
                    round: t,
                    msg: tx.msg,
                    n: n_msgs,
                });
            }
            if tx.to.is_empty() {
                return Err(ModelError::EmptyDestination {
                    round: t,
                    sender: tx.from,
                });
            }
            if self.send_stamp[tx.from] == stamp {
                return Err(ModelError::DuplicateSender {
                    round: t,
                    sender: tx.from,
                });
            }
            self.send_stamp[tx.from] = stamp;
            self.model
                .check_destinations(self.g, tx)
                .map_err(|reason| ModelError::ModelViolation {
                    round: t,
                    sender: tx.from,
                    reason,
                })?;
            let mut prev: Option<usize> = None;
            for &d in &tx.to {
                if d >= n {
                    return Err(ModelError::ProcessorOutOfRange {
                        round: t,
                        proc: d,
                        n,
                    });
                }
                if prev == Some(d) {
                    return Err(ModelError::DuplicateDestination {
                        round: t,
                        sender: tx.from,
                        receiver: d,
                    });
                }
                prev = Some(d);
                if !self.g.has_edge(tx.from, d) {
                    return Err(ModelError::NotAdjacent {
                        round: t,
                        sender: tx.from,
                        receiver: d,
                    });
                }
                if self.recv_stamp[d] == stamp {
                    return Err(ModelError::DuplicateReceiver {
                        round: t,
                        receiver: d,
                    });
                }
                self.recv_stamp[d] = stamp;
            }
        }

        // Apply pass: deliveries land unless a fault condition intercepts.
        let mut delivered = 0;
        for tx in &round.transmissions {
            let m = tx.msg as usize;
            let whole_tx_cause = if plan.is_crashed(tx.from, t) {
                Some(LossCause::SenderCrashed)
            } else if !self.hold[tx.from].contains(m) {
                Some(LossCause::NotHeld)
            } else {
                None
            };
            for &d in &tx.to {
                let cause = whole_tx_cause.or_else(|| {
                    if plan.is_crashed(d, t) {
                        Some(LossCause::ReceiverCrashed)
                    } else if plan.link_down(tx.from, d, t) {
                        Some(LossCause::LinkDown)
                    } else if plan.loses(t, tx.from, d) {
                        Some(LossCause::Sampled)
                    } else {
                        None
                    }
                });
                match cause {
                    Some(cause) => lost.push(LostDelivery {
                        round: t,
                        msg: tx.msg,
                        from: tx.from,
                        to: d,
                        cause,
                    }),
                    None => {
                        if self.hold[d].insert(m) {
                            self.known_pairs += 1;
                        }
                        delivered += 1;
                    }
                }
            }
        }
        self.time += 1;
        Ok(delivered)
    }

    /// Runs a whole schedule under `plan`, starting from the simulator's
    /// current time (absolute rounds index the fault plan, so a simulator
    /// carried across repair epochs keeps sampling the same deterministic
    /// fault sequence). Lost deliveries are appended to `lost`.
    pub fn run_lossy(
        &mut self,
        schedule: &Schedule,
        plan: &FaultPlan,
        lost: &mut Vec<LostDelivery>,
    ) -> Result<LossyOutcome, ModelError> {
        if schedule.n != self.g.n() {
            return Err(ModelError::SizeMismatch {
                graph_n: self.g.n(),
                schedule_n: schedule.n,
            });
        }
        let before = lost.len();
        let makespan = schedule.makespan();
        let mut delivered = 0;
        for round in &schedule.rounds[..makespan] {
            delivered += self.step_lossy(round, plan, lost)?;
        }
        Ok(LossyOutcome {
            rounds_executed: makespan,
            delivered,
            lost: lost.len() - before,
            complete_among_alive: self.residual(plan).is_empty(),
        })
    }

    /// The missing (message, vertex) pairs among processors still alive at
    /// the current time — what a recovery layer must still complete.
    /// Crashed processors are excluded: crash-stop failures are permanent,
    /// so their gaps are not recoverable work.
    pub fn residual(&self, plan: &FaultPlan) -> Vec<(u32, usize)> {
        let alive = plan.alive_at(self.g.n(), self.time);
        let mut out = Vec::new();
        for (v, holds) in self.hold.iter().enumerate() {
            if !alive[v] {
                continue;
            }
            for m in 0..self.n_msgs {
                if !holds.contains(m) {
                    out.push((m as u32, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::CommModel;
    use crate::round::Transmission;
    use gossip_graph::Graph;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    fn ring_schedule(n: usize) -> (Graph, Schedule) {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut s = Schedule::new(n);
        for t in 0..n - 1 {
            for p in 0..n {
                let msg = ((p + n - t) % n) as u32;
                s.add_transmission(t, Transmission::unicast(msg, p, (p + 1) % n));
            }
        }
        (g, s)
    }

    fn origins(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn zero_fault_plan_matches_strict_run() {
        let (g, s) = ring_schedule(6);
        let o = origins(6);
        let plan = FaultPlan::none();
        let mut lost = Vec::new();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &o).unwrap();
        let out = sim.run_lossy(&s, &plan, &mut lost).unwrap();
        assert!(lost.is_empty());
        assert!(out.complete_among_alive);
        assert_eq!(out.delivered, 6 * 5);
        assert!(sim.gossip_complete());
        assert!(sim.residual(&plan).is_empty());
    }

    #[test]
    fn total_loss_delivers_nothing_but_does_not_error() {
        let (g, s) = ring_schedule(5);
        let plan = FaultPlan::new(1).with_loss_rate(1.0);
        let mut lost = Vec::new();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &origins(5)).unwrap();
        let out = sim.run_lossy(&s, &plan, &mut lost).unwrap();
        assert_eq!(out.delivered, 0);
        assert!(!out.complete_among_alive);
        // Round 0 loses all 5 scheduled deliveries to sampling; later
        // rounds cascade NotHeld for the broken relay chains.
        assert!(lost.iter().any(|l| l.cause == LossCause::Sampled));
        assert!(lost.iter().any(|l| l.cause == LossCause::NotHeld));
        // Residual: everyone misses all non-origin messages.
        assert_eq!(sim.residual(&plan).len(), 5 * 4);
    }

    #[test]
    fn crashed_processors_neither_send_nor_receive_and_leave_residual() {
        let g = path3();
        let plan = FaultPlan::new(0).with_crash(1, 0);
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1));
        s.add_transmission(1, Transmission::unicast(1, 1, 2));
        let mut lost = Vec::new();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &origins(3)).unwrap();
        let out = sim.run_lossy(&s, &plan, &mut lost).unwrap();
        assert_eq!(out.delivered, 0);
        assert_eq!(lost[0].cause, LossCause::ReceiverCrashed);
        assert_eq!(lost[1].cause, LossCause::SenderCrashed);
        // Residual excludes the dead vertex 1: survivors 0 and 2 each miss
        // the two messages they don't originate.
        let res = sim.residual(&plan);
        assert!(res.iter().all(|&(_, v)| v != 1));
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn link_outage_window_drops_exactly_inside_it() {
        let g = path3();
        let plan = FaultPlan::new(0).with_outage(0, 1, 0, 1);
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::unicast(0, 0, 1)); // down
        s.add_transmission(1, Transmission::unicast(0, 0, 1)); // back up
        let mut lost = Vec::new();
        let mut sim = Simulator::new(&g, CommModel::Multicast, &origins(3)).unwrap();
        let out = sim.run_lossy(&s, &plan, &mut lost).unwrap();
        assert_eq!(out.delivered, 1);
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].cause, LossCause::LinkDown);
        assert!(sim.holds(1).contains(0));
    }

    #[test]
    fn structural_bugs_still_error() {
        let g = path3();
        let plan = FaultPlan::new(0).with_loss_rate(0.5);
        let mut sim = Simulator::new(&g, CommModel::Multicast, &origins(3)).unwrap();
        let mut lost = Vec::new();
        // Non-adjacent destination is a schedule bug, not a fault.
        let round = CommRound::from_transmissions(vec![Transmission::unicast(0, 0, 2)]);
        assert!(matches!(
            sim.step_lossy(&round, &plan, &mut lost),
            Err(ModelError::NotAdjacent { .. })
        ));
        // Duplicate receiver likewise.
        let g2 = Graph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let mut sim2 = Simulator::new(&g2, CommModel::Multicast, &origins(3)).unwrap();
        let round = CommRound::from_transmissions(vec![
            Transmission::unicast(0, 0, 2),
            Transmission::unicast(1, 1, 2),
        ]);
        assert!(matches!(
            sim2.step_lossy(&round, &plan, &mut lost),
            Err(ModelError::DuplicateReceiver { .. })
        ));
        assert!(lost.is_empty(), "failed validation must not log losses");
    }

    #[test]
    fn absolute_rounds_make_replay_deterministic() {
        let (g, s) = ring_schedule(8);
        let plan = FaultPlan::new(123).with_loss_rate(0.3);
        let run = |split: usize| {
            let mut sim = Simulator::new(&g, CommModel::Multicast, &origins(8)).unwrap();
            let mut lost = Vec::new();
            // Execute the same rounds, optionally split into two run_lossy
            // calls at `split` — the absolute round indexing must make the
            // outcomes identical.
            let mut first = Schedule::new(8);
            let mut second = Schedule::new(8);
            for (t, tx) in s.iter() {
                if t < split {
                    first.add_transmission(t, tx.clone());
                } else {
                    second.add_transmission(t - split, tx.clone());
                }
            }
            sim.run_lossy(&first, &plan, &mut lost).unwrap();
            sim.run_lossy(&second, &plan, &mut lost).unwrap();
            let mut holds: Vec<Vec<usize>> = Vec::new();
            for v in 0..8 {
                holds.push(sim.holds(v).iter().collect());
            }
            (lost, holds)
        };
        assert_eq!(run(7), run(3));
    }
}
