//! Incremental schedule construction with immediate conflict checking.
//!
//! [`Schedule::add_transmission`] is append-only and unchecked — fine for
//! algorithms whose correctness is proven elsewhere, hostile for a user
//! assembling a schedule by hand (conflicts surface only at simulation
//! time, far from the mistake). [`ScheduleBuilder`] rejects an offending
//! insertion on the spot: duplicate senders, contested receivers,
//! non-edges, and hold-set violations (via incremental earliest-hold
//! tracking) are all reported with the exact round and processors involved.

use crate::error::ModelError;
use crate::models::CommModel;
use crate::round::Transmission;
use crate::schedule::Schedule;
use gossip_graph::Graph;
use std::collections::HashMap;

/// A checked, incremental builder for [`Schedule`].
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
/// use gossip_model::{ScheduleBuilder, CommModel};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let mut b = ScheduleBuilder::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
/// b.send(0, 0, 0, &[1]).unwrap();          // t=0: 0 -> 1 (msg 0)
/// b.send(1, 0, 1, &[2]).unwrap();          // t=1: relay
/// assert!(b.send(0, 2, 0, &[1]).is_err()); // msg 2 not held by 0 at t=0
/// let schedule = b.finish();
/// assert_eq!(schedule.makespan(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleBuilder<'g> {
    g: &'g Graph,
    model: CommModel,
    schedule: Schedule,
    /// `(proc, msg)` -> earliest hold time.
    earliest: HashMap<(usize, u32), usize>,
    /// `(proc, t)` -> already sending this round.
    send_busy: HashMap<(usize, usize), u32>,
    /// `(proc, t)` -> already receiving at time t (arrival slot).
    recv_busy: HashMap<(usize, usize), ()>,
}

impl<'g> ScheduleBuilder<'g> {
    /// Starts a builder over `g` with the given origin table
    /// (`origins[m]` = processor where message `m` starts; arbitrary
    /// multiplicity allowed).
    pub fn new(g: &'g Graph, model: CommModel, origins: &[usize]) -> Result<Self, ModelError> {
        let mut earliest = HashMap::new();
        for (m, &p) in origins.iter().enumerate() {
            if p >= g.n() {
                return Err(ModelError::BadOriginTable {
                    reason: format!("message {m} at out-of-range processor {p}"),
                });
            }
            earliest.insert((p, m as u32), 0);
        }
        Ok(ScheduleBuilder {
            g,
            model,
            schedule: Schedule::new(g.n()),
            earliest,
            send_busy: HashMap::new(),
            recv_busy: HashMap::new(),
        })
    }

    /// Adds a multicast of `msg` from `from` to `to` at round `t`,
    /// rejecting it (without state change) on any rule violation.
    ///
    /// Note: insertions may come in any time order; hold-set checking uses
    /// the earliest-known hold time, so inserting a *later* enabling
    /// transmission after a dependent one is rejected — insert in causal
    /// order.
    pub fn send(
        &mut self,
        t: usize,
        msg: u32,
        from: usize,
        to: &[usize],
    ) -> Result<(), ModelError> {
        let n = self.g.n();
        if from >= n {
            return Err(ModelError::ProcessorOutOfRange {
                round: t,
                proc: from,
                n,
            });
        }
        if to.is_empty() {
            return Err(ModelError::EmptyDestination {
                round: t,
                sender: from,
            });
        }
        if let Some(&m) = self.send_busy.get(&(from, t)) {
            if m != msg {
                return Err(ModelError::DuplicateSender {
                    round: t,
                    sender: from,
                });
            }
        }
        match self.earliest.get(&(from, msg)) {
            Some(&h) if h <= t => {}
            _ => {
                return Err(ModelError::MessageNotHeld {
                    round: t,
                    sender: from,
                    msg,
                })
            }
        }
        let tx = Transmission::new(msg, from, to.to_vec());
        self.model
            .check_destinations(self.g, &tx)
            .map_err(|reason| ModelError::ModelViolation {
                round: t,
                sender: from,
                reason,
            })?;
        let mut prev = None;
        for &d in &tx.to {
            if d >= n {
                return Err(ModelError::ProcessorOutOfRange {
                    round: t,
                    proc: d,
                    n,
                });
            }
            if prev == Some(d) {
                return Err(ModelError::DuplicateDestination {
                    round: t,
                    sender: from,
                    receiver: d,
                });
            }
            prev = Some(d);
            if !self.g.has_edge(from, d) {
                return Err(ModelError::NotAdjacent {
                    round: t,
                    sender: from,
                    receiver: d,
                });
            }
            if self.recv_busy.contains_key(&(d, t + 1)) {
                return Err(ModelError::DuplicateReceiver {
                    round: t,
                    receiver: d,
                });
            }
        }
        // Commit.
        let widening = self.send_busy.insert((from, t), msg).is_some();
        for &d in &tx.to {
            self.recv_busy.insert((d, t + 1), ());
            let e = self.earliest.entry((d, msg)).or_insert(t + 1);
            *e = (*e).min(t + 1);
        }
        if widening {
            // Same sender, same round, same message: widen the existing
            // multicast rather than emitting a second transmission (which
            // the simulator would reject as a duplicate sender).
            let existing = self.schedule.rounds[t]
                .transmissions
                .iter_mut()
                .find(|x| x.from == from)
                .expect("send_busy implies a recorded transmission");
            let mut to = std::mem::take(&mut existing.to);
            to.extend_from_slice(&tx.to);
            to.sort_unstable();
            existing.to = to;
        } else {
            self.schedule.add_transmission(t, tx);
        }
        Ok(())
    }

    /// Whether `proc` holds `msg` at time `t` given the insertions so far.
    pub fn holds_at(&self, proc: usize, msg: u32, t: usize) -> bool {
        self.earliest.get(&(proc, msg)).is_some_and(|&h| h <= t)
    }

    /// Finalizes the schedule (trailing empty rounds trimmed).
    pub fn finish(mut self) -> Schedule {
        let _phase = gossip_telemetry::profile::phase("builder_finish");
        gossip_telemetry::profile::count(
            "transmissions",
            self.schedule.stats().transmissions as u64,
        );
        self.schedule.trim();
        self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate_gossip;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn builds_a_valid_gossip() {
        let g = path3();
        let mut b = ScheduleBuilder::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
        b.send(0, 1, 1, &[0, 2]).unwrap();
        b.send(0, 0, 0, &[1]).unwrap();
        b.send(1, 2, 2, &[1]).unwrap();
        b.send(1, 0, 1, &[2]).unwrap();
        b.send(2, 2, 1, &[0]).unwrap();
        let s = b.finish();
        let o = simulate_gossip(&g, &s, &[0, 1, 2]).unwrap();
        assert!(o.complete);
        assert_eq!(o.completion_time, Some(3));
    }

    #[test]
    fn rejects_unheld_message() {
        let g = path3();
        let mut b = ScheduleBuilder::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
        assert!(matches!(
            b.send(0, 2, 0, &[1]),
            Err(ModelError::MessageNotHeld { .. })
        ));
        // Held only from t=1 after this delivery:
        b.send(0, 2, 2, &[1]).unwrap();
        assert!(matches!(
            b.send(0, 2, 1, &[0]),
            Err(ModelError::MessageNotHeld { .. })
        ));
        b.send(1, 2, 1, &[0]).unwrap();
    }

    #[test]
    fn rejects_receiver_conflict() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        let mut b = ScheduleBuilder::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
        b.send(0, 0, 0, &[1]).unwrap();
        assert!(matches!(
            b.send(0, 2, 2, &[1]),
            Err(ModelError::DuplicateReceiver { .. })
        ));
    }

    #[test]
    fn rejects_sender_conflict_but_allows_same_message_widening() {
        let g = Graph::from_edges(3, &[(1, 0), (1, 2)]).unwrap();
        let mut b = ScheduleBuilder::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
        b.send(0, 1, 1, &[0]).unwrap();
        // Same round, same message, different destination: allowed (it is
        // one multicast split across two calls).
        b.send(0, 1, 1, &[2]).unwrap();
        // Different message: rejected.
        assert!(matches!(
            b.send(0, 0, 1, &[0]),
            Err(ModelError::DuplicateSender { .. })
        ));
        // The widened multicast is a single transmission the simulator accepts.
        let s = b.finish();
        assert_eq!(s.stats().transmissions, 1);
        assert_eq!(s.stats().deliveries, 2);
        let mut sim =
            crate::simulator::Simulator::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
        sim.run(&s).unwrap();
    }

    #[test]
    fn rejects_non_edges_and_bad_ids() {
        let g = path3();
        let mut b = ScheduleBuilder::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
        assert!(matches!(
            b.send(0, 0, 0, &[2]),
            Err(ModelError::NotAdjacent { .. })
        ));
        assert!(matches!(
            b.send(0, 0, 5, &[1]),
            Err(ModelError::ProcessorOutOfRange { .. })
        ));
        assert!(matches!(
            b.send(0, 0, 0, &[]),
            Err(ModelError::EmptyDestination { .. })
        ));
    }

    #[test]
    fn telephone_restriction_enforced() {
        let g = Graph::from_edges(3, &[(1, 0), (1, 2)]).unwrap();
        let mut b = ScheduleBuilder::new(&g, CommModel::Telephone, &[0, 1, 2]).unwrap();
        assert!(matches!(
            b.send(0, 1, 1, &[0, 2]),
            Err(ModelError::ModelViolation { .. })
        ));
        b.send(0, 1, 1, &[0]).unwrap();
    }

    #[test]
    fn holds_at_tracks_deliveries() {
        let g = path3();
        let mut b = ScheduleBuilder::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
        assert!(b.holds_at(0, 0, 0));
        assert!(!b.holds_at(1, 0, 0));
        b.send(0, 0, 0, &[1]).unwrap();
        assert!(b.holds_at(1, 0, 1));
        assert!(!b.holds_at(1, 0, 0));
    }

    #[test]
    fn failed_insert_leaves_state_untouched() {
        let g = path3();
        let mut b = ScheduleBuilder::new(&g, CommModel::Multicast, &[0, 1, 2]).unwrap();
        let _ = b.send(0, 2, 0, &[1]);
        // 0 still free to send at t=0 and 1 free to receive at t=1.
        b.send(0, 0, 0, &[1]).unwrap();
        let s = b.finish();
        assert_eq!(s.stats().transmissions, 1);
    }
}
