//! Parametric graph families used across the experiments.
//!
//! Every generator returns a connected simple [`Graph`]; radii are known in
//! closed form for most families, which the experiment harness exploits to
//! cross-check `n + r` predictions.

use gossip_graph::{Graph, GraphBuilder};

/// The path (straight line) `P_n`: radius `⌊n/2⌋`.
///
/// The paper's §1 lower-bound instance: with `n = 2m + 1` processors every
/// schedule needs at least `n + r - 1` rounds.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one vertex");
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 0..n.saturating_sub(1) {
        b.add_edge_unchecked(i, i + 1).expect("valid");
    }
    b.build()
}

/// The cycle (ring) `C_n` of the paper's Fig 1 (`N_1`): radius `⌊n/2⌋`,
/// Hamiltonian, gossip achievable in the optimal `n - 1` rounds.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 0..n {
        b.add_edge_unchecked(i, (i + 1) % n).expect("valid");
    }
    b.build()
}

/// The star `K_{1,n-1}` with center 0: radius 1, the extreme multicast
/// showcase (the center reaches everyone in one round).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 vertices");
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for i in 1..n {
        b.add_edge_unchecked(0, i).expect("valid");
    }
    b.build()
}

/// The complete graph `K_n`: radius 1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete graph needs at least one vertex");
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge_unchecked(u, v).expect("valid");
        }
    }
    b.build()
}

/// A complete binary tree with `n` vertices in heap order (vertex `v` has
/// children `2v + 1`, `2v + 2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n > 0, "binary tree needs at least one vertex");
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n {
        b.add_edge_unchecked((v - 1) / 2, v).expect("valid");
    }
    b.build()
}

/// A complete `k`-ary tree with `n` vertices (vertex `v`'s children are
/// `k*v + 1 ..= k*v + k`).
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
pub fn kary_tree(n: usize, k: usize) -> Graph {
    assert!(n > 0 && k > 0, "k-ary tree needs n > 0 and k > 0");
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n {
        b.add_edge_unchecked((v - 1) / k, v).expect("valid");
    }
    b.build()
}

/// The `rows × cols` grid (mesh), vertex `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid needs positive dimensions");
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge_unchecked(v, v + 1).expect("valid");
            }
            if r + 1 < rows {
                b.add_edge_unchecked(v, v + cols).expect("valid");
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus (grid with wraparound links).
///
/// # Panics
///
/// Panics if either dimension is `< 3` (smaller wraps create multi-edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs dimensions >= 3");
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            b.add_edge_unchecked(v, r * cols + (c + 1) % cols)
                .expect("valid");
            b.add_edge_unchecked(v, ((r + 1) % rows) * cols + c)
                .expect("valid");
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` (`2^d` vertices): radius `d`.
///
/// # Panics
///
/// Panics if `d > 20` (guard against accidental exponential blowups).
pub fn hypercube(d: usize) -> Graph {
    assert!(d <= 20, "hypercube dimension {d} too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::with_capacity(n, n * d / 2);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                b.add_edge_unchecked(v, w).expect("valid");
            }
        }
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` vertices, each carrying `legs`
/// pendant leaves. Total `spine * (1 + legs)` vertices.
///
/// Wide shallow trees are where multicasting beats the telephone model by
/// the largest factor — a spine vertex serves all its legs in one round.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar needs a spine");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for s in 0..spine {
        if s + 1 < spine {
            b.add_edge_unchecked(s, s + 1).expect("valid");
        }
        for l in 0..legs {
            b.add_edge_unchecked(s, spine + s * legs + l)
                .expect("valid");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::{is_connected, radius};

    #[test]
    fn path_radius() {
        assert_eq!(radius(&path(7)).unwrap(), 3);
        assert_eq!(radius(&path(8)).unwrap(), 4);
        assert_eq!(radius(&path(1)).unwrap(), 0);
    }

    #[test]
    fn ring_radius() {
        assert_eq!(radius(&ring(8)).unwrap(), 4);
        assert_eq!(radius(&ring(9)).unwrap(), 4);
    }

    #[test]
    fn star_and_complete_radius_one() {
        assert_eq!(radius(&star(10)).unwrap(), 1);
        assert_eq!(radius(&complete(6)).unwrap(), 1);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn kary_tree_fanout() {
        let g = kary_tree(13, 3); // root + 3 + 9
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.m(), 12);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(is_connected(&g));
        assert_eq!(radius(&grid(3, 3)).unwrap(), 2);
    }

    #[test]
    fn torus_regular() {
        let g = torus(3, 3);
        assert_eq!(g.n(), 9);
        for v in 0..9 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert_eq!(radius(&g).unwrap(), 4);
    }

    #[test]
    fn hypercube_zero_dim() {
        let g = hypercube(0);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(4, 3);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 15);
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 4); // 1 spine link + 3 legs
        assert_eq!(g.degree(1), 5); // 2 spine links + 3 legs
    }

    #[test]
    fn small_sizes() {
        assert_eq!(path(1).n(), 1);
        assert_eq!(star(2).m(), 1);
        assert_eq!(complete(1).m(), 0);
        assert_eq!(ring(3).m(), 3);
    }
}
