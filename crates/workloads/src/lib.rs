//! # gossip-workloads
//!
//! Workload generators for the `multigossip` experiments: parametric graph
//! families ([`families`]), seeded random graphs and trees ([`random`]),
//! the paper's named example networks reconstructed from the text
//! ([`named`]), and sweep enumeration ([`sweep::Family`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod geometric;
pub mod named;
pub mod random;
pub mod small_graphs;
pub mod sweep;

pub use families::{
    binary_tree, caterpillar, complete, grid, hypercube, kary_tree, path, ring, star, torus,
};
pub use geometric::{schedule_energy, unit_disk, unit_disk_connected};
pub use named::{
    complete_bipartite, fig4_graph, fig5_tree, lollipop, n1_ring, odd_line, petersen, wheel,
};
pub use random::{random_connected, random_connected_with_edges, random_regular, random_tree};
pub use small_graphs::{connected_graphs, connected_graphs_canonical};
pub use sweep::Family;
