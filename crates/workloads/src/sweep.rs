//! Family enumeration for parameter sweeps.
//!
//! The experiment harness runs each algorithm over *every* family at a
//! range of sizes; [`Family`] gives those sweeps a single iteration point.

use crate::{families, random};
use gossip_graph::Graph;

/// A graph family with a uniform "make me an instance of about this size"
/// interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Straight line `P_n` (radius `⌊n/2⌋` — the adversarial case).
    Path,
    /// Cycle `C_n`.
    Ring,
    /// Star `K_{1,n-1}` (radius 1 — the multicast-friendly case).
    Star,
    /// Complete graph `K_n`.
    Complete,
    /// Complete binary tree.
    BinaryTree,
    /// Caterpillar with 4 legs per spine vertex.
    Caterpillar,
    /// Near-square grid.
    Grid,
    /// Near-square torus.
    Torus,
    /// Hypercube `Q_d` with `2^d <= n`.
    Hypercube,
    /// Uniform random labeled tree.
    RandomTree,
    /// Random connected graph with edge probability 0.1 beyond a spanning
    /// tree.
    RandomSparse,
    /// Wheel: hub + rim cycle (radius 1, Hamiltonian).
    Wheel,
    /// Lollipop: clique with a pendant path (dense core, long stem).
    Lollipop,
    /// Complete bipartite graph with a 1:2 part split.
    CompleteBipartite,
    /// Unit-disk sensor field (radio-range geometric graph), grown to
    /// connectivity.
    UnitDisk,
}

impl Family {
    /// All families, in a stable reporting order.
    pub fn all() -> &'static [Family] {
        &[
            Family::Path,
            Family::Ring,
            Family::Star,
            Family::Complete,
            Family::BinaryTree,
            Family::Caterpillar,
            Family::Grid,
            Family::Torus,
            Family::Hypercube,
            Family::RandomTree,
            Family::RandomSparse,
            Family::Wheel,
            Family::Lollipop,
            Family::CompleteBipartite,
            Family::UnitDisk,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Ring => "ring",
            Family::Star => "star",
            Family::Complete => "complete",
            Family::BinaryTree => "binary-tree",
            Family::Caterpillar => "caterpillar",
            Family::Grid => "grid",
            Family::Torus => "torus",
            Family::Hypercube => "hypercube",
            Family::RandomTree => "random-tree",
            Family::RandomSparse => "random-sparse",
            Family::Wheel => "wheel",
            Family::Lollipop => "lollipop",
            Family::CompleteBipartite => "complete-bipartite",
            Family::UnitDisk => "unit-disk",
        }
    }

    /// Builds an instance with as close to `target_n` vertices as the
    /// family permits (families with structural constraints round down).
    ///
    /// # Panics
    ///
    /// Panics if `target_n < 4` (below the smallest size every family
    /// supports).
    pub fn instance(&self, target_n: usize, seed: u64) -> Graph {
        assert!(target_n >= 4, "sweeps start at n = 4");
        match self {
            Family::Path => families::path(target_n),
            Family::Ring => families::ring(target_n),
            Family::Star => families::star(target_n),
            Family::Complete => families::complete(target_n),
            Family::BinaryTree => families::binary_tree(target_n),
            Family::Caterpillar => {
                let spine = (target_n / 5).max(1);
                families::caterpillar(spine, 4)
            }
            Family::Grid => {
                let side = (target_n as f64).sqrt().floor() as usize;
                families::grid(side.max(2), side.max(2))
            }
            Family::Torus => {
                let side = ((target_n as f64).sqrt().floor() as usize).max(3);
                families::torus(side, side)
            }
            Family::Hypercube => {
                let d = (usize::BITS - 1 - target_n.leading_zeros()) as usize;
                families::hypercube(d.max(2))
            }
            Family::RandomTree => random::random_tree(target_n, seed),
            Family::RandomSparse => random::random_connected(target_n, 0.1, seed),
            Family::Wheel => crate::named::wheel(target_n),
            Family::Lollipop => {
                let k = (target_n / 2).max(2);
                crate::named::lollipop(k, target_n - k)
            }
            Family::CompleteBipartite => {
                let a = (target_n / 3).max(1);
                crate::named::complete_bipartite(a, target_n - a)
            }
            Family::UnitDisk => crate::geometric::unit_disk_connected(target_n, 0.3, seed).0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::is_connected;

    #[test]
    fn all_families_produce_connected_instances() {
        for &f in Family::all() {
            for target in [4, 16, 50] {
                let g = f.instance(target, 42);
                assert!(is_connected(&g), "{} at {target}", f.name());
                assert!(g.n() >= 4, "{} at {target} gave n = {}", f.name(), g.n());
            }
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = Family::all().iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::all().len());
    }

    #[test]
    fn hypercube_rounds_down_to_power_of_two() {
        let g = Family::Hypercube.instance(50, 0);
        assert_eq!(g.n(), 32);
    }

    #[test]
    fn exact_size_families_hit_target() {
        for f in [Family::Path, Family::Ring, Family::Star, Family::Complete] {
            assert_eq!(f.instance(23, 0).n(), 23, "{}", f.name());
        }
    }
}
