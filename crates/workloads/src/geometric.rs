//! Unit-disk (geometric) random graphs: the paper's wireless motivation.
//!
//! "The ability of processors to send information concurrently to more than
//! one destination (which we call multicasting) arises naturally in
//! wireless communications where a transmission with power r^α reaches all
//! receivers at a distance r" (§2). A unit-disk graph is the standard model
//! of that situation: sensors scattered in the plane, an edge whenever two
//! sit within radio range.

use gossip_graph::{Graph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sensor field: `n` points placed uniformly in the unit square, with an
/// edge between any two within Euclidean distance `radius`. Also returns
/// the coordinates (for visualization or energy modelling).
///
/// Connectivity is not guaranteed — pair with
/// [`unit_disk_connected`] when the experiment needs it.
///
/// # Panics
///
/// Panics if `n == 0` or the radius is not positive and finite.
pub fn unit_disk(n: usize, radius: f64, seed: u64) -> (Graph, Vec<(f64, f64)>) {
    assert!(n > 0, "need at least one sensor");
    assert!(radius > 0.0 && radius.is_finite(), "bad radius {radius}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge_unchecked(i, j).expect("valid");
            }
        }
    }
    (b.build(), points)
}

/// Like [`unit_disk`], but retries with growing radius until the field is
/// connected (each retry multiplies the radius by 1.25). Returns the graph,
/// the coordinates, and the radius that finally connected it.
pub fn unit_disk_connected(
    n: usize,
    initial_radius: f64,
    seed: u64,
) -> (Graph, Vec<(f64, f64)>, f64) {
    let mut radius = initial_radius;
    loop {
        let (g, pts) = unit_disk(n, radius, seed);
        if gossip_graph::is_connected(&g) {
            return (g, pts, radius);
        }
        radius *= 1.25;
        assert!(
            radius < 4.0,
            "radius diverged; unit square should connect well before 4.0"
        );
    }
}

/// Total transmission energy of a schedule on a sensor field under the §2
/// power model: each transmission costs `reach^α` where `reach` is the
/// distance to its farthest destination.
///
/// This is what multicasting buys in a radio network: one emission at the
/// necessary power covers every listener, so fewer rounds means fewer
/// emissions.
pub fn schedule_energy(
    schedule: &gossip_model::Schedule,
    points: &[(f64, f64)],
    alpha: f64,
) -> f64 {
    let mut total = 0.0;
    for (_, tx) in schedule.iter() {
        let (sx, sy) = points[tx.from];
        let mut reach2: f64 = 0.0;
        for &d in &tx.to {
            let (dx, dy) = points[d];
            reach2 = reach2.max((sx - dx).powi(2) + (sy - dy).powi(2));
        }
        total += reach2.sqrt().powf(alpha);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::is_connected;

    #[test]
    fn deterministic() {
        let (a, pa) = unit_disk(30, 0.3, 7);
        let (b, pb) = unit_disk(30, 0.3, 7);
        assert_eq!(a, b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn radius_monotone() {
        let (small, _) = unit_disk(40, 0.15, 3);
        let (big, _) = unit_disk(40, 0.5, 3);
        assert!(small.m() <= big.m());
    }

    #[test]
    fn huge_radius_is_complete() {
        let (g, _) = unit_disk(12, 2.0, 1);
        assert_eq!(g.m(), 12 * 11 / 2);
    }

    #[test]
    fn connected_variant_connects() {
        for seed in 0..5 {
            let (g, pts, r) = unit_disk_connected(25, 0.1, seed);
            assert!(is_connected(&g), "seed {seed}");
            assert_eq!(pts.len(), 25);
            assert!(r >= 0.1);
        }
    }

    #[test]
    fn energy_counts_farthest_destination() {
        use gossip_model::{Schedule, Transmission};
        let points = vec![(0.0, 0.0), (1.0, 0.0), (0.0, 2.0)];
        let mut s = Schedule::new(3);
        s.add_transmission(0, Transmission::new(0, 0, vec![1, 2]));
        // farthest destination is at distance 2; alpha = 2 -> energy 4.
        assert!((schedule_energy(&s, &points, 2.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_empty_schedule_zero() {
        let s = gossip_model::Schedule::new(2);
        assert_eq!(schedule_energy(&s, &[(0.0, 0.0), (1.0, 1.0)], 2.0), 0.0);
    }
}
