//! The paper's named example networks (Figs 1–5), reconstructed.
//!
//! The source text of the paper is available without its figure images, so
//! each instance here documents exactly what is known from the text and how
//! the reconstruction was fixed (see DESIGN.md §3).

use gossip_graph::{Graph, GraphBuilder, RootedTree, NO_PARENT};

/// Fig 1 (`N_1`): a network with a Hamiltonian circuit, drawn as a ring.
/// Parameterized because the figure's size does not survive in the text;
/// every property used in §1 is size-independent.
pub fn n1_ring(n: usize) -> Graph {
    crate::families::ring(n)
}

/// Fig 2 (`N_2`): the Petersen graph. Vertices 0–4 form the outer 5-cycle,
/// 5–9 the inner pentagram (`i ~ i + 2 mod 5`), with spokes `i — i + 5`.
///
/// Non-Hamiltonian, yet gossiping completes in `n - 1 = 9` rounds even
/// under the telephone model (the paper's point: a Hamiltonian circuit is
/// sufficient but not necessary for optimal gossiping).
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::with_capacity(10, 15);
    for i in 0..5 {
        b.add_edge_unchecked(i, (i + 1) % 5).expect("valid");
        b.add_edge_unchecked(5 + i, 5 + (i + 2) % 5).expect("valid");
        b.add_edge_unchecked(i, i + 5).expect("valid");
    }
    b.build()
}

/// The reconstructed Fig 5 tree: the 16-vertex tree network on which the
/// paper's Tables 1–4 are computed.
///
/// The structure is pinned by the text and tables: vertex ids equal DFS
/// labels; the root's child subtrees hold labels `[1,3]`, `[4,10]`,
/// `[11,15]`; vertex 1 (level 1) has two leaf children 2 and 3 (Table 2 shows it relaying messages 2 and 3 between them at times 1–2); vertex 4 (level 1) has
/// children with ranges `[5,7]` and `[8,10]`; vertex 8 sits at level 2.
/// The shape of the `[11,15]` subtree is not determined by the tables; the
/// reconstruction mirrors the `[4,10]` subtree so that the tree has height
/// 3 and the schedule length is `n + r = 19`.
pub fn fig5_tree() -> RootedTree {
    let mut parent = vec![0u32; 16];
    parent[0] = NO_PARENT;
    parent[1] = 0;
    parent[2] = 1;
    parent[3] = 1;
    parent[4] = 0;
    parent[5] = 4;
    parent[6] = 5;
    parent[7] = 5;
    parent[8] = 4;
    parent[9] = 8;
    parent[10] = 8;
    parent[11] = 0;
    parent[12] = 11;
    parent[13] = 12;
    parent[14] = 12;
    parent[15] = 11;
    RootedTree::from_parents(0, &parent).expect("fig5 structure is a tree")
}

/// The reconstructed Fig 4 network: a graph whose minimum-depth spanning
/// tree (rooted at its center, children ordered by vertex id) is exactly
/// [`fig5_tree`].
///
/// Built as the Fig 5 tree's edges plus chords chosen not to reduce the
/// radius below 3 and not to change the BFS tree from vertex 0.
pub fn fig4_graph() -> Graph {
    let tree = fig5_tree();
    let mut b = GraphBuilder::with_capacity(16, 20);
    for v in 0..16 {
        if let Some(p) = tree.parent(v) {
            b.add_edge_unchecked(p, v).expect("valid");
        }
    }
    // Chords between same-level vertices in different subtrees; BFS from 0
    // discovers every vertex through its tree parent first (parents sit one
    // level higher than any chord endpoint), so the BFS tree is unchanged.
    for (u, v) in [(3, 5), (7, 9), (10, 13), (14, 15), (2, 5)] {
        b.add_edge_unchecked(u, v).expect("valid");
    }
    b.build()
}

/// The paper's §1 lower-bound instance: the straight-line network with
/// `n = 2m + 1` processors, where every schedule needs `>= n + r - 1`
/// rounds (`r = m`).
pub fn odd_line(m: usize) -> Graph {
    crate::families::path(2 * m + 1)
}

/// The complete bipartite graph `K_{a,b}`: part A = vertices `0..a`,
/// part B = `a..a+b`. `K_{2,3}` is the experiments' substitute for the
/// paper's network N3 (non-Hamiltonian, multicast-optimal at `n - 1`).
///
/// # Panics
///
/// Panics if either part is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0, "both parts must be nonempty");
    let mut builder = GraphBuilder::with_capacity(a + b, a * b);
    for u in 0..a {
        for v in a..a + b {
            builder.add_edge_unchecked(u, v).expect("valid");
        }
    }
    builder.build()
}

/// The wheel `W_n`: a hub (vertex 0) joined to every vertex of an
/// `(n-1)`-cycle. Radius 1, Hamiltonian — a useful contrast to the star,
/// which shares the hub but cannot gossip in `n - 1`.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 vertices");
    let rim = n - 1;
    let mut builder = GraphBuilder::with_capacity(n, 2 * rim);
    for i in 0..rim {
        builder
            .add_edge_unchecked(1 + i, 1 + (i + 1) % rim)
            .expect("valid");
        builder.add_edge_unchecked(0, 1 + i).expect("valid");
    }
    builder.build()
}

/// The lollipop: a clique of `k` vertices with a path of `p` vertices
/// hanging off vertex 0. High radius with a dense core — exercises the
/// minimum-depth tree's root placement along the stem.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn lollipop(k: usize, p: usize) -> Graph {
    assert!(k >= 2, "lollipop clique needs >= 2 vertices");
    let n = k + p;
    let mut builder = GraphBuilder::with_capacity(n, k * (k - 1) / 2 + p);
    for u in 0..k {
        for v in (u + 1)..k {
            builder.add_edge_unchecked(u, v).expect("valid");
        }
    }
    for i in 0..p {
        let prev = if i == 0 { 0 } else { k + i - 1 };
        builder.add_edge_unchecked(prev, k + i).expect("valid");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::{bfs_tree, is_hamiltonian, min_depth_spanning_tree, radius, ChildOrder};

    #[test]
    fn petersen_basics() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        for v in 0..10 {
            assert_eq!(g.degree(v), 3);
        }
        assert_eq!(radius(&g).unwrap(), 2);
        assert!(!is_hamiltonian(&g));
    }

    #[test]
    fn fig5_tree_matches_paper_labels() {
        let t = fig5_tree();
        assert_eq!(t.n(), 16);
        assert_eq!(t.height(), 3);
        for v in 0..16 {
            assert_eq!(t.label(v), v as u32);
        }
        assert_eq!(t.subtree_range(4), (4, 10));
        assert_eq!(t.subtree_range(8), (8, 10));
        assert_eq!(t.level(8), 2);
    }

    #[test]
    fn fig4_min_depth_tree_is_fig5() {
        let g = fig4_graph();
        assert_eq!(radius(&g).unwrap(), 3);
        let t = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        assert_eq!(t, fig5_tree());
    }

    #[test]
    fn fig4_bfs_tree_from_root_is_fig5() {
        let g = fig4_graph();
        assert_eq!(bfs_tree(&g, 0, ChildOrder::ById).unwrap(), fig5_tree());
    }

    #[test]
    fn odd_line_radius() {
        let g = odd_line(4);
        assert_eq!(g.n(), 9);
        assert_eq!(radius(&g).unwrap(), 4);
    }

    #[test]
    fn n1_is_ring() {
        let g = n1_ring(8);
        assert!(is_hamiltonian(&g));
    }

    #[test]
    fn k23_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 6);
        assert!(!is_hamiltonian(&g));
        assert_eq!(radius(&g).unwrap(), 2);
        // Balanced bipartite graphs ARE Hamiltonian.
        assert!(is_hamiltonian(&complete_bipartite(3, 3)));
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(7);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(0), 6);
        assert_eq!(radius(&g).unwrap(), 1);
        assert!(is_hamiltonian(&g));
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 4 * 3 / 2 + 3);
        assert_eq!(radius(&g).unwrap(), 2);
        assert_eq!(g.degree(6), 1); // stem tip
    }
}
