//! Random graph and random tree generators (seeded, reproducible).

use gossip_graph::{Graph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A uniformly random labeled tree on `n` vertices via a random Prüfer
/// sequence.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "random tree needs at least one vertex");
    let mut rng = SmallRng::seed_from_u64(seed);
    if n == 1 {
        return Graph::from_edges(1, &[]).expect("valid");
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("valid");
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    // Standard Prüfer decode with a "pointer + leaf" scan: O(n log n) worst
    // case here via re-scanning, fine at experiment scales.
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &v in &prufer {
        b.add_edge_unchecked(leaf, v).expect("valid");
        degree[v] -= 1;
        if degree[v] == 1 && v < ptr {
            leaf = v;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    // The final edge joins the last leaf with vertex n - 1.
    b.add_edge_unchecked(leaf, n - 1).expect("valid");
    b.build()
}

/// A connected Erdős–Rényi-style graph: a random spanning tree (guaranteeing
/// connectivity) plus each remaining pair independently with probability
/// `p`.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn random_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "random graph needs at least one vertex");
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    let tree = random_tree(n, seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for (u, v) in tree.edges() {
        b.add_edge_unchecked(u, v).expect("valid");
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !tree.has_edge(u, v) && rng.gen_bool(p) {
                b.add_edge_unchecked(u, v).expect("valid");
            }
        }
    }
    b.build()
}

/// A random connected graph with exactly `m` edges (`n - 1 <= m <=
/// n(n-1)/2`): random spanning tree plus a uniform sample of extra pairs.
///
/// # Panics
///
/// Panics on infeasible `(n, m)`.
pub fn random_connected_with_edges(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > 0);
    let max_m = n * n.saturating_sub(1) / 2;
    assert!(
        (n.saturating_sub(1)..=max_m).contains(&m),
        "m = {m} infeasible for n = {n}"
    );
    let tree = random_tree(n, seed ^ 0x517c_c1b7_2722_0a95);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut extra: Vec<(usize, usize)> = Vec::with_capacity(max_m - (n - 1));
    for u in 0..n {
        for v in (u + 1)..n {
            if !tree.has_edge(u, v) {
                extra.push((u, v));
            }
        }
    }
    extra.shuffle(&mut rng);
    let mut b = GraphBuilder::with_capacity(n, m);
    for (u, v) in tree.edges() {
        b.add_edge_unchecked(u, v).expect("valid");
    }
    for &(u, v) in extra.iter().take(m - (n - 1)) {
        b.add_edge_unchecked(u, v).expect("valid");
    }
    b.build()
}

/// A random `d`-regular connected graph via the pairing (configuration)
/// model with rejection: sample perfect matchings of `n*d` half-edges
/// until the multigraph is simple and connected.
///
/// # Panics
///
/// Panics if `n * d` is odd, `d >= n`, or no valid graph is found within
/// the retry budget (vanishingly unlikely for `d >= 3` and moderate `n`).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    assert!(d >= 1, "degree must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    'attempt: for _ in 0..10_000 {
        let mut stubs: Vec<usize> = (0..n * d).map(|i| i / d).collect();
        stubs.shuffle(&mut rng);
        let mut b = GraphBuilder::with_capacity(n, n * d / 2);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                continue 'attempt; // self-loop or multi-edge: resample
            }
            b.add_edge_unchecked(u, v).expect("valid");
        }
        let g = b.build();
        if gossip_graph::is_connected(&g) {
            return g;
        }
    }
    panic!("pairing model failed to produce a simple connected {d}-regular graph");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::is_connected;

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..20 {
            for n in [1, 2, 3, 5, 17, 64] {
                let g = random_tree(n, seed);
                assert_eq!(g.n(), n);
                assert_eq!(g.m(), n - 1, "n = {n}, seed = {seed}");
                assert!(is_connected(&g), "n = {n}, seed = {seed}");
            }
        }
    }

    #[test]
    fn random_tree_deterministic() {
        assert_eq!(random_tree(20, 7), random_tree(20, 7));
    }

    #[test]
    fn random_tree_varies_with_seed() {
        // Over 30 vertices two different seeds virtually never tie.
        assert_ne!(random_tree(30, 1), random_tree(30, 2));
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..10 {
            for p in [0.0, 0.1, 0.5, 1.0] {
                let g = random_connected(25, p, seed);
                assert!(is_connected(&g));
                assert!(g.m() >= 24);
            }
        }
    }

    #[test]
    fn random_connected_p1_is_complete() {
        let g = random_connected(10, 1.0, 3);
        assert_eq!(g.m(), 45);
    }

    #[test]
    fn random_with_edges_exact_count() {
        for m in [9, 15, 30, 45] {
            let g = random_connected_with_edges(10, m, 11);
            assert_eq!(g.m(), m);
            assert!(is_connected(&g));
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn random_with_edges_rejects_too_few() {
        random_connected_with_edges(10, 5, 0);
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        for seed in 0..5 {
            for (n, d) in [(10, 3), (12, 4), (8, 5)] {
                let g = random_regular(n, d, seed);
                assert_eq!(g.n(), n);
                for v in 0..n {
                    assert_eq!(g.degree(v), d, "n={n} d={d} seed={seed}");
                }
                assert!(is_connected(&g));
            }
        }
    }

    #[test]
    fn random_regular_deterministic() {
        assert_eq!(random_regular(12, 3, 9), random_regular(12, 3, 9));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_rejects_odd_product() {
        random_regular(5, 3, 0);
    }
}
