//! Golden test for the planner cost profiler on the paper's Figure 4
//! instance. Wall-clock magnitudes vary run to run, so the golden facts
//! are the *structure*: the phase taxonomy is stable (plan → tree/generate
//! with their sub-phases, then flatten and validate), every node's self
//! time fits inside its total, the work counters agree with the schedule
//! the pipeline actually produced, and the collapsed-stack export parses
//! as flamegraph input.

use gossip_core::GossipPlanner;
use gossip_model::{CommModel, FlatSchedule};
use gossip_telemetry::profile::Profiler;
use gossip_telemetry::Value;
use gossip_workloads::fig4_graph;

/// Depth-first walk of the phase forest collecting `(path, node)` pairs.
fn walk<'a>(prefix: &str, phases: &'a Value, out: &mut Vec<(String, &'a Value)>) {
    let Some(list) = phases.as_array() else {
        return;
    };
    for p in list {
        let name = p["name"].as_str().expect("phase name");
        let path = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}/{name}")
        };
        out.push((path.clone(), p));
        walk(&path, &p["children"], out);
    }
}

#[test]
fn fig4_profile_phase_tree_is_stable_and_consistent() {
    let g = fig4_graph();
    let profiler = Profiler::begin();
    let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
    let flat = FlatSchedule::from_schedule(&plan.schedule);
    flat.validate(&g, CommModel::Multicast, plan.origin_of_message.len())
        .unwrap();
    let profile = profiler.finish();
    assert!(!profile.is_empty(), "profiler recorded nothing");

    let phases = profile.to_value();
    let mut nodes = Vec::new();
    walk("", &phases, &mut nodes);
    let paths: Vec<&str> = nodes.iter().map(|(p, _)| p.as_str()).collect();

    // Stable taxonomy: the construction pipeline always produces these
    // phase paths on a sequential single-threaded run.
    for expected in [
        "plan",
        "plan/tree",
        "plan/tree/bfs_sweep",
        "plan/tree/build_tree",
        "plan/generate",
        "plan/generate/label",
        "plan/generate/overlay",
        "flatten",
        "validate",
    ] {
        assert!(paths.contains(&expected), "missing phase path {expected}");
    }

    // Structural invariants on every node: at least one call, self time
    // within total, children's totals within the parent's total.
    for (path, node) in &nodes {
        let calls = node["calls"].as_u64().unwrap();
        let total = node["total_ms"].as_f64().unwrap();
        let selfms = node["self_ms"].as_f64().unwrap();
        assert!(calls >= 1, "{path}: zero calls");
        assert!(selfms >= 0.0 && total >= 0.0, "{path}: negative time");
        assert!(
            selfms <= total + 1e-9,
            "{path}: self {selfms} > total {total}"
        );
        if let Some(children) = node["children"].as_array() {
            let child_sum: f64 = children
                .iter()
                .map(|c| c["total_ms"].as_f64().unwrap())
                .sum();
            assert!(
                child_sum <= total + 1e-6,
                "{path}: children sum {child_sum} exceeds total {total}"
            );
        }
    }

    // Work counters agree with the schedule the run produced.
    let stats = plan.schedule.stats();
    assert_eq!(
        profile.named_counter("transmissions") as usize,
        stats.transmissions,
        "transmissions counter must match the generated schedule"
    );
    assert!(
        profile.named_counter("bfs_sweeps") >= 1,
        "at least one BFS sweep must be counted"
    );
    assert!(
        profile.named_counter("frontier_popped") as usize >= g.n(),
        "each sweep pops at least n vertices"
    );
    assert!(
        profile.named_counter("csr_bytes") > 0,
        "flatten must report its CSR footprint"
    );

    // The profiler's own attribution covers the phases it recorded.
    let root_sum: f64 = phases
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r["total_ms"].as_f64().unwrap())
        .sum();
    assert!((profile.attributed_ms() - root_sum).abs() < 1e-6);

    // Collapsed stacks parse as flamegraph input: `a;b;c <integer>` with
    // one line per phase path, matching the forest exactly.
    let flame = profile.collapsed_stacks();
    let mut flame_paths = Vec::new();
    for line in flame.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`path count` shape");
        assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
        assert!(!path.is_empty() && !path.contains(' '), "bad path {path:?}");
        flame_paths.push(path.replace(';', "/"));
    }
    let mut expected_paths: Vec<String> = nodes.iter().map(|(p, _)| p.clone()).collect();
    flame_paths.sort();
    expected_paths.sort();
    assert_eq!(flame_paths, expected_paths);
}

#[test]
fn uninstalled_profiler_guards_are_inert() {
    // Without a Profiler::begin in scope, phase guards and counters are
    // no-ops: planning still works and records nothing.
    let g = fig4_graph();
    let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
    assert!(plan.makespan() >= g.n());
    assert!(!gossip_telemetry::profile::active());
}
