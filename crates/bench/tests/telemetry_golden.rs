//! Golden test for the telemetry event stream of a full plan + simulate on
//! the C_8 ring. Wall-clock fields (`t_ms`, `elapsed_ns`) are masked; the
//! event sequence, span paths, per-round probe payloads, and the final
//! snapshot are all deterministic and checked exactly.

use gossip_core::GossipPlanner;
use gossip_graph::Graph;
use gossip_model::{CommModel, RoundProbe, Simulator};
use gossip_telemetry::{MetricsRecorder, NoopRecorder, Recorder, SharedBuffer, Value};
use gossip_workloads::ring;

/// One event line with the timing fields masked out, rendered as
/// `name key=value ...` for golden comparison.
fn masked(line: &Value) -> String {
    let mut out = line["event"].as_str().expect("event name").to_string();
    for (k, v) in line.as_object().expect("event object") {
        if k == "event" || k == "t_ms" || k == "elapsed_ns" || k == "done_ns" {
            continue;
        }
        let rendered = v
            .as_str()
            .map(str::to_string)
            .or_else(|| v.as_u64().map(|u| u.to_string()))
            .or_else(|| v.as_f64().map(|f| format!("{f:.4}")))
            .unwrap_or_else(|| format!("{v:?}"));
        out.push_str(&format!(" {k}={rendered}"));
    }
    out
}

/// Reference probes from an independent (unrecorded) probed run.
fn reference_probes(g: &Graph) -> Vec<RoundProbe> {
    let plan = GossipPlanner::new(g).unwrap().plan().unwrap();
    let mut sim =
        Simulator::with_origins(g, CommModel::Multicast, &plan.origin_of_message).unwrap();
    sim.run_probed(&plan.schedule).unwrap().1
}

#[test]
fn c8_ring_event_stream_golden() {
    let g = ring(8);
    let events = SharedBuffer::new();
    let recorder = MetricsRecorder::with_sink(Box::new(events.clone()));

    let plan = GossipPlanner::new(&g)
        .unwrap()
        .recorder(&recorder)
        .plan()
        .unwrap();
    assert_eq!(plan.makespan(), 8 + 4); // n + r on the C_8 ring

    let mut sim =
        Simulator::with_origins(&g, CommModel::Multicast, &plan.origin_of_message).unwrap();
    let outcome = sim.run_recorded(&plan.schedule, &recorder).unwrap();
    assert!(outcome.complete);

    // Golden event sequence. The round payloads come from an independent
    // unrecorded probed run, so the recorded stream must agree with it
    // field-for-field.
    let probes = reference_probes(&g);
    assert_eq!(probes.len(), 12);
    let got: Vec<String> = events.lines().iter().map(masked).collect();
    let expected: Vec<String> = [
        // Planning: n BFS sweeps (no early exit on a ring: the tree height 4
        // never beats the degree-based radius floor), then the nested
        // generation spans closing inner-to-outer.
        "spanning_tree mode=sequential sweeps=8 radius=4 root=0",
        "span path=plan/spanning_tree",
        "span path=plan/concurrent_updown/labeling",
        "span path=plan/concurrent_updown/overlay",
        "span path=plan/concurrent_updown",
        "span path=plan",
    ]
    .into_iter()
    .map(str::to_string)
    .chain(probes.iter().map(|p| {
        // `known_pairs` (added for the flight recorder's knowledge curve) is
        // the coverage scaled back to absolute pairs: 8 × 8 = 64 on C_8.
        format!(
            "round round={} sent={} deliveries={} max_fanout={} idle_receivers={} \
             coverage={:.4} known_pairs={}",
            p.round,
            p.sent,
            p.deliveries,
            p.max_fanout,
            p.idle_receivers,
            p.coverage,
            (p.coverage * 64.0).round() as u64
        )
    }))
    .chain(std::iter::once("span path=simulate".to_string()))
    .collect();
    assert_eq!(got, expected);

    // The probes must sum to exactly n(n-1) fresh deliveries (the schedule
    // is redundancy-free) and end at full coverage.
    let lines = events.lines();
    let rounds: Vec<&Value> = lines
        .iter()
        .filter(|e| e["event"].as_str() == Some("round"))
        .collect();
    assert_eq!(rounds.len(), 12);
    let total: u64 = rounds
        .iter()
        .map(|e| e["deliveries"].as_u64().unwrap())
        .sum();
    assert_eq!(total, 8 * 7);
    let coverages: Vec<f64> = rounds
        .iter()
        .map(|e| e["coverage"].as_f64().unwrap())
        .collect();
    assert!(
        coverages.windows(2).all(|w| w[1] >= w[0]),
        "coverage must be monotone"
    );
    assert!((coverages.last().unwrap() - 1.0).abs() < 1e-9);

    // Snapshot: the aggregate view must agree with the event stream.
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot["counters"]["sim/deliveries"].as_u64(), Some(56));
    assert_eq!(snapshot["counters"]["spanning/sweeps"].as_u64(), Some(8));
    assert_eq!(snapshot["gauges"]["plan/radius"].as_f64(), Some(4.0));
    assert_eq!(snapshot["gauges"]["plan/makespan"].as_f64(), Some(12.0));
    assert_eq!(
        snapshot["gauges"]["sim/completion_time"].as_f64(),
        Some(12.0)
    );
    assert_eq!(snapshot["gauges"]["sim/coverage"].as_f64(), Some(1.0));
    // Span timings present exactly once for every planning stage.
    for path in [
        "plan",
        "plan/spanning_tree",
        "plan/concurrent_updown",
        "simulate",
    ] {
        assert_eq!(snapshot["spans"][path]["count"].as_u64(), Some(1), "{path}");
    }
}

#[test]
fn noop_recorder_is_silent_end_to_end() {
    let g = ring(8);
    // The whole pipeline runs against NoopRecorder; equality with the
    // default plan proves the instrumented path is the same computation.
    let recorded = GossipPlanner::new(&g)
        .unwrap()
        .recorder(&NoopRecorder)
        .plan()
        .unwrap();
    let plain = GossipPlanner::new(&g).unwrap().plan().unwrap();
    assert_eq!(recorded.schedule, plain.schedule);
    assert!(!NoopRecorder.enabled());

    let mut sim =
        Simulator::with_origins(&g, CommModel::Multicast, &plain.origin_of_message).unwrap();
    let a = sim.run_recorded(&plain.schedule, &NoopRecorder).unwrap();
    let mut sim2 =
        Simulator::with_origins(&g, CommModel::Multicast, &plain.origin_of_message).unwrap();
    let b = sim2.run(&plain.schedule).unwrap();
    assert_eq!(a, b);
}
