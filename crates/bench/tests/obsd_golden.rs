//! Golden test of the Prometheus `/metrics` exposition on a deterministic
//! C_8 run, plus an `/events` NDJSON schema test over the live HTTP
//! server.
//!
//! The exposition is rendered from a [`LiveRegistry`] fed by the full
//! pipeline — plan, oracle simulation, resilient (fault-free) execution —
//! so every metric family the live layer publishes appears: counters,
//! knowledge-curve gauges, histogram buckets, span completion counts, and
//! the event counter. Span *durations* are deliberately excluded from
//! `/metrics`, and the tallies of wall-clock `*_ns` histograms are masked
//! here (their layout and counts are still pinned), so the rest of the
//! file is compared byte-for-byte against `tests/golden/metrics_c8.prom`.
//! Regenerate with `BLESS=1 cargo test -p gossip-bench --test obsd_golden`.

use gossip_core::{GossipPlanner, ResilientExecutor};
use gossip_model::{CommModel, FaultPlan, Simulator};
use gossip_obsd::{prometheus, ObsdServer};
use gossip_telemetry::{LiveRegistry, Value};
use gossip_workloads::ring;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Runs the deterministic C_8 pipeline against one registry.
fn run_c8(registry: &LiveRegistry) {
    let g = ring(8);
    let plan = GossipPlanner::new(&g)
        .unwrap()
        .recorder(registry)
        .plan()
        .unwrap();
    let mut sim =
        Simulator::with_origins(&g, CommModel::Multicast, &plan.origin_of_message).unwrap();
    let outcome = sim.run_recorded(&plan.schedule, registry).unwrap();
    assert!(outcome.complete);
    let faults = FaultPlan::none();
    let report = ResilientExecutor::new(&g, &plan.schedule, &plan.origin_of_message, &faults)
        .recorder(registry)
        .run()
        .unwrap();
    assert!(report.recovered);
}

#[test]
fn c8_metrics_exposition_golden() {
    let registry = LiveRegistry::new();
    run_c8(&registry);
    let got = prometheus::render(&registry);

    // Spot-check the contract the ISSUE names before the byte-level diff,
    // so a drift failure still says *what* broke.
    for needle in [
        "# TYPE gossip_known_pairs gauge\ngossip_known_pairs 64\n",
        "# TYPE gossip_round_current gauge\ngossip_round_current 12\n",
        "gossip_recovery_epochs 1\n",
        "gossip_recovery_retransmissions 0\n",
        "gossip_recovery_residual_pairs 0\n",
        "gossip_exec_deliveries 56\n",
        "gossip_sim_fanout_max_bucket{le=\"+Inf\"} 12\n",
        "gossip_span_completed_total{path=\"recover/epoch\"} 1\n",
    ] {
        assert!(got.contains(needle), "missing {needle:?} in:\n{got}");
    }

    let got = mask_wall_clock(&got);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_c8.prom");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &got).unwrap();
    }
    let want =
        std::fs::read_to_string(path).expect("golden file missing — regenerate with BLESS=1");
    assert_eq!(
        got, want,
        "exposition drifted from the golden; BLESS=1 to regenerate"
    );
}

/// Masks the sample values of wall-clock histograms (`*_ns_bucket` /
/// `*_ns_sum` lines): which bucket a nanosecond timing lands in varies run
/// to run. The family names, bucket layout (`le` labels), and `_count`
/// lines stay exact — only the nondeterministic tallies are masked.
fn mask_wall_clock(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let family_is_wall_clock = line.starts_with("gossip_")
            && (line.contains("_ns_bucket{") || line.contains("_ns_sum "));
        if family_is_wall_clock {
            let prefix = line.rsplit_once(' ').expect("sample line").0;
            out.push_str(prefix);
            out.push_str(" MASKED\n");
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn events_endpoint_streams_parseable_monotone_ndjson() {
    let registry = Arc::new(LiveRegistry::new());
    let server = ObsdServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();

    // Subscribe before the run so the stream sees every event.
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    write!(conn, "GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));

    run_c8(&registry);
    server.health().set_done();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("headers/body split");

    let mut seqs = Vec::new();
    let mut round_ends = Vec::new();
    let mut names = std::collections::BTreeSet::new();
    for line in body.lines() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable NDJSON line {line:?}: {e:?}"));
        let name = v["event"].as_str().expect("event name").to_string();
        seqs.push(v["seq"].as_u64().expect("seq"));
        assert!(v["t_ms"].as_f64().is_some(), "t_ms missing in {line}");
        if name == "round_end" {
            round_ends.push(v["round"].as_u64().expect("round"));
        }
        names.insert(name);
    }
    assert_eq!(seqs.len(), registry.events_emitted() as usize);
    assert!(
        seqs.windows(2).all(|w| w[1] > w[0]),
        "event seq must be strictly increasing: {seqs:?}"
    );
    // The fault-free resilient run executes the 12-round base schedule
    // once; its round stream must be strictly monotone.
    assert_eq!(round_ends.len(), 12);
    assert!(round_ends.windows(2).all(|w| w[1] > w[0]));
    for required in ["round_start", "round_end", "epoch_start", "epoch_end"] {
        assert!(names.contains(required), "no {required} event in {names:?}");
    }
    server.stop();
}
