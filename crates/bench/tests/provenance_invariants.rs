//! Provenance invariants for the paper's algorithm (Theorem 1).
//!
//! Replaying a ConcurrentUpDown schedule through the provenance tracer must
//! always observe, on every instance:
//!
//! - a first-delivery DAG with exactly `n * (n - 1)` edges — every vertex
//!   learns every other message exactly once for the first time;
//! - every per-message critical path no longer than `n + r` rounds, the
//!   guarantee of Theorem 1 (checked per message, not just the makespan).
//!
//! Instances: the paper's named networks (N1 ring of Fig 1, Petersen N2 of
//! Fig 2, the 16-vertex Fig 4 graph and Fig 5 tree) and random `G(n, p)`
//! connected graphs across several densities and seeds.

use gossip_core::{Algorithm, GossipPlanner};
use gossip_graph::Graph;
use gossip_model::{trace_gossip, CommModel};
use gossip_workloads::{fig4_graph, fig5_tree, n1_ring, petersen, random_connected};

/// Plans with ConcurrentUpDown, replays through the tracer, and checks the
/// DAG edge count and per-message critical-path bound.
fn check_invariants(label: &str, g: &Graph) {
    let plan = GossipPlanner::new(g)
        .expect("connected instance")
        .algorithm(Algorithm::ConcurrentUpDown)
        .plan()
        .expect("plan succeeds");
    let (outcome, tr) = trace_gossip(
        g,
        &plan.schedule,
        &plan.origin_of_message,
        CommModel::Multicast,
    )
    .expect("schedule replays cleanly");
    assert!(outcome.complete, "{label}: gossip incomplete");

    let n = g.n();
    assert_eq!(
        tr.edge_count(),
        n * (n - 1),
        "{label}: first-delivery DAG edge count"
    );

    let bound = plan.guarantee();
    for msg in 0..tr.n_msgs() {
        let path = tr.critical_path(msg);
        let rounds = tr.message_latency(msg);
        assert!(
            rounds <= bound,
            "{label}: message {msg} critical path took {rounds} rounds > n + r = {bound}"
        );
        // The rendered path must start at the origin and end at the round
        // the last vertex learned the message.
        assert_eq!(path.first().map(|s| s.vertex), Some(tr.origins()[msg]));
        assert_eq!(path.last().map(|s| s.round), Some(rounds));
    }
}

#[test]
fn n1_ring_instances() {
    for n in [3, 5, 9, 12] {
        check_invariants(&format!("n1_ring({n})"), &n1_ring(n));
    }
}

#[test]
fn petersen_n2() {
    check_invariants("petersen", &petersen());
}

#[test]
fn fig4_and_fig5() {
    check_invariants("fig4", &fig4_graph());
    check_invariants("fig5", &fig5_tree().to_graph());
}

#[test]
fn random_gnp_instances() {
    for (n, p) in [(8, 0.3), (12, 0.25), (16, 0.2), (20, 0.4)] {
        for seed in [1, 7, 42] {
            let g = random_connected(n, p, seed);
            check_invariants(&format!("gnp(n={n}, p={p}, seed={seed})"), &g);
        }
    }
}
