//! E1-E4: the paper's Tables 1-4.

fn main() {
    println!("{}", gossip_bench::experiments::exp_tables());
}
