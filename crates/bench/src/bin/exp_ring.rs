//! E5: Fig 1 ring gossip at the n - 1 optimum.

fn main() {
    println!("{}", gossip_bench::experiments::exp_ring());
}
