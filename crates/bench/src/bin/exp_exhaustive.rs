//! E19: exhaustive optimality study over all tiny connected graphs.

fn main() {
    println!("{}", gossip_bench::experiments::exp_exhaustive());
}
