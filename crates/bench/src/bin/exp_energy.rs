//! E20: sensor-field energy under the paper's wireless power model.

fn main() {
    println!("{}", gossip_bench::experiments::exp_energy());
}
