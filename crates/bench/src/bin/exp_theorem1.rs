//! E9: Theorem 1 sweep, plus `BENCH_theorem1.json`.

fn main() {
    let (report, payload) = gossip_bench::experiments::exp_theorem1_full();
    println!("{report}");
    if let Some(path) = gossip_bench::report::write_bench_json("theorem1", &payload) {
        println!("wrote {path}");
    }
}
