//! E9: Theorem 1 sweep.

fn main() {
    println!("{}", gossip_bench::experiments::exp_theorem1());
}
