//! E21: pipelined repeated gossiping throughput.

fn main() {
    println!("{}", gossip_bench::experiments::exp_pipeline());
}
