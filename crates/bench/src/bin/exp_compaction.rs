//! E22: schedule compaction ablation.

fn main() {
    println!("{}", gossip_bench::experiments::exp_compaction());
}
