//! E24 (textual): self-healing recovery under seeded fault plans, plus
//! `BENCH_resilience.json` with the per-scenario recovery accounting.

fn main() {
    let (report, payload) = gossip_bench::experiments::exp_resilience_full();
    println!("{report}");
    if let Some(path) = gossip_bench::report::write_bench_json("resilience", &payload) {
        println!("wrote {path}");
    }
}
