//! E7: Fig 3 substitute (K_{2,3}).

fn main() {
    println!("{}", gossip_bench::experiments::exp_n3());
}
