//! Runs every experiment in DESIGN.md order and prints the full report
//! (the source of EXPERIMENTS.md's measured columns).

fn main() {
    for (id, title, report) in gossip_bench::experiments::all_reports() {
        println!("================================================================");
        println!("{id}: {title}");
        println!("================================================================");
        println!("{report}");
    }
}
