//! E12: line-network bounds.

fn main() {
    println!("{}", gossip_bench::experiments::exp_line());
}
