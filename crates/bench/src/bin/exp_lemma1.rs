//! E10: Lemma 1 (Simple).

fn main() {
    println!("{}", gossip_bench::experiments::exp_lemma1());
}
