//! E25 (textual): churn — mid-run topology changes with incremental
//! schedule repair, plus `BENCH_churn.json` with the per-scenario repair
//! accounting.

fn main() {
    let (report, payload) = gossip_bench::experiments::exp_churn_full();
    println!("{report}");
    if let Some(path) = gossip_bench::report::write_bench_json("churn", &payload) {
        println!("wrote {path}");
    }
}
