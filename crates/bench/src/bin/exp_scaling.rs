//! E15 (textual): wall-clock scaling of the pipeline stages.

fn main() {
    println!("{}", gossip_bench::experiments::exp_scaling());
}
