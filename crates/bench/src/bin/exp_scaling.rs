//! E15 (textual): wall-clock scaling of the pipeline stages, plus
//! `BENCH_scaling.json` with a full telemetry snapshot.

fn main() {
    let (report, payload) = gossip_bench::experiments::exp_scaling_full();
    println!("{report}");
    if let Some(path) = gossip_bench::report::write_bench_json("scaling", &payload) {
        println!("wrote {path}");
    }
}
