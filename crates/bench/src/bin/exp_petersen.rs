//! E6: Fig 2, the Petersen graph.

fn main() {
    println!("{}", gossip_bench::experiments::exp_petersen());
}
