//! E17: online/distributed execution.

fn main() {
    println!("{}", gossip_bench::experiments::exp_online());
}
