//! E14: multicast vs telephone.

fn main() {
    println!("{}", gossip_bench::experiments::exp_models());
}
