//! E18: exact optima on tiny networks.

fn main() {
    println!("{}", gossip_bench::experiments::exp_exact());
}
