//! E16: weighted gossiping.

fn main() {
    println!("{}", gossip_bench::experiments::exp_weighted());
}
