//! E8: Figs 4-5 pipeline.

fn main() {
    println!("{}", gossip_bench::experiments::exp_fig45());
}
