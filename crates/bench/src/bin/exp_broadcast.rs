//! E13: broadcast = eccentricity.

fn main() {
    println!("{}", gossip_bench::experiments::exp_broadcast());
}
