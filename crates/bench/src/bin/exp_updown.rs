//! E11: UpDown ablation.

fn main() {
    println!("{}", gossip_bench::experiments::exp_updown());
}
