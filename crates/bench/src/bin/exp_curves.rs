//! E23: knowledge curves per algorithm (probe-derived), plus
//! `BENCH_curves.json`.

fn main() {
    let (report, payload) = gossip_bench::experiments::exp_curves_full();
    println!("{report}");
    if let Some(path) = gossip_bench::report::write_bench_json("curves", &payload) {
        println!("wrote {path}");
    }
}
