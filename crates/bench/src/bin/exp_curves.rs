//! E23: knowledge curves per algorithm.

fn main() {
    println!("{}", gossip_bench::experiments::exp_curves());
}
