//! E25 — churn sweep: topology changes mid-run with incremental schedule
//! repair. Runs the `n + r` schedule through [`gossip_core::ChurnExecutor`]
//! under seeded connectivity-preserving [`ChurnPlan`]s across churn rates
//! and reports invalidated entries, incremental-vs-scratch replanning
//! cost, and whether completion landed within `n + r` of the *final*
//! graph.

use crate::report::obj;
use crate::table::TextTable;
use gossip_core::ChurnExecutor;
use gossip_model::ChurnPlan;
use gossip_telemetry::Value;
use gossip_workloads::Family;

/// The textual report (see [`exp_churn_full`] for the artifact).
pub fn exp_churn() -> String {
    exp_churn_full().0
}

/// [`exp_churn`] plus the machine-readable payload written to
/// `BENCH_churn.json`: one row per (network, churn rate) with the full
/// repair accounting.
pub fn exp_churn_full() -> (String, Value) {
    let mut t = TextTable::new(vec![
        "network",
        "n",
        "churn",
        "events",
        "invalidated",
        "repaired",
        "scratch",
        "full",
        "rounds",
        "bound",
        "in-bound",
    ]);
    let mut rows = Vec::new();

    let run = |label: &str,
               g: &gossip_graph::Graph,
               rate_label: &str,
               churn: &ChurnPlan,
               t: &mut TextTable,
               rows: &mut Vec<Value>| {
        let report = ChurnExecutor::new(g, churn).run().unwrap();
        assert!(
            report.recovered,
            "{label} under churn {rate_label}: a recoverable pair was left undelivered"
        );
        // The connectivity-preserving generator never strands a node, so
        // the final graph always defines an n + r bound.
        let bound = report.final_bound.expect("generator keeps g connected");
        t.row(vec![
            label.to_string(),
            g.n().to_string(),
            rate_label.to_string(),
            report.events_applied.to_string(),
            report.deliveries_invalidated.to_string(),
            report.repaired_entries.to_string(),
            report.scratch_entries.to_string(),
            report.full_replans.to_string(),
            report.rounds_after_last_event.to_string(),
            bound.to_string(),
            if report.within_final_bound {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
        rows.push(obj(vec![
            ("network", Value::String(label.to_string())),
            ("n", Value::from_u64(g.n() as u64)),
            ("churn", Value::String(rate_label.to_string())),
            (
                "events_applied",
                Value::from_u64(report.events_applied as u64),
            ),
            (
                "deliveries_invalidated",
                Value::from_u64(report.deliveries_invalidated as u64),
            ),
            (
                "repaired_entries",
                Value::from_u64(report.repaired_entries as u64),
            ),
            (
                "scratch_entries",
                Value::from_u64(report.scratch_entries as u64),
            ),
            (
                "incremental_repairs",
                Value::from_u64(report.incremental_repairs as u64),
            ),
            ("full_replans", Value::from_u64(report.full_replans as u64)),
            ("total_rounds", Value::from_u64(report.total_rounds as u64)),
            (
                "rounds_after_last_event",
                Value::from_u64(report.rounds_after_last_event as u64),
            ),
            ("final_bound", Value::from_u64(bound as u64)),
            ("within_final_bound", Value::Bool(report.within_final_bound)),
            ("recovered", Value::Bool(report.recovered)),
        ]));
    };

    // Three network shapes the churn model stresses differently: the
    // paper's Fig 4 instance, a seeded sparse random graph, and a seeded
    // unit-disk field (the paper's §2 wireless motivation).
    let fig4 = gossip_workloads::fig4_graph();
    let sparse = Family::all()
        .iter()
        .copied()
        .find(|f| f.name() == "random-sparse")
        .expect("random-sparse family exists")
        .instance(16, 7);
    let (disk, _pts, _r) = gossip_workloads::unit_disk_connected(16, 0.3, 7);
    let networks = [
        ("fig4", &fig4),
        ("random-sparse", &sparse),
        ("unit-disk", &disk),
    ];

    for (ni, (label, g)) in networks.into_iter().enumerate() {
        // Horizon targets the interior of the base run so events land
        // while entries are in flight (mirrors the CLI default).
        let makespan = gossip_core::GossipPlanner::new(g)
            .unwrap()
            .plan()
            .unwrap()
            .schedule
            .makespan();
        let horizon = makespan.saturating_sub(2).max(1) as u32;
        for (permille, rate_label) in [
            (0u64, "none"),
            (20, "rate 0.02"),
            (50, "rate 0.05"),
            (100, "rate 0.10"),
        ] {
            // The generator's skip draw depends only on (seed, round), so
            // one seed across the sweep would correlate every row — salt
            // it per (network, rate) instead.
            let seed = 101 * (ni as u64 + 1) + permille;
            let churn = ChurnPlan::generate(g, permille as f64 / 1000.0, seed, horizon);
            run(label, g, rate_label, &churn, &mut t, &mut rows);
        }
    }

    let payload = obj(vec![
        ("experiment", Value::String("churn".into())),
        ("rows", Value::Array(rows)),
    ]);
    let report = format!(
        "Churn-resilient execution under seeded connectivity-preserving\n\
         topology scripts (ChurnExecutor, incremental schedule repair).\n\
         `repaired` counts deliveries the chosen repair planned; `scratch`\n\
         is what replanning everything still missing would have cost at the\n\
         same instants; `rounds` counts rounds after the last event, judged\n\
         against n + r of the FINAL graph:\n{}\n\
         zero-churn rows replay the baseline untouched (0 invalidated,\n\
         0 replanned); every churned row heals with strictly fewer replanned\n\
         entries than replan-from-scratch, inside the final graph's bound.\n",
        t.render()
    );
    (report, payload)
}

#[cfg(test)]
mod tests {
    #[test]
    fn churn_report_builds_heals_and_beats_scratch() {
        let (r, payload) = super::exp_churn_full();
        assert!(r.contains("in-bound"));
        let rows = payload["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 12, "3 networks x 4 rates");
        let mut churned_rows = 0;
        for row in rows {
            assert_eq!(row["recovered"].as_bool(), Some(true));
            assert_eq!(row["within_final_bound"].as_bool(), Some(true));
            if row["churn"].as_str() == Some("none") {
                assert_eq!(row["deliveries_invalidated"].as_u64(), Some(0));
                assert_eq!(row["repaired_entries"].as_u64(), Some(0));
            } else if row["events_applied"].as_u64() > Some(0) {
                churned_rows += 1;
                // The incremental-repair acceptance check: strictly fewer
                // replanned entries than replan-from-scratch.
                assert!(
                    row["repaired_entries"].as_u64() < row["scratch_entries"].as_u64(),
                    "row {row:?} repaired >= scratch"
                );
            }
        }
        assert!(churned_rows >= 3, "sweep produced too few churned runs");
    }
}
