//! E9–E12: the paper's quantitative claims (Theorem 1, Lemma 1, the UpDown
//! middle ground, and the line-network bounds).

use crate::table::TextTable;
use gossip_core::{
    concurrent_updown, gossip_lower_bound, simple_gossip, tree_origins, updown_gossip,
    GossipPlanner,
};
use gossip_graph::min_depth_spanning_tree;
use gossip_model::{simulate_gossip, CommModel, FlatSchedule, SimKernel, Simulator};
use gossip_workloads::{odd_line, random_connected, Family};

/// E9 — Theorem 1 sweep: on every family and size, the pipeline's makespan
/// equals `n + r` exactly, sits above the `n - 1` lower bound, and every
/// schedule is machine-verified.
pub fn exp_theorem1() -> String {
    exp_theorem1_full().0
}

/// [`exp_theorem1`] plus the machine-readable payload written to
/// `BENCH_theorem1.json` (one row object per family/size).
pub fn exp_theorem1_full() -> (String, gossip_telemetry::Value) {
    use crate::report::obj;
    use gossip_telemetry::Value;
    let mut t = TextTable::new(vec![
        "family",
        "n",
        "m",
        "r",
        "makespan",
        "n + r",
        "lower bound",
        "ratio",
        "ok",
    ]);
    let mut rows = Vec::new();
    for &family in Family::all() {
        for target in [16, 64] {
            let g = family.instance(target, 42);
            // Min-of-3: these are sub-millisecond one-shot wall timings, so a
            // single descheduling blip can trip the bench-diff 2x gate; the
            // floor is the honest cost.
            let mut plan_ms = f64::INFINITY;
            let mut plan = None;
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                plan = Some(GossipPlanner::new(&g).unwrap().plan().unwrap());
                plan_ms = plan_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            let plan = plan.unwrap();
            let mut sim_ms = f64::INFINITY;
            let mut o = None;
            for _ in 0..3 {
                let t1 = std::time::Instant::now();
                o = Some(simulate_gossip(&g, &plan.schedule, &plan.origin_of_message).unwrap());
                sim_ms = sim_ms.min(t1.elapsed().as_secs_f64() * 1e3);
            }
            let o = o.unwrap();
            assert!(o.complete);
            let n = g.n();
            let r = plan.radius as usize;
            assert_eq!(plan.makespan(), n + r);
            let lb = gossip_lower_bound(&g);
            t.row(vec![
                family.name().to_string(),
                n.to_string(),
                g.m().to_string(),
                r.to_string(),
                plan.makespan().to_string(),
                (n + r).to_string(),
                lb.to_string(),
                format!("{:.3}", plan.makespan() as f64 / lb as f64),
                "yes".into(),
            ]);
            rows.push(obj(vec![
                ("family", Value::String(family.name().to_string())),
                ("n", Value::from_u64(n as u64)),
                ("m", Value::from_u64(g.m() as u64)),
                ("r", Value::from_u64(r as u64)),
                ("makespan", Value::from_u64(plan.makespan() as u64)),
                ("lower_bound", Value::from_u64(lb as u64)),
                ("ratio", Value::from_f64(plan.makespan() as f64 / lb as f64)),
                ("complete", Value::Bool(true)),
                ("plan_ms", Value::from_f64(plan_ms)),
                ("sim_ms", Value::from_f64(sim_ms)),
            ]));
        }
    }
    let (kernel_table, kernel_rows) = kernel_speedup_sweep();
    rows.extend(kernel_rows);
    let report = format!(
        "Theorem 1 (makespan = n + r, verified complete) across families:\n{}\n\
         ratio = achieved / best-known lower bound; bounded by 1.5 n/(n-1) since\n\
         r <= n/2 (the paper's S4 near-optimality claim), worst on rings.\n\
         \n\
         SimKernel replay vs oracle Simulator on G(n, p), p = 16/n:\n{}\n\
         speedup = oracle / kernel replay (flat CSR built + validated once,\n\
         outside the timed region); the bench-diff gate flags any drop past 2x.\n",
        t.render(),
        kernel_table.render()
    );
    let payload = obj(vec![
        ("experiment", Value::String("theorem1".into())),
        ("rows", Value::Array(rows)),
    ]);
    (report, payload)
}

/// Wall-clock best-of-`reps` for `f`, in milliseconds.
fn best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The `gnp-kernel` rows of `BENCH_theorem1.json`: oracle [`Simulator`]
/// replay vs [`SimKernel::run_prevalidated`] over the same planned G(n, p)
/// schedule. The `sim_kernel_speedup_x` field is guarded by the CI
/// perf-gate's higher-is-better rule, and — in release builds, the only
/// configuration whose timings mean anything — asserted to clear the 5x
/// floor right here, so the artifact can never even be written with a
/// slow kernel.
fn kernel_speedup_sweep() -> (TextTable, Vec<gossip_telemetry::Value>) {
    use crate::report::obj;
    use gossip_telemetry::Value;
    let mut t = TextTable::new(vec![
        "n",
        "m",
        "deliveries",
        "oracle ms",
        "kernel ms",
        "speedup",
    ]);
    let mut rows = Vec::new();
    // Debug builds (the unit-test path) keep the sweep small: the ratio is
    // still exercised, but the 5x floor is only meaningful — and only
    // enforced — under optimization.
    let sizes: &[usize] = if cfg!(debug_assertions) {
        &[128]
    } else {
        &[512, 2048]
    };
    for &n in sizes {
        let g = random_connected(n, (16.0 / n as f64).min(0.5), 42);
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let origins = &plan.origin_of_message;
        let flat = FlatSchedule::from_schedule(&plan.schedule);
        flat.validate(&g, CommModel::Multicast, origins.len())
            .unwrap();
        let reps = 3;
        let oracle_ms = best_ms(reps, || {
            let mut sim = Simulator::with_origins(&g, CommModel::Multicast, origins).unwrap();
            let o = sim.run(&plan.schedule).unwrap();
            assert!(o.complete);
            o
        });
        let kernel_ms = best_ms(reps, || {
            let mut k = SimKernel::with_origins(&g, CommModel::Multicast, origins).unwrap();
            let o = k.run_prevalidated(&flat).unwrap();
            assert!(o.complete);
            o
        });
        let speedup = oracle_ms / kernel_ms;
        #[cfg(not(debug_assertions))]
        assert!(
            speedup >= 5.0,
            "SimKernel replay must stay >= 5x the oracle at n = {n} (got {speedup:.2}x)"
        );
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            flat.deliveries().to_string(),
            format!("{oracle_ms:.3}"),
            format!("{kernel_ms:.3}"),
            format!("{speedup:.1}x"),
        ]);
        rows.push(obj(vec![
            ("family", Value::String("gnp-kernel".into())),
            ("n", Value::from_u64(n as u64)),
            ("m", Value::from_u64(g.m() as u64)),
            ("makespan", Value::from_u64(plan.makespan() as u64)),
            ("deliveries", Value::from_u64(flat.deliveries() as u64)),
            ("oracle_sim_ms", Value::from_f64(oracle_ms)),
            ("kernel_sim_ms", Value::from_f64(kernel_ms)),
            ("sim_kernel_speedup_x", Value::from_f64(speedup)),
        ]));
    }
    (t, rows)
}

/// E10 — Lemma 1: algorithm Simple takes exactly `2n + r - 3` rounds; the
/// head-to-head shows ConcurrentUpDown halving it at small radius.
pub fn exp_lemma1() -> String {
    let mut t = TextTable::new(vec![
        "family",
        "n",
        "r",
        "Simple",
        "2n + r - 3",
        "ConcurrentUpDown",
        "speedup",
    ]);
    for &family in Family::all() {
        let g = family.instance(32, 9);
        let tree = min_depth_spanning_tree(&g, gossip_graph::ChildOrder::ById).unwrap();
        let simple = simple_gossip(&tree);
        let cud = concurrent_updown(&tree);
        let go = simulate_gossip(&tree.to_graph(), &simple, &tree_origins(&tree)).unwrap();
        assert!(go.complete);
        let n = tree.n();
        let r = tree.height() as usize;
        assert_eq!(simple.makespan(), 2 * n + r - 3);
        t.row(vec![
            family.name().to_string(),
            n.to_string(),
            r.to_string(),
            simple.makespan().to_string(),
            (2 * n + r - 3).to_string(),
            cud.makespan().to_string(),
            format!("{:.2}x", simple.makespan() as f64 / cud.makespan() as f64),
        ]);
    }
    format!(
        "Lemma 1 (Simple = 2n + r - 3) vs Theorem 1 (n + r):\n{}",
        t.render()
    )
}

/// E11 — the ablation the paper's §3.2 narrative implies: remove the
/// lookahead machinery (UpDown) and schedules stretch toward Simple; keep
/// it (ConcurrentUpDown) and they pin to `n + r`.
pub fn exp_updown() -> String {
    let mut t = TextTable::new(vec![
        "family",
        "n",
        "r",
        "n + r (CUD)",
        "UpDown",
        "Simple (2n+r-3)",
        "UpDown overhead",
    ]);
    for &family in Family::all() {
        let g = family.instance(24, 5);
        let tree = min_depth_spanning_tree(&g, gossip_graph::ChildOrder::ById).unwrap();
        let cud = concurrent_updown(&tree).makespan();
        let ud = updown_gossip(&tree).makespan();
        let simple = simple_gossip(&tree).makespan();
        let n = tree.n();
        let r = tree.height() as usize;
        t.row(vec![
            family.name().to_string(),
            n.to_string(),
            r.to_string(),
            cud.to_string(),
            ud.to_string(),
            simple.to_string(),
            format!("{:+}", ud as i64 - cud as i64),
        ]);
    }
    format!(
        "Ablation: the lookahead (lip) messages are what buy n + r.\n{}\n\
         UpDown = same up-phase, eager down-flood, no lookahead: its schedules sit\n\
         between the two published bounds (occasionally a round below n + r on very\n\
         shallow trees, where ConcurrentUpDown's uniform root-message deferral costs 1).\n",
        t.render()
    )
}

/// E12 — the straight-line story (§1 and §4): lower bound `n + r - 1`,
/// generic algorithm at `n + r`, and the §4 "improve by one unit"
/// schedule realized constructively where the exact line scheduler
/// reaches (`n <= MAX_LINE_N`).
pub fn exp_line() -> String {
    let mut t = TextTable::new(vec![
        "m",
        "n = 2m+1",
        "r",
        "lower bound n+r-1",
        "generic n+r",
        "non-uniform schedule",
    ]);
    for m in [1usize, 2, 4, 8, 16, 32] {
        let g = odd_line(m);
        let n = 2 * m + 1;
        let lb = gossip_lower_bound(&g);
        assert_eq!(lb, n + m - 1);
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        assert_eq!(plan.makespan(), n + m);
        let improved = if n <= gossip_core::MAX_LINE_N {
            let s = gossip_core::line_gossip_schedule(n);
            let o = simulate_gossip(&g, &s, &gossip_model::identity_origins(n)).unwrap();
            assert!(o.complete);
            assert_eq!(s.makespan(), lb);
            format!("{} (verified)", s.makespan())
        } else {
            "- (exists per paper; construction open)".to_string()
        };
        t.row(vec![
            m.to_string(),
            n.to_string(),
            m.to_string(),
            lb.to_string(),
            plan.makespan().to_string(),
            improved,
        ]);
    }
    format!(
        "Odd straight lines (the paper's §1 lower-bound instance):\n{}\n\
         The uniform algorithm is always exactly one round above the bound. The §4\n\
         remark — a non-uniform protocol alternating subtree deliveries closes the\n\
         gap — is realized constructively (exact search) for n <= {}.\n",
        t.render(),
        gossip_core::MAX_LINE_N
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn theorem1_report_builds() {
        assert!(super::exp_theorem1().contains("ratio"));
    }

    #[test]
    fn lemma1_report_builds() {
        assert!(super::exp_lemma1().contains("Simple"));
    }

    #[test]
    fn updown_report_builds() {
        assert!(super::exp_updown().contains("UpDown"));
    }

    #[test]
    fn line_report_builds() {
        let r = super::exp_line();
        assert!(r.contains("n + r - 1") || r.contains("n+r-1"));
    }
}
