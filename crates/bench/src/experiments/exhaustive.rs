//! E19–E20: studies beyond the paper's own artifacts — exhaustive
//! optimality over all tiny connected graphs, and the §2 wireless-energy
//! story on sensor fields.

use crate::table::TextTable;
use gossip_core::{gossip_lower_bound, optimal_gossip_time, Algorithm, ExactResult, GossipPlanner};
use gossip_model::CommModel;
use gossip_workloads::{connected_graphs_canonical, schedule_energy, unit_disk_connected};

/// E19 — every connected graph on 4 and 5 vertices (up to isomorphism):
/// exact optimal gossip time vs the `n + r` schedule vs the lower bound.
/// An exhaustive answer to "how far from optimal is the paper's algorithm
/// on small networks?".
pub fn exp_exhaustive() -> String {
    let mut out = String::new();
    for n in [4usize, 5] {
        let reps = connected_graphs_canonical(n);
        let mut gap_histogram: Vec<usize> = Vec::new();
        let mut lb_tight = 0usize;
        let mut opt_at_trivial = 0usize;
        for g in &reps {
            let plan = GossipPlanner::new(g).unwrap().plan().unwrap();
            let opt = match optimal_gossip_time(g, CommModel::Multicast, 2 * n + 4, 50_000_000) {
                ExactResult::Optimal(v) => v,
                other => panic!("exact search failed: {other:?}"),
            };
            let lb = gossip_lower_bound(g);
            assert!(lb <= opt && opt <= plan.makespan());
            let gap = plan.makespan() - opt;
            if gap_histogram.len() <= gap {
                gap_histogram.resize(gap + 1, 0);
            }
            gap_histogram[gap] += 1;
            if lb == opt {
                lb_tight += 1;
            }
            if opt == n - 1 {
                opt_at_trivial += 1;
            }
        }
        out.push_str(&format!(
            "all {} connected graphs on {n} vertices (up to isomorphism):\n",
            reps.len()
        ));
        let mut t = TextTable::new(vec!["(n+r) - optimal", "graphs"]);
        for (gap, count) in gap_histogram.iter().enumerate() {
            t.row(vec![gap.to_string(), count.to_string()]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "lower bound tight on {lb_tight}/{} graphs; optimum equals the trivial\n\
             n - 1 bound on {opt_at_trivial}/{} graphs.\n\n",
            reps.len(),
            reps.len()
        ));
    }
    out.push_str(
        "The n + r schedule is at most r + 1 above optimal on every instance, and\n\
         the cut-vertex bound certifies the optimum wherever a cut vertex exists.\n",
    );
    out
}

/// E20 — the §2 wireless motivation quantified: on unit-disk sensor
/// fields, gossip rounds and total radio energy (`reach^α`, α = 2) under
/// multicast vs the telephone restriction, same spanning tree.
pub fn exp_energy() -> String {
    let mut t = TextTable::new(vec![
        "sensors",
        "radio range",
        "rounds (mc)",
        "rounds (tel)",
        "energy (mc)",
        "energy (tel)",
        "energy ratio",
    ]);
    for &n in &[20usize, 40] {
        for seed in [1u64, 2] {
            let (g, pts, r) = unit_disk_connected(n, 0.22, seed);
            let planner = GossipPlanner::new(&g).unwrap();
            let mc = planner.clone().plan().unwrap();
            let tel = planner
                .clone()
                .algorithm(Algorithm::Telephone)
                .plan()
                .unwrap();
            let e_mc = schedule_energy(&mc.schedule, &pts, 2.0);
            let e_tel = schedule_energy(&tel.schedule, &pts, 2.0);
            t.row(vec![
                n.to_string(),
                format!("{r:.2}"),
                mc.makespan().to_string(),
                tel.makespan().to_string(),
                format!("{e_mc:.2}"),
                format!("{e_tel:.2}"),
                format!("{:.2}x", e_tel / e_mc),
            ]);
        }
    }
    format!(
        "Unit-disk sensor fields (the paper's §2 wireless setting), energy =\n\
         sum over transmissions of (distance to farthest listener)^2:\n{}\n\
         One multicast emission reaches every in-range listener at once, so the\n\
         multicast schedules need both fewer rounds and fewer emissions.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn exhaustive_report_builds() {
        let r = super::exp_exhaustive();
        assert!(r.contains("21")); // 21 connected graphs on 5 vertices
    }

    #[test]
    fn energy_report_builds() {
        let r = super::exp_energy();
        assert!(r.contains("energy ratio"));
    }
}
