//! One module per experiment (see DESIGN.md §4 for the index).

mod bounds_exps;
mod churn;
mod exhaustive;
mod extensions;
mod figures;
mod models_exps;
mod resilience;
mod scaling;
mod tables;

pub use bounds_exps::{exp_lemma1, exp_line, exp_theorem1, exp_theorem1_full, exp_updown};
pub use churn::{exp_churn, exp_churn_full};
pub use exhaustive::{exp_energy, exp_exhaustive};
pub use extensions::{exp_exact, exp_online, exp_pipeline, exp_weighted};
pub use figures::{exp_fig45, exp_n3, exp_petersen, exp_ring};
pub use models_exps::{exp_broadcast, exp_compaction, exp_curves, exp_curves_full, exp_models};
pub use resilience::{exp_resilience, exp_resilience_full};
pub use scaling::{
    exp_scaling, exp_scaling_full, exp_scaling_full_with, SizeBudget, SizeMode, DEFAULT_SIZES,
};
pub use tables::exp_tables;

/// Every experiment report, in DESIGN.md order, as `(id, title, report)`.
pub fn all_reports() -> Vec<(&'static str, &'static str, String)> {
    vec![
        (
            "E1-E4",
            "Paper Tables 1-4 (per-vertex schedules, Fig 5 tree)",
            exp_tables(),
        ),
        (
            "E5",
            "Fig 1 (N1): ring gossip at the n - 1 optimum",
            exp_ring(),
        ),
        ("E6", "Fig 2 (N2): the Petersen graph", exp_petersen()),
        (
            "E7",
            "Fig 3 (N3 substitute): K_{2,3} separates the models",
            exp_n3(),
        ),
        (
            "E8",
            "Figs 4-5: graph -> minimum-depth tree -> schedule",
            exp_fig45(),
        ),
        (
            "E9",
            "Theorem 1: makespan = n + r across families",
            exp_theorem1(),
        ),
        ("E10", "Lemma 1: Simple = 2n + r - 3", exp_lemma1()),
        (
            "E11",
            "UpDown ablation: the price of no lookahead",
            exp_updown(),
        ),
        ("E12", "The line-network bounds (paper S1/S4)", exp_line()),
        (
            "E13",
            "Broadcast = source eccentricity (paper S2)",
            exp_broadcast(),
        ),
        (
            "E14",
            "Multicast vs telephone vs broadcast models",
            exp_models(),
        ),
        (
            "E16",
            "Weighted gossiping by chain splitting (paper S4)",
            exp_weighted(),
        ),
        (
            "E17",
            "Online/distributed execution (paper S4)",
            exp_online(),
        ),
        ("E18", "Exact optima on tiny networks vs n + r", exp_exact()),
        (
            "E19",
            "Exhaustive study: every tiny connected graph",
            exp_exhaustive(),
        ),
        (
            "E21",
            "Pipelined repeated gossiping (paper S4 amortization)",
            exp_pipeline(),
        ),
        (
            "E22",
            "Compaction ablation: slack left by each algorithm",
            exp_compaction(),
        ),
        (
            "E23",
            "Knowledge curves: where each algorithm spends its rounds",
            exp_curves(),
        ),
        (
            "E15",
            "Wall-clock scaling of the pipeline stages",
            exp_scaling(),
        ),
        (
            "E20",
            "Sensor-field energy (paper S2 wireless motivation)",
            exp_energy(),
        ),
        (
            "E24",
            "Self-healing recovery under seeded fault plans",
            exp_resilience(),
        ),
        (
            "E25",
            "Churn: mid-run topology changes with incremental repair",
            exp_churn(),
        ),
    ]
}
