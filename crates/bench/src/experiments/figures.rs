//! E5–E8: the paper's example networks (Figs 1–5).

use crate::table::TextTable;
use gossip_core::{
    concurrent_updown, optimal_gossip_time, petersen_gossip_schedule, ring_gossip_schedule,
    tree_origins, ExactResult, GossipPlanner,
};
use gossip_graph::{is_hamiltonian, min_depth_spanning_tree, ChildOrder, Graph};
use gossip_model::{identity_origins, simulate_gossip, validate_gossip_schedule, CommModel};
use gossip_workloads::{fig4_graph, fig5_tree, n1_ring, petersen};

/// E5 — Fig 1 (`N_1`): Hamiltonian-circuit gossip hits the `n - 1` optimum;
/// the generic tree algorithm pays `n + ⌊n/2⌋` on the same ring.
pub fn exp_ring() -> String {
    let mut t = TextTable::new(vec![
        "n",
        "circuit schedule",
        "n - 1",
        "generic n + r",
        "verified",
    ]);
    for n in [4, 6, 8, 12, 16, 24] {
        let g = n1_ring(n);
        let ham = ring_gossip_schedule(&g).expect("rings are Hamiltonian");
        let o = simulate_gossip(&g, &ham, &identity_origins(n)).expect("valid");
        assert!(o.complete);
        let generic = GossipPlanner::new(&g).unwrap().plan().unwrap();
        t.row(vec![
            n.to_string(),
            ham.makespan().to_string(),
            (n - 1).to_string(),
            generic.makespan().to_string(),
            "yes".into(),
        ]);
    }
    format!(
        "Gossiping along a Hamiltonian circuit (paper Fig 1 schedule):\n{}\n\
         The circuit schedule meets the universal lower bound n - 1 exactly;\n\
         the topology-oblivious n + r algorithm pays the ring's radius n/2 on top.\n",
        t.render()
    )
}

/// E6 — Fig 2 (`N_2`): the Petersen graph is non-Hamiltonian (exhaustive
/// proof), yet a structured schedule gossips in `n - 1 = 9` telephone-legal
/// rounds.
pub fn exp_petersen() -> String {
    let g = petersen();
    let hamiltonian = is_hamiltonian(&g);
    let s = petersen_gossip_schedule();
    let o = validate_gossip_schedule(&g, &s, &identity_origins(10), CommModel::Telephone)
        .expect("valid");
    assert!(o.complete);
    let generic = GossipPlanner::new(&g).unwrap().plan().unwrap();
    format!(
        "Petersen graph (n = 10, radius 2):\n\
         - Hamiltonian circuit exists: {hamiltonian} (exhaustive backtracking search)\n\
         - structured schedule: {} rounds = n - 1, telephone-legal, verified complete\n\
         \x20 (4 rounds rotating the outer/inner 5-cycles + 5 rounds of spoke swaps)\n\
         - generic n + r pipeline: {} rounds (guarantee 12)\n",
        s.makespan(),
        generic.makespan(),
    )
}

/// E7 — Fig 3 substitute: `K_{2,3}` gossips in `n - 1` under multicast but
/// provably not under telephone (exact state-space search both ways).
pub fn exp_n3() -> String {
    let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).expect("valid");
    let hamiltonian = is_hamiltonian(&g);
    let mc = optimal_gossip_time(&g, CommModel::Multicast, 10, 50_000_000);
    let tp = optimal_gossip_time(&g, CommModel::Telephone, 10, 50_000_000);
    let (ExactResult::Optimal(mc), ExactResult::Optimal(tp)) = (mc, tp) else {
        panic!("exact search did not converge: {mc:?} / {tp:?}");
    };
    format!(
        "K_2,3 (n = 5) as the N3 substitute (the paper's Fig 3 image is not\n\
         recoverable from the text; see DESIGN.md S3):\n\
         - Hamiltonian circuit exists: {hamiltonian}\n\
         - exact optimal gossip time, multicast model: {mc} rounds (= n - 1)\n\
         - exact optimal gossip time, telephone model: {tp} rounds\n\
         Multicasting is strictly more powerful on a non-Hamiltonian network,\n\
         which is precisely the claim the paper attaches to N3.\n"
    )
}

/// E8 — Figs 4–5: from the reconstructed graph, the pipeline recovers the
/// Fig 5 tree and the 19-round schedule.
pub fn exp_fig45() -> String {
    let g = fig4_graph();
    let tree = min_depth_spanning_tree(&g, ChildOrder::ById).expect("connected");
    let matches = tree == fig5_tree();
    let s = concurrent_updown(&tree);
    let o = simulate_gossip(&g, &s, &tree_origins(&tree)).expect("valid");
    assert!(o.complete);
    let labels: Vec<String> = (0..16).map(|v| format!("{v}->{}", tree.label(v))).collect();
    format!(
        "Fig 4 graph: n = 16, m = {}, radius 3.\n\
         - minimum-depth spanning tree == Fig 5 tree: {matches}\n\
         - DFS labels (vertex->label): {}\n\
         - schedule: {} rounds (n + r = 19), completion verified at time {}\n",
        g.m(),
        labels.join(" "),
        s.makespan(),
        o.completion_time.unwrap(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn ring_report() {
        let r = super::exp_ring();
        assert!(r.contains("n - 1"));
    }

    #[test]
    fn petersen_report() {
        let r = super::exp_petersen();
        assert!(r.contains("Hamiltonian circuit exists: false"));
        assert!(r.contains("9 rounds = n - 1"));
    }

    #[test]
    fn n3_report() {
        let r = super::exp_n3();
        assert!(r.contains("multicast model: 4"));
        assert!(r.contains("telephone model: 6"));
    }

    #[test]
    fn fig45_report() {
        let r = super::exp_fig45();
        assert!(r.contains("== Fig 5 tree: true"));
        assert!(r.contains("19 rounds") || r.contains("schedule: 19"));
    }
}
