//! E13–E14: broadcasting and the model comparison.

use crate::table::TextTable;
use gossip_core::{broadcast_model_gossip, broadcast_schedule, Algorithm, GossipPlanner};
use gossip_graph::distance_metrics;
use gossip_model::{compact_schedule, validate_gossip_schedule, CommModel};
use gossip_workloads::Family;

/// E13 — §2's broadcast claim: total communication time equals the source's
/// eccentricity, for every source, on every family.
pub fn exp_broadcast() -> String {
    let mut t = TextTable::new(vec![
        "family",
        "n",
        "source",
        "eccentricity",
        "broadcast rounds",
        "match",
    ]);
    for &family in Family::all() {
        let g = family.instance(30, 17);
        let metrics = distance_metrics(&g).unwrap();
        for source in [0, g.n() / 2, g.n() - 1] {
            let (s, time) = broadcast_schedule(&g, source);
            assert_eq!(time, metrics.ecc[source] as usize);
            assert_eq!(s.makespan(), time);
            t.row(vec![
                family.name().to_string(),
                g.n().to_string(),
                source.to_string(),
                metrics.ecc[source].to_string(),
                time.to_string(),
                "yes".into(),
            ]);
        }
    }
    format!(
        "Offline broadcasting under the multicast model (paper §2):\n{}\n\
         every vertex at distance d receives the message at time exactly d.\n",
        t.render()
    )
}

/// E14 — the paper's motivating comparison: gossip rounds under all three
/// §1 communication regimes. Multicast (choose any neighbour subset) vs
/// the telephone restriction (one destination) vs local broadcast (all
/// neighbours, wanted or not). Wide, shallow topologies show the multicast
/// advantage growing with fan-out; paths show it vanishing.
pub fn exp_models() -> String {
    let mut t = TextTable::new(vec![
        "family",
        "n",
        "max degree",
        "multicast (n + r)",
        "telephone",
        "broadcast",
        "tel/mc",
        "bc/mc",
    ]);
    for &family in Family::all() {
        for target in [16, 48] {
            let g = family.instance(target, 29);
            let planner = GossipPlanner::new(&g).unwrap();
            let mc = planner.clone().plan().unwrap();
            let tp = planner
                .clone()
                .algorithm(Algorithm::Telephone)
                .plan()
                .unwrap();
            let bm = broadcast_model_gossip(&g);
            let mo = validate_gossip_schedule(
                &g,
                &mc.schedule,
                &mc.origin_of_message,
                CommModel::Multicast,
            )
            .unwrap();
            let to = validate_gossip_schedule(
                &g,
                &tp.schedule,
                &tp.origin_of_message,
                CommModel::Telephone,
            )
            .unwrap();
            let bo = validate_gossip_schedule(
                &g,
                &bm,
                &gossip_model::identity_origins(g.n()),
                CommModel::Broadcast,
            )
            .unwrap();
            assert!(mo.complete && to.complete && bo.complete);
            t.row(vec![
                family.name().to_string(),
                g.n().to_string(),
                g.max_degree().to_string(),
                mc.makespan().to_string(),
                tp.makespan().to_string(),
                bm.makespan().to_string(),
                format!("{:.2}x", tp.makespan() as f64 / mc.makespan() as f64),
                format!("{:.2}x", bm.makespan() as f64 / mc.makespan() as f64),
            ]);
        }
    }
    format!(
        "Gossip under the three communication regimes of the paper's §1 (multicast\n\
         and telephone on the same minimum-depth tree; broadcast greedy on the graph):\n{}\n\
         telephone pays per-child repetition (up to n/2 x on stars); forced local\n\
         broadcast pays receiver-conflict serialization; free-subset multicast wins,\n\
         which is the paper's \"multicasting is a much more efficient way to communicate\".\n",
        t.render()
    )
}

/// E22 — compaction ablation: run the post-optimizer over each algorithm's
/// schedules. ConcurrentUpDown compacts by at most one round (it is
/// redundancy-free and dense); Simple's wait-for-everything down phase
/// leaves large slack.
pub fn exp_compaction() -> String {
    let mut t = TextTable::new(vec![
        "family",
        "algorithm",
        "makespan",
        "compacted",
        "saved",
        "deliveries pruned",
    ]);
    for &family in Family::all() {
        let g = family.instance(20, 3);
        for alg in [
            Algorithm::ConcurrentUpDown,
            Algorithm::Simple,
            Algorithm::UpDown,
        ] {
            let plan = GossipPlanner::new(&g)
                .unwrap()
                .algorithm(alg)
                .plan()
                .unwrap();
            let report = compact_schedule(&g, &plan.schedule, &plan.origin_of_message).unwrap();
            assert!(gossip_model::verify_compaction(&g, &report, &plan.origin_of_message).unwrap());
            t.row(vec![
                family.name().to_string(),
                alg.name().to_string(),
                report.makespan_before.to_string(),
                report.makespan_after.to_string(),
                (report.makespan_before - report.makespan_after).to_string(),
                report.deliveries_pruned.to_string(),
            ]);
        }
    }
    format!(
        "Greedy schedule compaction (prune redundant deliveries + shift\n\
         transmissions earlier, to a fixed point):\n{}\n\
         ConcurrentUpDown leaves essentially nothing on the table; Simple's\n\
         serialized phases compact dramatically (toward UpDown's eager overlap).\n",
        t.render()
    )
}

/// E23 — knowledge curves: the round-by-round fraction of (processor,
/// message) pairs known, per algorithm, rendered as sparklines. Shows
/// *where* each algorithm spends its rounds: ConcurrentUpDown climbs
/// steadily from round one; Simple is flat while everything funnels
/// through the root, then vertical.
pub fn exp_curves() -> String {
    exp_curves_full().0
}

/// [`exp_curves`] plus the machine-readable payload written to
/// `BENCH_curves.json`: per family/algorithm, the probe-derived coverage
/// curve and per-round sent/fan-out series.
pub fn exp_curves_full() -> (String, gossip_telemetry::Value) {
    use crate::report::obj;
    use gossip_model::{render_sparkline, Simulator};
    use gossip_telemetry::Value;
    let mut out = String::from(
        "Knowledge curves (fraction of (processor, message) pairs known per round):\n\n",
    );
    let mut entries = Vec::new();
    for &family in [Family::BinaryTree, Family::Path, Family::Star].iter() {
        let g = family.instance(24, 7);
        out.push_str(&format!("{} (n = {}):\n", family.name(), g.n()));
        for alg in [
            Algorithm::ConcurrentUpDown,
            Algorithm::UpDown,
            Algorithm::Simple,
        ] {
            let plan = GossipPlanner::new(&g)
                .unwrap()
                .algorithm(alg)
                .plan()
                .unwrap();
            // The simulator's per-round probes are the single source of
            // truth for knowledge curves (no separate counting pass).
            let mut sim =
                Simulator::with_origins(&g, CommModel::Multicast, &plan.origin_of_message).unwrap();
            let initial_coverage = sim.coverage();
            let (_, probes) = sim.run_probed(&plan.schedule).unwrap();
            let mut curve = vec![initial_coverage];
            curve.extend(probes.iter().map(|p| p.coverage));
            assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
            out.push_str(&format!(
                "  {:<18} |{}| {} rounds\n",
                alg.name(),
                render_sparkline(&curve),
                plan.makespan()
            ));
            entries.push(obj(vec![
                ("family", Value::String(family.name().to_string())),
                ("algorithm", Value::String(alg.name().to_string())),
                ("n", Value::from_u64(g.n() as u64)),
                ("makespan", Value::from_u64(plan.makespan() as u64)),
                (
                    "coverage",
                    Value::Array(curve.iter().map(|&c| Value::from_f64(c)).collect()),
                ),
                (
                    "sent_per_round",
                    Value::Array(
                        probes
                            .iter()
                            .map(|p| Value::from_u64(p.sent as u64))
                            .collect(),
                    ),
                ),
                (
                    "max_fanout_per_round",
                    Value::Array(
                        probes
                            .iter()
                            .map(|p| Value::from_u64(p.max_fanout as u64))
                            .collect(),
                    ),
                ),
            ]));
        }
        out.push('\n');
    }
    out.push_str(
        "one glyph per round; ConcurrentUpDown's lookahead keeps information moving\n\
         every round, while Simple's two-phase structure shows a long shallow ramp\n\
         (up phase: only the root-path learns) before the steep broadcast phase.\n",
    );
    (
        out,
        obj(vec![
            ("experiment", Value::String("curves".into())),
            ("entries", Value::Array(entries)),
        ]),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn curves_report_builds() {
        let r = super::exp_curves();
        assert!(r.contains("rounds"));
    }

    #[test]
    fn broadcast_report_builds() {
        assert!(super::exp_broadcast().contains("eccentricity"));
    }

    #[test]
    fn models_report_builds() {
        assert!(super::exp_models().contains("tel/mc"));
    }
}
