//! E1–E4: regenerate the paper's Tables 1–4.

use gossip_core::{concurrent_updown, tree_origins};
use gossip_model::{simulate_gossip, vertex_trace};
use gossip_workloads::fig5_tree;

/// Computes the ConcurrentUpDown schedule on the Fig 5 tree and renders the
/// four published per-vertex tables (vertices with messages 0, 1, 4, 8).
pub fn exp_tables() -> String {
    let tree = fig5_tree();
    let schedule = concurrent_updown(&tree);
    let g = tree.to_graph();
    let outcome = simulate_gossip(&g, &schedule, &tree_origins(&tree)).expect("valid");
    assert!(outcome.complete);

    let mut out = String::new();
    out.push_str(&format!(
        "Fig 5 tree: n = 16, height r = 3; schedule length {} = n + r\n\n",
        schedule.makespan()
    ));
    for (table, vertex) in [(1, 0usize), (2, 1), (3, 4), (4, 8)] {
        out.push_str(&format!(
            "--- Table {table}: vertex with message {vertex} ---\n"
        ));
        out.push_str(&vertex_trace(&schedule, &tree, vertex).render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_the_four_tables() {
        let r = super::exp_tables();
        for t in 1..=4 {
            assert!(r.contains(&format!("Table {t}")));
        }
        assert!(r.contains("19 = n + r"));
    }
}
