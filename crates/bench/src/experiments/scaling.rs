//! E15 (textual companion) — wall-clock scaling of the pipeline stages,
//! confirming the paper's §4 complexity claims with real timings.

use crate::table::TextTable;
use gossip_core::concurrent_updown;
use gossip_graph::{
    min_depth_spanning_tree, min_depth_spanning_tree_parallel, ChildOrder,
};
use gossip_model::simulate_gossip;
use gossip_workloads::random_connected;
use std::time::Instant;

fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Times the three pipeline stages (tree construction sequential and
/// parallel, schedule generation, full-model simulation) across sizes.
pub fn exp_scaling() -> String {
    let mut t = TextTable::new(vec![
        "n", "m", "tree (seq) ms", "tree (par) ms", "schedule ms", "simulate ms",
        "schedule events",
    ]);
    for &n in &[64usize, 128, 256, 512] {
        let g = random_connected(n, 0.04, 77);
        let t0 = Instant::now();
        let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        let seq = t0.elapsed();
        let t1 = Instant::now();
        let tree_p = min_depth_spanning_tree_parallel(&g, ChildOrder::ById).unwrap();
        let par = t1.elapsed();
        assert_eq!(tree, tree_p);
        let t2 = Instant::now();
        let schedule = concurrent_updown(&tree);
        let gen = t2.elapsed();
        let origins = gossip_core::tree_origins(&tree);
        let t3 = Instant::now();
        let o = simulate_gossip(&g, &schedule, &origins).unwrap();
        let sim = t3.elapsed();
        assert!(o.complete);
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            ms(seq),
            ms(par),
            ms(gen),
            ms(sim),
            schedule.stats().deliveries.to_string(),
        ]);
    }
    format!(
        "Wall-clock scaling of the pipeline stages (one run each; see `cargo bench`\n\
         for statistically sound numbers):\n{}\n\
         tree construction is the O(mn) term (the rayon sweep tracks core count);\n\
         schedule generation and simulation scale with the Θ(n²) schedule size,\n\
         i.e. O(1) work per delivered message — the paper's \"all other steps take\n\
         O(n) time\" per processor.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaling_report_builds() {
        // Use the real function but trust the small sizes to finish fast.
        let r = super::exp_scaling();
        assert!(r.contains("schedule events"));
    }
}
