//! E15 (textual companion) — wall-clock scaling of the pipeline stages,
//! confirming the paper's §4 complexity claims with real timings.
//!
//! Every size carries an explicit wall-clock budget and a [`SizeMode`]
//! saying how much of the pipeline runs there:
//!
//! - [`SizeMode::Full`] (n ≤ 8192): the reference pipeline end to end,
//!   plus the fast planner for the before/after `plan (fast) ms` column;
//! - [`SizeMode::FastFull`] (16384, 32768): the fast planner end to end
//!   (fast tree sweep, CSR-direct generation, word-parallel validate,
//!   bitset kernel replay). The reference generator's Vec-of-Vec schedule
//!   is Θ(n²) allocations and would swamp any sane budget here;
//! - [`SizeMode::PlanOnly`] (65536, 100000): fast tree + label arena only.
//!   Gossiping delivers exactly n(n−1) messages, so past n = 65536 the
//!   flat schedule's delivery count overflows its u32 CSR offsets — and
//!   even at 65536 the destination arena alone is ~17 GB.
//!
//! Before a size runs, its cost is predicted from the *measured trend of
//! its own mode*: the log-log slope of the last two completed sizes in
//! that mode (clamped to [1, 3]), falling back to quadratic when only one
//! point exists. Earlier revisions reused the reference pipeline's
//! quadratic base for every row, which mispredicted the near-linear
//! plan-only tail and shed sizes that would have fit. Sizes predicted —
//! or observed — to blow their budget are *skipped and reported as rows
//! in the artifact*, never silently trusted to finish; an overrun sheds
//! only the tail of its own mode.

use crate::table::TextTable;
use gossip_graph::{
    min_depth_spanning_tree_fast_recorded, min_depth_spanning_tree_parallel, ChildOrder,
};
use gossip_model::{CommModel, FlatSchedule, SimKernel};
use gossip_workloads::random_connected;
use std::time::Instant;

fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// How much of the pipeline a sweep size exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeMode {
    /// Reference pipeline end to end, fast planner alongside.
    Full,
    /// Fast planner end to end (plan + validate + kernel replay).
    FastFull,
    /// Fast tree + label arena only (the schedule cannot be materialized:
    /// u32 CSR offsets and memory).
    PlanOnly,
}

impl SizeMode {
    fn name(self) -> &'static str {
        match self {
            SizeMode::Full => "full",
            SizeMode::FastFull => "fast-full",
            SizeMode::PlanOnly => "plan-only",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One entry of the scaling sweep: a size, what runs there, and the
/// wall-clock budget it must be predicted (and observed) to fit.
#[derive(Debug, Clone, Copy)]
pub struct SizeBudget {
    /// Number of processors.
    pub n: usize,
    /// Budget for the whole size (all stages), in milliseconds.
    pub budget_ms: f64,
    /// Which pipeline variant runs at this size.
    pub mode: SizeMode,
}

const fn full(n: usize, budget_ms: f64) -> SizeBudget {
    SizeBudget {
        n,
        budget_ms,
        mode: SizeMode::Full,
    }
}

/// The default sweep: doubling sizes to n = 8192 under the reference
/// pipeline, then the fast planner to 32768 and plan-only to 100000.
/// Budgets are sized for a release build on one modest core; debug builds
/// and slow runners shed the large tail as explicit `skipped` rows
/// instead of stalling.
pub const DEFAULT_SIZES: &[SizeBudget] = &[
    full(64, 5_000.0),
    full(128, 5_000.0),
    full(256, 10_000.0),
    full(512, 10_000.0),
    full(1024, 20_000.0),
    full(2048, 30_000.0),
    full(4096, 60_000.0),
    full(8192, 120_000.0),
    SizeBudget {
        n: 16384,
        budget_ms: 60_000.0,
        mode: SizeMode::FastFull,
    },
    SizeBudget {
        n: 32768,
        budget_ms: 180_000.0,
        mode: SizeMode::FastFull,
    },
    SizeBudget {
        n: 65536,
        budget_ms: 120_000.0,
        mode: SizeMode::PlanOnly,
    },
    SizeBudget {
        n: 100_000,
        budget_ms: 180_000.0,
        mode: SizeMode::PlanOnly,
    },
];

/// Per-mode cost history: the last two completed sizes, from which the
/// next size's cost is extrapolated with the measured log-log slope.
#[derive(Debug, Clone, Copy, Default)]
struct Trend {
    prev: Option<(f64, f64)>,
    last: Option<(f64, f64)>,
}

impl Trend {
    fn push(&mut self, n: f64, cost_ms: f64) {
        self.prev = self.last;
        self.last = Some((n, cost_ms));
    }

    /// Predicted cost at `n` and the exponent used. One data point falls
    /// back to the quadratic worst case (Θ(n²) deliveries dominate);
    /// two points use the measured slope, clamped to [1, 3] so a noisy
    /// small-size pair can neither flat-line nor explode the forecast.
    fn predict(&self, n: f64) -> Option<(f64, f64)> {
        let (n2, ms2) = self.last?;
        let alpha = match self.prev {
            Some((n1, ms1)) if n2 > n1 && ms1 > 0.0 && ms2 > 0.0 => {
                ((ms2 / ms1).ln() / (n2 / n1).ln()).clamp(1.0, 3.0)
            }
            _ => 2.0,
        };
        Some((ms2 * (n / n2).powf(alpha), alpha))
    }
}

/// Times the pipeline stages (tree construction sequential and parallel,
/// schedule generation, oracle simulation, kernel replay, and the fast
/// planner) across sizes.
pub fn exp_scaling() -> String {
    exp_scaling_full().0
}

/// [`exp_scaling`] plus the machine-readable payload written to
/// `BENCH_scaling.json`: per-size stage timings, per-phase profiler
/// attribution (`plan_tree_ms` / `plan_label_ms` / `plan_generate_ms` /
/// `plan_flatten_ms` plus the fast planner's `plan_tree_fast_ms` /
/// `plan_label_flat_ms` / `plan_generate_csr_ms` / `plan_peak_bytes`),
/// explicit rows for any budget-skipped sizes, and a full telemetry
/// snapshot (BFS-sweep histograms, per-stage spans) from a recorded run.
pub fn exp_scaling_full() -> (String, gossip_telemetry::Value) {
    exp_scaling_full_with(DEFAULT_SIZES)
}

/// [`exp_scaling_full`] over an explicit size/budget list (the default
/// sweep is [`DEFAULT_SIZES`]).
pub fn exp_scaling_full_with(sizes: &[SizeBudget]) -> (String, gossip_telemetry::Value) {
    use crate::report::obj;
    use gossip_telemetry::{MetricsRecorder, Value};
    let mut t = TextTable::new(vec![
        "n",
        "m",
        "mode",
        "tree (seq) ms",
        "tree (par) ms",
        "schedule ms",
        "simulate ms",
        "kernel ms",
        "plan (fast) ms",
        "schedule events",
    ]);
    let mut rows = Vec::new();
    let mut skipped_lines = Vec::new();
    let recorder = MetricsRecorder::new();
    // Per-mode cost trends and overrun flags: a Full-pipeline overrun must
    // not shed the fast tail, whose cost regime it says nothing about.
    let mut trends = [Trend::default(); 3];
    let mut overrun: [Option<usize>; 3] = [None; 3];
    for &SizeBudget { n, budget_ms, mode } in sizes {
        let predicted = trends[mode.index()].predict(n as f64);
        let skip_reason = if let Some(bad_n) = overrun[mode.index()] {
            Some(format!(
                "size {bad_n} ({}) already exceeded its budget",
                mode.name()
            ))
        } else {
            predicted
                .filter(|&(p, _)| p > budget_ms)
                .map(|(pred, alpha)| {
                    format!(
                        "predicted {pred:.0} ms (measured n^{alpha:.2} trend) \
                         exceeds budget {budget_ms:.0} ms"
                    )
                })
        };
        if let Some(reason) = skip_reason {
            skipped_lines.push(format!("n = {n} ({}): skipped, {reason}", mode.name()));
            rows.push(obj(vec![
                ("n", Value::from_u64(n as u64)),
                ("mode", Value::String(mode.name().into())),
                ("skipped", Value::Bool(true)),
                ("budget_ms", Value::from_f64(budget_ms)),
                (
                    "predicted_cost_ms",
                    Value::from_f64(predicted.map_or(0.0, |(p, _)| p)),
                ),
                (
                    "predictor_alpha",
                    Value::from_f64(predicted.map_or(0.0, |(_, a)| a)),
                ),
                ("reason", Value::String(reason)),
            ]));
            continue;
        }
        let size_start = Instant::now();
        // Keep m ∝ n on the large tail so the tree sweep stays O(n²)
        // alongside the schedule; p = 0.04 below n = 512 matches the
        // historical artifact rows.
        let p = (16.0 / n as f64).min(0.04);
        let g = random_connected(n, p, 77);
        // The phase profiler runs across the whole size so the artifact
        // rows carry per-phase attribution next to the stopwatch timings.
        // The reference phases ("tree", "label", "generate", "flatten")
        // and the fast phases ("tree_fast", "label_flat", "generate_csr")
        // have disjoint names, so nothing double-counts.
        let profiler = gossip_telemetry::profile::Profiler::begin();
        let mut cells: Vec<String> = vec![n.to_string(), g.m().to_string(), mode.name().into()];
        let mut fields: Vec<(&str, Value)> = vec![
            ("n", Value::from_u64(n as u64)),
            ("m", Value::from_u64(g.m() as u64)),
            ("mode", Value::String(mode.name().into())),
        ];
        match mode {
            SizeMode::Full => {
                let t0 = Instant::now();
                let tree =
                    gossip_graph::min_depth_spanning_tree_recorded(&g, ChildOrder::ById, &recorder)
                        .unwrap();
                let seq = t0.elapsed();
                let t1 = Instant::now();
                let tree_p = min_depth_spanning_tree_parallel(&g, ChildOrder::ById).unwrap();
                let par = t1.elapsed();
                assert_eq!(tree, tree_p);
                let t2 = Instant::now();
                let schedule = gossip_core::concurrent_updown_recorded(&tree, &recorder);
                let gen = t2.elapsed();
                let origins = gossip_core::tree_origins(&tree);
                let t3 = Instant::now();
                let mut sim = gossip_model::Simulator::with_origins(
                    &g,
                    gossip_model::CommModel::Multicast,
                    &origins,
                )
                .unwrap();
                let o = sim.run_recorded(&schedule, &recorder).unwrap();
                let simt = t3.elapsed();
                assert!(o.complete);
                let t4 = Instant::now();
                let flat = FlatSchedule::from_schedule(&schedule);
                flat.validate(&g, CommModel::Multicast, origins.len())
                    .unwrap();
                let mut kernel =
                    SimKernel::with_origins(&g, CommModel::Multicast, &origins).unwrap();
                let ko = kernel.run_prevalidated(&flat).unwrap();
                let kernelt = t4.elapsed();
                assert!(ko.complete);
                assert_eq!(ko.completion_time, o.completion_time);
                // The fast planner on the same graph: the before/after
                // column. Equal tree heights always; byte-identical CSR
                // whenever the root tie-break agrees.
                let t5 = Instant::now();
                let tree_f =
                    min_depth_spanning_tree_fast_recorded(&g, ChildOrder::ById, &recorder).unwrap();
                let flat_f = gossip_core::concurrent_updown_flat_recorded(&tree_f, &recorder);
                flat_f
                    .validate(&g, CommModel::Multicast, origins.len())
                    .unwrap();
                let fast = t5.elapsed();
                assert_eq!(tree_f.height(), tree.height());
                assert_eq!(flat_f.rounds(), flat.rounds());
                if tree_f == tree {
                    assert_eq!(flat_f.digest(), flat.digest());
                }
                cells.extend([
                    ms(seq),
                    ms(par),
                    ms(gen),
                    ms(simt),
                    ms(kernelt),
                    ms(fast),
                    schedule.stats().deliveries.to_string(),
                ]);
                fields.extend([
                    ("tree_seq_ms", Value::from_f64(seq.as_secs_f64() * 1e3)),
                    ("tree_par_ms", Value::from_f64(par.as_secs_f64() * 1e3)),
                    ("schedule_ms", Value::from_f64(gen.as_secs_f64() * 1e3)),
                    ("simulate_ms", Value::from_f64(simt.as_secs_f64() * 1e3)),
                    (
                        "kernel_sim_ms",
                        Value::from_f64(kernelt.as_secs_f64() * 1e3),
                    ),
                    ("plan_fast_ms", Value::from_f64(fast.as_secs_f64() * 1e3)),
                    (
                        "deliveries",
                        Value::from_u64(schedule.stats().deliveries as u64),
                    ),
                ]);
            }
            SizeMode::FastFull => {
                let t0 = Instant::now();
                let tree =
                    min_depth_spanning_tree_fast_recorded(&g, ChildOrder::ById, &recorder).unwrap();
                let flat = gossip_core::concurrent_updown_flat_recorded(&tree, &recorder);
                let origins = gossip_core::tree_origins(&tree);
                flat.validate(&g, CommModel::Multicast, origins.len())
                    .unwrap();
                let fast = t0.elapsed();
                let t1 = Instant::now();
                let mut kernel =
                    SimKernel::with_origins(&g, CommModel::Multicast, &origins).unwrap();
                let ko = kernel.run_prevalidated(&flat).unwrap();
                let kernelt = t1.elapsed();
                assert!(ko.complete);
                cells.extend([
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    ms(kernelt),
                    ms(fast),
                    flat.deliveries().to_string(),
                ]);
                fields.extend([
                    (
                        "kernel_sim_ms",
                        Value::from_f64(kernelt.as_secs_f64() * 1e3),
                    ),
                    ("plan_fast_ms", Value::from_f64(fast.as_secs_f64() * 1e3)),
                    ("deliveries", Value::from_u64(flat.deliveries() as u64)),
                ]);
            }
            SizeMode::PlanOnly => {
                let t0 = Instant::now();
                let tree =
                    min_depth_spanning_tree_fast_recorded(&g, ChildOrder::ById, &recorder).unwrap();
                let labels = gossip_core::FlatLabels::new(&tree);
                let fast = t0.elapsed();
                assert_eq!(labels.n(), n);
                let why = if (n as u64) * (n as u64 - 1) >= u32::MAX as u64 {
                    "n(n-1) deliveries overflow u32 CSR offsets"
                } else {
                    "destination arena alone exceeds sweep memory budget"
                };
                cells.extend([
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    ms(fast),
                    format!("— ({why})"),
                ]);
                fields.extend([
                    ("plan_fast_ms", Value::from_f64(fast.as_secs_f64() * 1e3)),
                    ("schedule_skipped_reason", Value::String(why.into())),
                ]);
            }
        }
        let profile = profiler.finish();
        let elapsed_ms = size_start.elapsed().as_secs_f64() * 1e3;
        let within_budget = elapsed_ms <= budget_ms;
        if !within_budget {
            overrun[mode.index()] = Some(n);
            skipped_lines.push(format!(
                "n = {n} ({}): ran in {elapsed_ms:.0} ms, OVER its {budget_ms:.0} ms budget",
                mode.name()
            ));
        }
        trends[mode.index()].push(n as f64, elapsed_ms);
        t.row(cells);
        // Profiler attribution of the same size: the planner phases
        // (bench-diff gates these like any other wall field) plus the
        // peak live bytes (0 unless the prof-alloc allocator is
        // registered in the binary).
        for (field, phase) in [
            ("plan_tree_ms", "tree"),
            ("plan_label_ms", "label"),
            ("plan_generate_ms", "generate"),
            ("plan_flatten_ms", "flatten"),
            ("plan_tree_fast_ms", "tree_fast"),
            ("plan_label_flat_ms", "label_flat"),
            ("plan_generate_csr_ms", "generate_csr"),
        ] {
            if profile.named_total_ms(phase) > 0.0 || mode == SizeMode::Full {
                fields.push((field, Value::from_f64(profile.named_total_ms(phase))));
            }
        }
        fields.extend([
            ("plan_peak_bytes", Value::from_u64(profile.peak_bytes())),
            ("budget_ms", Value::from_f64(budget_ms)),
            ("within_budget", Value::Bool(within_budget)),
        ]);
        rows.push(obj(fields));
    }
    let payload = obj(vec![
        ("experiment", Value::String("scaling".into())),
        ("rows", Value::Array(rows)),
        ("telemetry", recorder.snapshot()),
    ]);
    let skipped_report = if skipped_lines.is_empty() {
        "all sizes ran within budget.\n".to_string()
    } else {
        format!("budget decisions:\n  {}\n", skipped_lines.join("\n  "))
    };
    let report = format!(
        "Wall-clock scaling of the pipeline stages (one run each; see `cargo bench`\n\
         for statistically sound numbers):\n{}\n{}\
         tree construction is the O(mn) term (the rayon sweep tracks core count);\n\
         schedule generation and simulation scale with the Θ(n²) schedule size,\n\
         i.e. O(1) work per delivered message — the paper's \"all other steps take\n\
         O(n) time\" per processor. `kernel ms` is the flat-CSR bitset replay\n\
         (build + word-parallel validate + run) of the same schedule. `plan\n\
         (fast) ms` is the fast planner (pruned multi-source tree sweep +\n\
         CSR-direct generation + validate); `fast-full` rows run only it, and\n\
         `plan-only` rows stop after tree + labels — the schedule itself is\n\
         unrepresentable there (u32 CSR offsets / memory).\n",
        t.render(),
        skipped_report
    );
    (report, payload)
}

#[cfg(test)]
mod tests {
    use super::{exp_scaling_full_with, SizeBudget, SizeMode, Trend};

    fn full(n: usize, budget_ms: f64) -> SizeBudget {
        SizeBudget {
            n,
            budget_ms,
            mode: SizeMode::Full,
        }
    }

    #[test]
    fn scaling_report_builds() {
        // The real pipeline, but on sizes a debug build finishes fast —
        // the default sweep's large tail belongs to release binaries.
        let (report, payload) = exp_scaling_full_with(&[full(48, 120_000.0), full(64, 120_000.0)]);
        assert!(report.contains("schedule events"));
        let rows = payload.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].get("kernel_sim_ms").is_some());
        // The phase-attribution columns ride along and carry real time:
        // the profiled "tree" phase is the sequential sweep measured by
        // tree_seq_ms, so it can never exceed that stopwatch by much.
        for row in rows {
            let tree = row.get("plan_tree_ms").and_then(|v| v.as_f64()).unwrap();
            let seq = row.get("tree_seq_ms").and_then(|v| v.as_f64()).unwrap();
            assert!(
                tree > 0.0 && tree <= seq * 1.5 + 1.0,
                "tree {tree} vs {seq}"
            );
            assert!(
                row.get("plan_generate_ms")
                    .and_then(|v| v.as_f64())
                    .unwrap()
                    > 0.0
            );
            assert!(row.get("plan_label_ms").is_some());
            assert!(row.get("plan_flatten_ms").is_some());
            assert!(row.get("plan_peak_bytes").is_some());
            // Full rows also time the fast planner and attribute its
            // phases for the before/after comparison.
            assert!(row.get("plan_fast_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
            assert!(row.get("plan_generate_csr_ms").is_some());
            assert!(row.get("plan_tree_fast_ms").is_some());
        }
    }

    #[test]
    fn fast_full_and_plan_only_rows_run_the_fast_planner() {
        let (report, payload) = exp_scaling_full_with(&[
            SizeBudget {
                n: 48,
                budget_ms: 120_000.0,
                mode: SizeMode::FastFull,
            },
            SizeBudget {
                n: 64,
                budget_ms: 120_000.0,
                mode: SizeMode::PlanOnly,
            },
        ]);
        assert!(report.contains("fast-full"));
        assert!(report.contains("plan-only"));
        let rows = payload.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        // FastFull: fast plan + kernel replay, no reference columns.
        assert!(
            rows[0]
                .get("plan_fast_ms")
                .and_then(|v| v.as_f64())
                .unwrap()
                > 0.0
        );
        assert!(rows[0].get("kernel_sim_ms").is_some());
        assert!(rows[0].get("schedule_ms").is_none());
        assert!(rows[0].get("deliveries").and_then(|v| v.as_u64()).unwrap() > 0);
        // PlanOnly: tree + labels only, with the explicit reason.
        assert!(
            rows[1]
                .get("plan_fast_ms")
                .and_then(|v| v.as_f64())
                .unwrap()
                > 0.0
        );
        assert!(rows[1].get("kernel_sim_ms").is_none());
        assert!(rows[1]
            .get("schedule_skipped_reason")
            .and_then(|v| v.as_str())
            .is_some());
    }

    #[test]
    fn over_budget_sizes_are_skipped_and_reported() {
        // A zero-ms budget on the tail forces the prediction to trip; the
        // size must appear in the artifact as a skipped row, not hang.
        let (report, payload) =
            exp_scaling_full_with(&[full(48, 120_000.0), full(4096, 0.001), full(8192, 0.001)]);
        assert!(report.contains("skipped"));
        let rows = payload.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].get("skipped").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(rows[2].get("skipped").and_then(|v| v.as_bool()), Some(true));
        assert!(rows[1].get("predicted_cost_ms").is_some());
        assert!(rows[1].get("predictor_alpha").is_some());
    }

    #[test]
    fn first_size_always_runs_and_overruns_shed_the_tail() {
        // The first size has no prediction base, so it runs even under an
        // impossible budget — and its observed overrun sheds what follows.
        let (report, payload) = exp_scaling_full_with(&[full(48, 0.001), full(64, 120_000.0)]);
        assert!(report.contains("OVER its"));
        let rows = payload.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(
            rows[0].get("within_budget").and_then(|v| v.as_bool()),
            Some(false)
        );
        assert_eq!(rows[1].get("skipped").and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn overrun_sheds_only_its_own_mode() {
        // A Full overrun says nothing about the fast planner's cost
        // regime: the fast tail still runs (it is that mode's first size,
        // so it has no prediction base either).
        let (_, payload) = exp_scaling_full_with(&[
            full(48, 0.001),
            SizeBudget {
                n: 64,
                budget_ms: 120_000.0,
                mode: SizeMode::PlanOnly,
            },
        ]);
        let rows = payload.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(
            rows[0].get("within_budget").and_then(|v| v.as_bool()),
            Some(false)
        );
        assert!(rows[1].get("skipped").is_none());
        assert!(rows[1].get("plan_fast_ms").is_some());
    }

    #[test]
    fn trend_predictor_uses_measured_slope() {
        let mut t = Trend::default();
        assert!(t.predict(100.0).is_none());
        // One point: quadratic fallback.
        t.push(100.0, 10.0);
        let (p, a) = t.predict(200.0).unwrap();
        assert_eq!(a, 2.0);
        assert!((p - 40.0).abs() < 1e-9, "{p}");
        // Two points on a near-linear trend: the measured slope takes
        // over and the forecast stops overshooting quadratically.
        t.push(200.0, 20.0);
        let (p, a) = t.predict(400.0).unwrap();
        assert!((a - 1.0).abs() < 1e-9, "{a}");
        assert!((p - 40.0).abs() < 1e-6, "{p}");
        // A super-cubic pair clamps at 3.
        let mut t = Trend::default();
        t.push(100.0, 1.0);
        t.push(200.0, 100.0);
        let (_, a) = t.predict(400.0).unwrap();
        assert_eq!(a, 3.0);
    }
}
