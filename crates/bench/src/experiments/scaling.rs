//! E15 (textual companion) — wall-clock scaling of the pipeline stages,
//! confirming the paper's §4 complexity claims with real timings.
//!
//! Every size carries an explicit wall-clock budget. Before a size runs,
//! its cost is predicted from the last completed size (quadratic in `n`:
//! the Θ(n²) schedule dominates, and the O(mn) tree sweep matches it at
//! m ∝ n); sizes predicted — or observed — to blow their budget are
//! *skipped and reported as rows in the artifact*, never silently trusted
//! to finish. That keeps the sweep honest up to n = 8192 without ever
//! hanging a CI runner.

use crate::table::TextTable;
use gossip_graph::{min_depth_spanning_tree_parallel, ChildOrder};
use gossip_model::{CommModel, FlatSchedule, SimKernel};
use gossip_workloads::random_connected;
use std::time::Instant;

fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// One entry of the scaling sweep: a size and the wall-clock budget it
/// must be predicted (and observed) to fit.
#[derive(Debug, Clone, Copy)]
pub struct SizeBudget {
    /// Number of processors.
    pub n: usize,
    /// Budget for the whole size (all stages), in milliseconds.
    pub budget_ms: f64,
}

/// The default sweep: doubling sizes to n = 8192. Budgets are sized for a
/// release build on one modest core; debug builds and slow runners shed
/// the large tail as explicit `skipped` rows instead of stalling.
pub const DEFAULT_SIZES: &[SizeBudget] = &[
    SizeBudget {
        n: 64,
        budget_ms: 5_000.0,
    },
    SizeBudget {
        n: 128,
        budget_ms: 5_000.0,
    },
    SizeBudget {
        n: 256,
        budget_ms: 10_000.0,
    },
    SizeBudget {
        n: 512,
        budget_ms: 10_000.0,
    },
    SizeBudget {
        n: 1024,
        budget_ms: 20_000.0,
    },
    SizeBudget {
        n: 2048,
        budget_ms: 30_000.0,
    },
    SizeBudget {
        n: 4096,
        budget_ms: 60_000.0,
    },
    SizeBudget {
        n: 8192,
        budget_ms: 120_000.0,
    },
];

/// Times the pipeline stages (tree construction sequential and parallel,
/// schedule generation, oracle simulation, kernel replay) across sizes.
pub fn exp_scaling() -> String {
    exp_scaling_full().0
}

/// [`exp_scaling`] plus the machine-readable payload written to
/// `BENCH_scaling.json`: per-size stage timings, per-phase profiler
/// attribution (`plan_tree_ms` / `plan_label_ms` / `plan_generate_ms` /
/// `plan_flatten_ms` / `plan_peak_bytes`), explicit rows for any
/// budget-skipped sizes, and a full telemetry snapshot (BFS-sweep
/// histograms, per-stage spans) from a recorded run.
pub fn exp_scaling_full() -> (String, gossip_telemetry::Value) {
    exp_scaling_full_with(DEFAULT_SIZES)
}

/// [`exp_scaling_full`] over an explicit size/budget list (the default
/// sweep is [`DEFAULT_SIZES`]).
pub fn exp_scaling_full_with(sizes: &[SizeBudget]) -> (String, gossip_telemetry::Value) {
    use crate::report::obj;
    use gossip_telemetry::{MetricsRecorder, Value};
    let mut t = TextTable::new(vec![
        "n",
        "m",
        "tree (seq) ms",
        "tree (par) ms",
        "schedule ms",
        "simulate ms",
        "kernel ms",
        "schedule events",
    ]);
    let mut rows = Vec::new();
    let mut skipped_lines = Vec::new();
    let recorder = MetricsRecorder::new();
    // Last completed size and its wall time, the base for predictions.
    let mut base: Option<(usize, f64)> = None;
    // Set when a size overruns its own budget: everything larger is shed.
    let mut overrun: Option<usize> = None;
    for &SizeBudget { n, budget_ms } in sizes {
        // Quadratic prediction from the last completed size; an earlier
        // observed overrun sheds the whole tail regardless.
        let predicted = base.map(|(base_n, base_ms)| base_ms * (n as f64 / base_n as f64).powi(2));
        let skip_reason = if let Some(bad_n) = overrun {
            Some(format!("size {bad_n} already exceeded its budget"))
        } else {
            predicted
                .filter(|&p| p > budget_ms)
                .map(|pred| format!("predicted {pred:.0} ms exceeds budget {budget_ms:.0} ms"))
        };
        if let Some(reason) = skip_reason {
            skipped_lines.push(format!("n = {n}: skipped, {reason}"));
            rows.push(obj(vec![
                ("n", Value::from_u64(n as u64)),
                ("skipped", Value::Bool(true)),
                ("budget_ms", Value::from_f64(budget_ms)),
                (
                    "predicted_cost_ms",
                    Value::from_f64(predicted.unwrap_or(0.0)),
                ),
                ("reason", Value::String(reason)),
            ]));
            continue;
        }
        let size_start = Instant::now();
        // Keep m ∝ n on the large tail so the tree sweep stays O(n²)
        // alongside the schedule; p = 0.04 below n = 512 matches the
        // historical artifact rows.
        let p = (16.0 / n as f64).min(0.04);
        let g = random_connected(n, p, 77);
        // The phase profiler runs across the whole size so the artifact
        // rows carry per-phase attribution (tree / label / generate /
        // flatten) next to the stopwatch timings; the sequential sweep is
        // the recorded one ("tree"), the parallel sweep records under the
        // distinct "tree_par" name, so no double counting.
        let profiler = gossip_telemetry::profile::Profiler::begin();
        let t0 = Instant::now();
        let tree = gossip_graph::min_depth_spanning_tree_recorded(&g, ChildOrder::ById, &recorder)
            .unwrap();
        let seq = t0.elapsed();
        let t1 = Instant::now();
        let tree_p = min_depth_spanning_tree_parallel(&g, ChildOrder::ById).unwrap();
        let par = t1.elapsed();
        assert_eq!(tree, tree_p);
        let t2 = Instant::now();
        let schedule = gossip_core::concurrent_updown_recorded(&tree, &recorder);
        let gen = t2.elapsed();
        let origins = gossip_core::tree_origins(&tree);
        let t3 = Instant::now();
        let mut sim =
            gossip_model::Simulator::with_origins(&g, gossip_model::CommModel::Multicast, &origins)
                .unwrap();
        let o = sim.run_recorded(&schedule, &recorder).unwrap();
        let simt = t3.elapsed();
        assert!(o.complete);
        let t4 = Instant::now();
        let flat = FlatSchedule::from_schedule(&schedule);
        flat.validate(&g, CommModel::Multicast, origins.len())
            .unwrap();
        let mut kernel = SimKernel::with_origins(&g, CommModel::Multicast, &origins).unwrap();
        let ko = kernel.run_prevalidated(&flat).unwrap();
        let kernelt = t4.elapsed();
        let profile = profiler.finish();
        assert!(ko.complete);
        assert_eq!(ko.completion_time, o.completion_time);
        let elapsed_ms = size_start.elapsed().as_secs_f64() * 1e3;
        let within_budget = elapsed_ms <= budget_ms;
        if !within_budget {
            overrun = Some(n);
            skipped_lines.push(format!(
                "n = {n}: ran in {elapsed_ms:.0} ms, OVER its {budget_ms:.0} ms budget"
            ));
        }
        base = Some((n, elapsed_ms));
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            ms(seq),
            ms(par),
            ms(gen),
            ms(simt),
            ms(kernelt),
            schedule.stats().deliveries.to_string(),
        ]);
        rows.push(obj(vec![
            ("n", Value::from_u64(n as u64)),
            ("m", Value::from_u64(g.m() as u64)),
            ("tree_seq_ms", Value::from_f64(seq.as_secs_f64() * 1e3)),
            ("tree_par_ms", Value::from_f64(par.as_secs_f64() * 1e3)),
            ("schedule_ms", Value::from_f64(gen.as_secs_f64() * 1e3)),
            ("simulate_ms", Value::from_f64(simt.as_secs_f64() * 1e3)),
            (
                "kernel_sim_ms",
                Value::from_f64(kernelt.as_secs_f64() * 1e3),
            ),
            (
                "deliveries",
                Value::from_u64(schedule.stats().deliveries as u64),
            ),
            // Profiler attribution of the same size: the planner phases
            // (bench-diff gates these like any other wall field) plus the
            // peak live bytes (0 unless the prof-alloc allocator is
            // registered in the binary).
            (
                "plan_tree_ms",
                Value::from_f64(profile.named_total_ms("tree")),
            ),
            (
                "plan_label_ms",
                Value::from_f64(profile.named_total_ms("label")),
            ),
            (
                "plan_generate_ms",
                Value::from_f64(profile.named_total_ms("generate")),
            ),
            (
                "plan_flatten_ms",
                Value::from_f64(profile.named_total_ms("flatten")),
            ),
            ("plan_peak_bytes", Value::from_u64(profile.peak_bytes())),
            ("budget_ms", Value::from_f64(budget_ms)),
            ("within_budget", Value::Bool(within_budget)),
        ]));
    }
    let payload = obj(vec![
        ("experiment", Value::String("scaling".into())),
        ("rows", Value::Array(rows)),
        ("telemetry", recorder.snapshot()),
    ]);
    let skipped_report = if skipped_lines.is_empty() {
        "all sizes ran within budget.\n".to_string()
    } else {
        format!("budget decisions:\n  {}\n", skipped_lines.join("\n  "))
    };
    let report = format!(
        "Wall-clock scaling of the pipeline stages (one run each; see `cargo bench`\n\
         for statistically sound numbers):\n{}\n{}\
         tree construction is the O(mn) term (the rayon sweep tracks core count);\n\
         schedule generation and simulation scale with the Θ(n²) schedule size,\n\
         i.e. O(1) work per delivered message — the paper's \"all other steps take\n\
         O(n) time\" per processor. `kernel ms` is the flat-CSR bitset replay\n\
         (build + word-parallel validate + run) of the same schedule.\n",
        t.render(),
        skipped_report
    );
    (report, payload)
}

#[cfg(test)]
mod tests {
    use super::{exp_scaling_full_with, SizeBudget};

    #[test]
    fn scaling_report_builds() {
        // The real pipeline, but on sizes a debug build finishes fast —
        // the default sweep's large tail belongs to release binaries.
        let (report, payload) = exp_scaling_full_with(&[
            SizeBudget {
                n: 48,
                budget_ms: 120_000.0,
            },
            SizeBudget {
                n: 64,
                budget_ms: 120_000.0,
            },
        ]);
        assert!(report.contains("schedule events"));
        let rows = payload.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].get("kernel_sim_ms").is_some());
        // The phase-attribution columns ride along and carry real time:
        // the profiled "tree" phase is the sequential sweep measured by
        // tree_seq_ms, so it can never exceed that stopwatch by much.
        for row in rows {
            let tree = row.get("plan_tree_ms").and_then(|v| v.as_f64()).unwrap();
            let seq = row.get("tree_seq_ms").and_then(|v| v.as_f64()).unwrap();
            assert!(
                tree > 0.0 && tree <= seq * 1.5 + 1.0,
                "tree {tree} vs {seq}"
            );
            assert!(
                row.get("plan_generate_ms")
                    .and_then(|v| v.as_f64())
                    .unwrap()
                    > 0.0
            );
            assert!(row.get("plan_label_ms").is_some());
            assert!(row.get("plan_flatten_ms").is_some());
            assert!(row.get("plan_peak_bytes").is_some());
        }
    }

    #[test]
    fn over_budget_sizes_are_skipped_and_reported() {
        // A zero-ms budget on the tail forces the prediction to trip; the
        // size must appear in the artifact as a skipped row, not hang.
        let (report, payload) = exp_scaling_full_with(&[
            SizeBudget {
                n: 48,
                budget_ms: 120_000.0,
            },
            SizeBudget {
                n: 4096,
                budget_ms: 0.001,
            },
            SizeBudget {
                n: 8192,
                budget_ms: 0.001,
            },
        ]);
        assert!(report.contains("skipped"));
        let rows = payload.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].get("skipped").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(rows[2].get("skipped").and_then(|v| v.as_bool()), Some(true));
        assert!(rows[1].get("predicted_cost_ms").is_some());
    }

    #[test]
    fn first_size_always_runs_and_overruns_shed_the_tail() {
        // The first size has no prediction base, so it runs even under an
        // impossible budget — and its observed overrun sheds what follows.
        let (report, payload) = exp_scaling_full_with(&[
            SizeBudget {
                n: 48,
                budget_ms: 0.001,
            },
            SizeBudget {
                n: 64,
                budget_ms: 120_000.0,
            },
        ]);
        assert!(report.contains("OVER its"));
        let rows = payload.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(
            rows[0].get("within_budget").and_then(|v| v.as_bool()),
            Some(false)
        );
        assert_eq!(rows[1].get("skipped").and_then(|v| v.as_bool()), Some(true));
    }
}
