//! E15 (textual companion) — wall-clock scaling of the pipeline stages,
//! confirming the paper's §4 complexity claims with real timings.

use crate::table::TextTable;
use gossip_graph::{min_depth_spanning_tree_parallel, ChildOrder};
use gossip_workloads::random_connected;
use std::time::Instant;

fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Times the three pipeline stages (tree construction sequential and
/// parallel, schedule generation, full-model simulation) across sizes.
pub fn exp_scaling() -> String {
    exp_scaling_full().0
}

/// [`exp_scaling`] plus the machine-readable payload written to
/// `BENCH_scaling.json`: per-size stage timings and a full telemetry
/// snapshot (BFS-sweep histograms, per-stage spans) from a recorded run.
pub fn exp_scaling_full() -> (String, gossip_telemetry::Value) {
    use crate::report::obj;
    use gossip_telemetry::{MetricsRecorder, Value};
    let mut t = TextTable::new(vec![
        "n",
        "m",
        "tree (seq) ms",
        "tree (par) ms",
        "schedule ms",
        "simulate ms",
        "schedule events",
    ]);
    let mut rows = Vec::new();
    let recorder = MetricsRecorder::new();
    for &n in &[64usize, 128, 256, 512] {
        let g = random_connected(n, 0.04, 77);
        let t0 = Instant::now();
        let tree = gossip_graph::min_depth_spanning_tree_recorded(&g, ChildOrder::ById, &recorder)
            .unwrap();
        let seq = t0.elapsed();
        let t1 = Instant::now();
        let tree_p = min_depth_spanning_tree_parallel(&g, ChildOrder::ById).unwrap();
        let par = t1.elapsed();
        assert_eq!(tree, tree_p);
        let t2 = Instant::now();
        let schedule = gossip_core::concurrent_updown_recorded(&tree, &recorder);
        let gen = t2.elapsed();
        let origins = gossip_core::tree_origins(&tree);
        let t3 = Instant::now();
        let mut sim =
            gossip_model::Simulator::with_origins(&g, gossip_model::CommModel::Multicast, &origins)
                .unwrap();
        let o = sim.run_recorded(&schedule, &recorder).unwrap();
        let simt = t3.elapsed();
        assert!(o.complete);
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            ms(seq),
            ms(par),
            ms(gen),
            ms(simt),
            schedule.stats().deliveries.to_string(),
        ]);
        rows.push(obj(vec![
            ("n", Value::from_u64(n as u64)),
            ("m", Value::from_u64(g.m() as u64)),
            ("tree_seq_ms", Value::from_f64(seq.as_secs_f64() * 1e3)),
            ("tree_par_ms", Value::from_f64(par.as_secs_f64() * 1e3)),
            ("schedule_ms", Value::from_f64(gen.as_secs_f64() * 1e3)),
            ("simulate_ms", Value::from_f64(simt.as_secs_f64() * 1e3)),
            (
                "deliveries",
                Value::from_u64(schedule.stats().deliveries as u64),
            ),
        ]));
    }
    let payload = obj(vec![
        ("experiment", Value::String("scaling".into())),
        ("rows", Value::Array(rows)),
        ("telemetry", recorder.snapshot()),
    ]);
    let report = format!(
        "Wall-clock scaling of the pipeline stages (one run each; see `cargo bench`\n\
         for statistically sound numbers):\n{}\n\
         tree construction is the O(mn) term (the rayon sweep tracks core count);\n\
         schedule generation and simulation scale with the Θ(n²) schedule size,\n\
         i.e. O(1) work per delivered message — the paper's \"all other steps take\n\
         O(n) time\" per processor.\n",
        t.render()
    );
    (report, payload)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaling_report_builds() {
        // Use the real function but trust the small sizes to finish fast.
        let r = super::exp_scaling();
        assert!(r.contains("schedule events"));
    }
}
