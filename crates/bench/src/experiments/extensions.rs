//! E16–E18: the §4 extensions (weighted gossip, online execution) and the
//! exact-optimality study.

use crate::table::TextTable;
use gossip_core::{
    concurrent_updown, gossip_lower_bound, min_pipeline_period, optimal_gossip_time,
    pipelined_gossip, run_online, run_online_threaded, weighted_gossip, ExactResult, GossipPlanner,
};
use gossip_graph::{min_depth_spanning_tree, ChildOrder, Graph};
use gossip_model::{simulate_gossip, CommModel};
use gossip_workloads::{complete, path, petersen, ring, star, Family};

/// E16 — weighted gossiping: chain splitting turns `w_p`-message processors
/// into `w_p` virtual ones; the schedule length is `W + r'`.
pub fn exp_weighted() -> String {
    let mut t = TextTable::new(vec![
        "base tree",
        "weights",
        "W",
        "expanded height r'",
        "makespan",
        "W + r'",
        "ok",
    ]);
    let cases: Vec<(&str, Graph, Vec<usize>)> = vec![
        ("path-5", path(5), vec![1, 2, 3, 2, 1]),
        ("star-6", star(6), vec![3, 1, 1, 1, 1, 1]),
        ("ring-6", ring(6), vec![2, 2, 2, 2, 2, 2]),
        ("petersen", petersen(), vec![1, 2, 1, 2, 1, 2, 1, 2, 1, 2]),
    ];
    for (name, g, weights) in cases {
        let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        let plan = weighted_gossip(&tree, &weights).unwrap();
        let o = simulate_gossip(
            &plan.expanded_tree.to_graph(),
            &plan.schedule,
            &plan.origins(),
        )
        .unwrap();
        assert!(o.complete);
        let rp = plan.expanded_tree.height() as usize;
        assert_eq!(plan.schedule.makespan(), plan.total_weight + rp);
        t.row(vec![
            name.to_string(),
            format!("{weights:?}"),
            plan.total_weight.to_string(),
            rp.to_string(),
            plan.schedule.makespan().to_string(),
            (plan.total_weight + rp).to_string(),
            "yes".into(),
        ]);
    }
    format!(
        "Weighted gossiping via chain splitting (paper §4):\n{}\n\
         W = total messages; the n + r guarantee lifts verbatim to W + r'.\n",
        t.render()
    )
}

/// E17 — the online claim (§4): per-vertex protocols knowing only
/// `(i, j, k)` (plus the parent's label and children's ranges, which are
/// local) reproduce the offline schedule exactly — in lock-step and as a
/// real thread-per-processor system over channels.
pub fn exp_online() -> String {
    let mut t = TextTable::new(vec![
        "family",
        "n",
        "lockstep == offline",
        "threads == offline",
    ]);
    for &family in Family::all() {
        let g = family.instance(14, 3);
        let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        let mut offline = concurrent_updown(&tree);
        offline.normalize();
        let lockstep = run_online(&tree) == offline;
        let threaded = run_online_threaded(&tree) == offline;
        assert!(lockstep && threaded, "{}", family.name());
        t.row(vec![
            family.name().to_string(),
            tree.n().to_string(),
            lockstep.to_string(),
            threaded.to_string(),
        ]);
    }
    format!(
        "Online/distributed ConcurrentUpDown (one OS thread per processor,\n\
         crossbeam channels as links, barrier-synchronized rounds):\n{}",
        t.render()
    )
}

/// E18 — exact optima on every tiny instance vs the `n + r` schedule and
/// the lower bounds: the gap is always at most `r + 1`.
pub fn exp_exact() -> String {
    let mut t = TextTable::new(vec![
        "graph",
        "n",
        "r",
        "lower bound",
        "exact optimal",
        "n + r",
        "gap",
    ]);
    let cases: Vec<(&str, Graph)> = vec![
        ("path-3", path(3)),
        ("path-4", path(4)),
        ("path-5", path(5)),
        ("ring-4", ring(4)),
        ("ring-5", ring(5)),
        ("ring-6", ring(6)),
        ("star-4", star(4)),
        ("star-5", star(5)),
        ("star-6", star(6)),
        ("K4", complete(4)),
        ("K5", complete(5)),
        (
            "K2,3",
            Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap(),
        ),
    ];
    for (name, g) in cases {
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        let opt = match optimal_gossip_time(&g, CommModel::Multicast, 2 * g.n() + 4, 80_000_000) {
            ExactResult::Optimal(v) => v,
            other => panic!("{name}: {other:?}"),
        };
        let lb = gossip_lower_bound(&g);
        assert!(lb <= opt && opt <= plan.makespan());
        t.row(vec![
            name.to_string(),
            g.n().to_string(),
            plan.radius.to_string(),
            lb.to_string(),
            opt.to_string(),
            plan.makespan().to_string(),
            (plan.makespan() - opt).to_string(),
        ]);
    }
    format!(
        "Exact optimal gossip times (IDA* over hold-set states) vs the paper's\n\
         n + r schedule:\n{}\n\
         the n + r schedule is never more than r + 1 rounds above the true optimum\n\
         on these instances, and the cut-vertex lower bound is tight on lines/stars.\n",
        t.render()
    )
}

/// E21 — pipelined repeated gossiping (§4's "execute the gossiping
/// algorithms a large number of times"): overlaying batches at the minimal
/// conflict-free period beats serializing them.
pub fn exp_pipeline() -> String {
    let mut t = TextTable::new(vec![
        "family",
        "n",
        "r",
        "single (n+r)",
        "min period",
        "amortized (8 batches)",
        "speedup",
    ]);
    for &family in Family::all() {
        let g = family.instance(12, 13);
        let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        let n = tree.n();
        let r = tree.height() as usize;
        let single = n + r;
        let period = min_pipeline_period(&tree, 8);
        let plan = pipelined_gossip(&tree, 8, period).expect("period is feasible");
        t.row(vec![
            family.name().to_string(),
            n.to_string(),
            r.to_string(),
            single.to_string(),
            period.to_string(),
            format!("{:.1}", plan.amortized_rounds()),
            format!("{:.2}x", single as f64 / plan.amortized_rounds()),
        ]);
    }
    format!(
        "Pipelined repeated gossiping on the fixed tree (period = rounds between\n\
         batch starts, verified conflict-free end to end):\n{}\n\
         A largely *negative* result that certifies the schedule's density: every\n\
         non-root vertex's receive calendar is busy through time n + level, so\n\
         only the shallow families (stars/cliques, r = 1) admit any overlap, and\n\
         even there just one round — ConcurrentUpDown leaves almost no idle\n\
         receive capacity for a following batch to exploit.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn pipeline_report_builds() {
        assert!(super::exp_pipeline().contains("min period"));
    }

    #[test]
    fn weighted_report_builds() {
        assert!(super::exp_weighted().contains("W + r'"));
    }

    #[test]
    fn online_report_builds() {
        assert!(super::exp_online().contains("true"));
    }

    #[test]
    fn exact_report_builds() {
        let r = super::exp_exact();
        assert!(r.contains("K2,3"));
    }
}
