//! E24 — resilience sweep: the cost of self-healing under seeded fault
//! plans. Runs the `n + r` schedule through [`gossip_core::ResilientExecutor`]
//! across loss rates (plus a crash/outage scenario on the Petersen graph)
//! and reports rounds of overhead, retransmissions, and repair epochs.

use crate::report::obj;
use crate::table::TextTable;
use gossip_core::{GossipPlanner, ResilientExecutor};
use gossip_model::FaultPlan;
use gossip_telemetry::Value;
use gossip_workloads::Family;

/// The textual report (see [`exp_resilience_full`] for the artifact).
pub fn exp_resilience() -> String {
    exp_resilience_full().0
}

/// [`exp_resilience`] plus the machine-readable payload written to
/// `BENCH_resilience.json`: one row per (network, fault plan) with the
/// full recovery accounting.
pub fn exp_resilience_full() -> (String, Value) {
    let mut t = TextTable::new(vec![
        "network",
        "n",
        "faults",
        "baseline",
        "total",
        "overhead",
        "epochs",
        "retx",
        "lost",
        "recovered",
    ]);
    let mut rows = Vec::new();

    let run = |label: &str,
               g: &gossip_graph::Graph,
               fault_label: &str,
               faults: &FaultPlan,
               t: &mut TextTable,
               rows: &mut Vec<Value>| {
        let plan = GossipPlanner::new(g).unwrap().plan().unwrap();
        let report = ResilientExecutor::new(g, &plan.schedule, &plan.origin_of_message, faults)
            .run()
            .unwrap();
        assert!(
            report.unresolved.is_empty(),
            "{label} under {fault_label}: epoch budget exhausted"
        );
        t.row(vec![
            label.to_string(),
            g.n().to_string(),
            fault_label.to_string(),
            report.baseline_rounds.to_string(),
            report.total_rounds.to_string(),
            format!("+{}", report.overhead_rounds()),
            report.epochs.len().to_string(),
            report.retransmissions.to_string(),
            report.lost_deliveries.to_string(),
            if report.recovered { "yes" } else { "partial" }.to_string(),
        ]);
        rows.push(obj(vec![
            ("network", Value::String(label.to_string())),
            ("n", Value::from_u64(g.n() as u64)),
            ("faults", Value::String(fault_label.to_string())),
            (
                "baseline_rounds",
                Value::from_u64(report.baseline_rounds as u64),
            ),
            ("total_rounds", Value::from_u64(report.total_rounds as u64)),
            (
                "overhead_rounds",
                Value::from_u64(report.overhead_rounds() as u64),
            ),
            ("epochs", Value::from_u64(report.epochs.len() as u64)),
            (
                "retransmissions",
                Value::from_u64(report.retransmissions as u64),
            ),
            (
                "lost_deliveries",
                Value::from_u64(report.lost_deliveries as u64),
            ),
            ("recovered", Value::Bool(report.recovered)),
            (
                "unrecoverable",
                Value::from_u64(report.unrecoverable.len() as u64),
            ),
        ]));
    };

    // Loss-rate sweep: each family at n = 16 under increasing loss.
    let families = ["ring", "grid", "hypercube", "random-sparse"];
    for name in families {
        let family = Family::all().iter().copied().find(|f| f.name() == name);
        let Some(family) = family else { continue };
        let g = family.instance(16, 7);
        for (permille, label) in [
            (0u64, "none"),
            (50, "p=0.05"),
            (100, "p=0.10"),
            (200, "p=0.20"),
        ] {
            let faults = FaultPlan::new(42).with_loss_rate(permille as f64 / 1000.0);
            run(name, &g, label, &faults, &mut t, &mut rows);
        }
    }

    // Crash + outage scenarios on the paper's N2 (Petersen).
    let petersen = gossip_workloads::petersen();
    let crash = FaultPlan::new(9).with_loss_rate(0.1).with_crash(9, 3);
    run(
        "petersen",
        &petersen,
        "p=0.10, crash 9@3",
        &crash,
        &mut t,
        &mut rows,
    );
    let outage = FaultPlan::new(9).with_outage(0, 1, 0, 12);
    run(
        "petersen",
        &petersen,
        "link 0-1 down 0..12",
        &outage,
        &mut t,
        &mut rows,
    );

    let payload = obj(vec![
        ("experiment", Value::String("resilience".into())),
        ("rows", Value::Array(rows)),
    ]);
    let report = format!(
        "Self-healing recovery under seeded fault plans (ResilientExecutor,\n\
         default epoch budget). Overhead is extra rounds past the fault-free\n\
         n + r baseline; retx counts deliveries attempted by repair epochs:\n{}\n\
         zero-fault rows cost exactly nothing (0 overhead, 0 retransmissions);\n\
         a crashed processor's own message is unrecoverable once it dies before\n\
         forwarding, and is excluded from the completion criterion.\n",
        t.render()
    );
    (report, payload)
}

#[cfg(test)]
mod tests {
    #[test]
    fn resilience_report_builds_and_heals() {
        let (r, payload) = super::exp_resilience_full();
        assert!(r.contains("recovered"));
        let rows = payload["rows"].as_array().unwrap();
        assert!(rows.len() >= 16);
        // Zero-fault rows are exact: no overhead, no retransmissions.
        for row in rows {
            if row["faults"].as_str() == Some("none") {
                assert_eq!(row["overhead_rounds"].as_u64(), Some(0));
                assert_eq!(row["retransmissions"].as_u64(), Some(0));
            }
        }
    }
}
