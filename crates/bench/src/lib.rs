//! # gossip-bench
//!
//! The experiment harness: one module per paper artifact (table, figure, or
//! stated bound), each producing a plain-text report that regenerates the
//! artifact. Binaries under `src/bin/` print individual reports;
//! `exp_all` prints everything (and is what EXPERIMENTS.md's measured
//! columns come from).
//!
//! Criterion timing benches (experiment E15, the O(mn) construction claim)
//! live under `benches/`.

#![forbid(unsafe_code)]

pub mod diff;
pub mod experiments;
pub mod report;
pub mod table;

pub use diff::{diff_bench, DiffConfig, DiffReport, Regression};
