//! Regression diffing of `BENCH_*.json` artifacts: the perf gate behind
//! `gossip bench-diff OLD.json NEW.json`.
//!
//! Rows are matched across the two artifacts by `(family, n)` (falling
//! back to row position when those fields are absent) and compared field
//! by field under two regimes:
//!
//! - **deterministic schedule quality** (`makespan`, `lower_bound`,
//!   anything else integral): flagged when the new value exceeds the old
//!   by more than a percentage threshold (default 15%). These quantities
//!   are exact — ConcurrentUpDown's makespan is `n + r` by Theorem 1 — so
//!   any real growth is an algorithmic regression, not noise;
//! - **wall-clock timings** (fields ending in `_ms` or `_ns`): flagged
//!   when the new value exceeds the old by more than a multiplicative
//!   factor (default 2×) *plus* a fixed grace (1 ms / 1 µs), absorbing
//!   scheduler jitter on sub-millisecond measurements while still
//!   catching order-of-magnitude slowdowns;
//! - **speedup ratios** (fields ending in `_speedup_x`): higher is
//!   better — flagged when the new value *drops* below the old divided
//!   by the wall-clock factor. These are ratios of two wall-clock
//!   measurements taken in the same process, so the jitter largely
//!   cancels; the factor-based tolerance still absorbs the residue while
//!   catching a fast path that quietly stopped being fast.
//!
//! Both artifacts must pass [`gossip_telemetry::check_schema_version`].

use gossip_telemetry::{check_schema_version, Value};

/// Thresholds for [`diff_bench`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Max tolerated growth of deterministic quality fields, in percent.
    pub threshold_pct: f64,
    /// Max tolerated wall-clock slowdown, as a multiplicative factor.
    pub wall_factor: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold_pct: 15.0,
            wall_factor: 2.0,
        }
    }
}

/// Absolute grace added to wall-clock comparisons in `_ms` fields: values
/// this small are dominated by scheduler noise, not by the code under test.
const WALL_GRACE_MS: f64 = 1.0;

/// One flagged regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Row key, e.g. `ring/n=64`.
    pub key: String,
    /// Field that regressed.
    pub field: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
}

/// The outcome of a bench diff.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Regressions found (empty = gate passes).
    pub regressions: Vec<Regression>,
    /// Rows present in both artifacts and compared.
    pub rows_compared: usize,
    /// Numeric fields compared across all matched rows.
    pub fields_compared: usize,
    /// Row keys present in only one artifact (compared with nothing).
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// A human-readable summary, one line per regression.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let growth = if r.old > 0.0 {
                format!(" ({:+.1}%)", (r.new / r.old - 1.0) * 100.0)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "REGRESSION {} {}: {} -> {}{}\n",
                r.key, r.field, r.old, r.new, growth
            ));
        }
        for k in &self.unmatched {
            out.push_str(&format!("note: row {k} present in only one artifact\n"));
        }
        out.push_str(&format!(
            "{} row(s), {} field(s) compared: {}\n",
            self.rows_compared,
            self.fields_compared,
            if self.ok() {
                "no regressions".to_string()
            } else {
                format!("{} regression(s)", self.regressions.len())
            }
        ));
        out
    }
}

/// The identifying key of a row: `family/n=<n>` when present, else the
/// row's position.
fn row_key(row: &Value, index: usize) -> String {
    let family = row.get("family").and_then(Value::as_str);
    let n = row.get("n").and_then(Value::as_u64);
    match (family, n) {
        (Some(f), Some(n)) => format!("{f}/n={n}"),
        (Some(f), None) => format!("{f}/row={index}"),
        _ => format!("row={index}"),
    }
}

/// Whether a field carries wall-clock time (jitter-tolerant comparison).
fn is_wall_field(name: &str) -> bool {
    name.ends_with("_ms") || name.ends_with("_ns")
}

/// Whether a field is a higher-is-better speedup ratio: a *drop* is the
/// regression direction.
fn is_speedup_field(name: &str) -> bool {
    name.ends_with("_speedup_x")
}

/// Fields that are identity, not measurement: never compared.
fn is_key_field(name: &str) -> bool {
    matches!(name, "family" | "n" | "m" | "r" | "schema_version")
}

/// Compares two bench artifacts and reports regressions per [`DiffConfig`].
///
/// Errors on schema-version mismatch or artifacts without a `rows` array —
/// those are usage errors, distinct from a clean "regressions found".
pub fn diff_bench(old: &Value, new: &Value, cfg: &DiffConfig) -> Result<DiffReport, String> {
    check_schema_version(old).map_err(|e| format!("old artifact: {e}"))?;
    check_schema_version(new).map_err(|e| format!("new artifact: {e}"))?;
    let old_rows = old
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("old artifact has no \"rows\" array")?;
    let new_rows = new
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("new artifact has no \"rows\" array")?;

    let mut report = DiffReport::default();
    let old_keyed: Vec<(String, &Value)> = old_rows
        .iter()
        .enumerate()
        .map(|(i, r)| (row_key(r, i), r))
        .collect();
    let new_keyed: Vec<(String, &Value)> = new_rows
        .iter()
        .enumerate()
        .map(|(i, r)| (row_key(r, i), r))
        .collect();

    for (key, old_row) in &old_keyed {
        let Some((_, new_row)) = new_keyed.iter().find(|(k, _)| k == key) else {
            report.unmatched.push(key.clone());
            continue;
        };
        report.rows_compared += 1;
        let Some(members) = old_row.as_object() else {
            continue;
        };
        for (field, old_val) in members {
            if is_key_field(field) {
                continue;
            }
            let (Some(old_f), Some(new_f)) =
                (old_val.as_f64(), new_row.get(field).and_then(Value::as_f64))
            else {
                continue;
            };
            report.fields_compared += 1;
            let regressed = if is_speedup_field(field) {
                new_f < old_f / cfg.wall_factor
            } else if is_wall_field(field) {
                let grace = if field.ends_with("_ns") {
                    WALL_GRACE_MS * 1e6
                } else {
                    WALL_GRACE_MS
                };
                new_f > old_f * cfg.wall_factor + grace
            } else {
                new_f > old_f * (1.0 + cfg.threshold_pct / 100.0)
            };
            if regressed {
                report.regressions.push(Regression {
                    key: key.clone(),
                    field: field.clone(),
                    old: old_f,
                    new: new_f,
                });
            }
        }
    }
    for (key, _) in &new_keyed {
        if !old_keyed.iter().any(|(k, _)| k == key) {
            report.unmatched.push(key.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::obj;
    use gossip_telemetry::SCHEMA_VERSION;

    fn artifact(rows: Vec<Value>) -> Value {
        obj(vec![
            ("schema_version", Value::from_u64(SCHEMA_VERSION)),
            ("experiment", Value::String("t".into())),
            ("rows", Value::Array(rows)),
        ])
    }

    fn row(family: &str, n: u64, makespan: u64, plan_ms: f64) -> Value {
        obj(vec![
            ("family", Value::String(family.into())),
            ("n", Value::from_u64(n)),
            ("makespan", Value::from_u64(makespan)),
            ("plan_ms", Value::from_f64(plan_ms)),
        ])
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(vec![row("ring", 16, 24, 0.5), row("torus", 64, 72, 3.0)]);
        let rep = diff_bench(&a, &a, &DiffConfig::default()).unwrap();
        assert!(rep.ok());
        assert_eq!(rep.rows_compared, 2);
        assert!(rep.fields_compared >= 4);
        assert!(rep.render().contains("no regressions"));
    }

    #[test]
    fn makespan_growth_beyond_threshold_flags() {
        let old = artifact(vec![row("ring", 16, 24, 0.5)]);
        let new = artifact(vec![row("ring", 16, 28, 0.5)]); // +16.7%
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert!(!rep.ok());
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].field, "makespan");
        assert!(rep.render().contains("REGRESSION ring/n=16 makespan"));
    }

    #[test]
    fn makespan_growth_within_threshold_passes() {
        let old = artifact(vec![row("ring", 16, 24, 0.5)]);
        let new = artifact(vec![row("ring", 16, 26, 0.5)]); // +8.3%
        assert!(diff_bench(&old, &new, &DiffConfig::default()).unwrap().ok());
    }

    #[test]
    fn wall_clock_uses_factor_plus_grace() {
        let old = artifact(vec![row("ring", 16, 24, 0.5)]);
        // 0.5ms -> 1.9ms is under 2x + 1ms grace: noise, not a regression.
        let fast = artifact(vec![row("ring", 16, 24, 1.9)]);
        assert!(diff_bench(&old, &fast, &DiffConfig::default())
            .unwrap()
            .ok());
        // 0.5ms -> 40ms is a real slowdown.
        let slow = artifact(vec![row("ring", 16, 24, 40.0)]);
        let rep = diff_bench(&old, &slow, &DiffConfig::default()).unwrap();
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].field, "plan_ms");
    }

    fn speedup_row(x: f64) -> Value {
        obj(vec![
            ("family", Value::String("gnp-kernel".into())),
            ("n", Value::from_u64(2048)),
            ("sim_kernel_speedup_x", Value::from_f64(x)),
        ])
    }

    #[test]
    fn speedup_drop_beyond_factor_flags() {
        let old = artifact(vec![speedup_row(6.0)]);
        let new = artifact(vec![speedup_row(2.0)]); // 3x drop > 2x factor
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].field, "sim_kernel_speedup_x");
        assert!(rep.render().contains("sim_kernel_speedup_x"));
    }

    #[test]
    fn speedup_drop_within_factor_passes() {
        let old = artifact(vec![speedup_row(6.0)]);
        let new = artifact(vec![speedup_row(4.0)]); // 1.5x drop, tolerated
        assert!(diff_bench(&old, &new, &DiffConfig::default()).unwrap().ok());
    }

    #[test]
    fn speedup_gain_never_flags() {
        let old = artifact(vec![speedup_row(6.0)]);
        let new = artifact(vec![speedup_row(60.0)]);
        assert!(diff_bench(&old, &new, &DiffConfig::default()).unwrap().ok());
    }

    #[test]
    fn improvements_never_flag() {
        let old = artifact(vec![row("ring", 16, 24, 10.0)]);
        let new = artifact(vec![row("ring", 16, 20, 0.1)]);
        assert!(diff_bench(&old, &new, &DiffConfig::default()).unwrap().ok());
    }

    #[test]
    fn unmatched_rows_are_noted_not_compared() {
        let old = artifact(vec![row("ring", 16, 24, 0.5), row("wheel", 8, 12, 0.1)]);
        let new = artifact(vec![row("ring", 16, 24, 0.5), row("torus", 64, 72, 3.0)]);
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert!(rep.ok());
        assert_eq!(rep.rows_compared, 1);
        assert_eq!(rep.unmatched.len(), 2);
    }

    #[test]
    fn unknown_schema_version_rejected() {
        let mut bad = artifact(vec![row("ring", 16, 24, 0.5)]);
        if let Value::Object(m) = &mut bad {
            m[0].1 = Value::from_u64(99);
        }
        let good = artifact(vec![row("ring", 16, 24, 0.5)]);
        let err = diff_bench(&bad, &good, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("old artifact"), "{err}");
        assert!(err.contains("99"), "{err}");
        assert!(diff_bench(&good, &bad, &DiffConfig::default())
            .unwrap_err()
            .contains("new artifact"));
    }

    #[test]
    fn missing_rows_is_an_error() {
        let no_rows = obj(vec![("schema_version", Value::from_u64(SCHEMA_VERSION))]);
        let good = artifact(vec![]);
        assert!(diff_bench(&no_rows, &good, &DiffConfig::default()).is_err());
    }
}
