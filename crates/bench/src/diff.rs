//! Regression diffing of `BENCH_*.json` artifacts: the perf gate behind
//! `gossip bench-diff OLD.json NEW.json`.
//!
//! Rows are matched across the two artifacts by `(family, n)` (falling
//! back to row position when those fields are absent) and compared field
//! by field under two regimes:
//!
//! - **deterministic schedule quality** (`makespan`, `lower_bound`,
//!   anything else integral): flagged when the new value exceeds the old
//!   by more than a percentage threshold (default 15%). These quantities
//!   are exact — ConcurrentUpDown's makespan is `n + r` by Theorem 1 — so
//!   any real growth is an algorithmic regression, not noise;
//! - **wall-clock timings** (fields ending in `_ms` or `_ns`): flagged
//!   when the new value exceeds the old by more than a multiplicative
//!   factor (default 2×) *plus* a fixed grace (1 ms / 1 µs), absorbing
//!   scheduler jitter on sub-millisecond measurements while still
//!   catching order-of-magnitude slowdowns;
//! - **speedup ratios** (fields ending in `_speedup_x`): higher is
//!   better — flagged when the new value *drops* below the old divided
//!   by the wall-clock factor. These are ratios of two wall-clock
//!   measurements taken in the same process, so the jitter largely
//!   cancels; the factor-based tolerance still absorbs the residue while
//!   catching a fast path that quietly stopped being fast.
//!
//! **PROF artifacts** (`kind: "profile"`, from `gossip profile --out` /
//! `gossip plan --profile-out`) are accepted on either side: the phase
//! tree is flattened into synthetic rows keyed by the phase path
//! (`phase=plan/tree/bfs_sweep`), so per-phase `total_ms` / `self_ms`
//! gate under the wall-clock regime and work counters under the
//! deterministic threshold — the same thresholds as ordinary rows.
//!
//! A field present in only one of two matched rows is **never** a
//! failure: it is reported as a skip note and excluded from comparison,
//! so a baseline predating new columns (e.g. the per-phase `plan_*_ms`
//! scaling fields) keeps gating the fields it does have.
//!
//! Both artifacts must pass [`gossip_telemetry::check_schema_version`].

use gossip_telemetry::{check_schema_version, Value, SCHEMA_VERSION};

/// Thresholds for [`diff_bench`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Max tolerated growth of deterministic quality fields, in percent.
    pub threshold_pct: f64,
    /// Max tolerated wall-clock slowdown, as a multiplicative factor.
    pub wall_factor: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold_pct: 15.0,
            wall_factor: 2.0,
        }
    }
}

/// Absolute grace added to wall-clock comparisons in `_ms` fields: values
/// this small are dominated by scheduler noise, not by the code under test.
const WALL_GRACE_MS: f64 = 1.0;

/// One flagged regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Row key, e.g. `ring/n=64`.
    pub key: String,
    /// Field that regressed.
    pub field: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
}

/// One compared field's full verdict — every field that was judged, not
/// just the failures. This is what `bench-diff --json` serializes, so
/// tooling can see the threshold each value was held to.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldCheck {
    /// Row key, e.g. `ring/n=64` or `phase=plan/tree`.
    pub key: String,
    /// Field compared.
    pub field: String,
    /// Comparison regime: `deterministic`, `wall`, or `speedup`.
    pub regime: &'static str,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// The limit the candidate was judged against: an upper bound for
    /// `deterministic` / `wall` fields, a lower bound for `speedup`.
    pub threshold: f64,
    /// Signed percentage change vs the baseline (0 when the baseline is 0).
    pub delta_pct: f64,
    /// Whether the field passed.
    pub ok: bool,
}

/// The outcome of a bench diff.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Regressions found (empty = gate passes).
    pub regressions: Vec<Regression>,
    /// Per-field verdicts for every compared field, in row order.
    pub checks: Vec<FieldCheck>,
    /// Rows present in both artifacts and compared.
    pub rows_compared: usize,
    /// Numeric fields compared across all matched rows.
    pub fields_compared: usize,
    /// Row keys present in only one artifact (compared with nothing).
    pub unmatched: Vec<String>,
    /// Fields present in only one of two matched rows: warned about and
    /// excluded from comparison (a baseline predating a new column must
    /// not fail the gate).
    pub skipped: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// A human-readable summary, one line per regression.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let growth = if r.old > 0.0 {
                format!(" ({:+.1}%)", (r.new / r.old - 1.0) * 100.0)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "REGRESSION {} {}: {} -> {}{}\n",
                r.key, r.field, r.old, r.new, growth
            ));
        }
        for k in &self.unmatched {
            out.push_str(&format!("note: row {k} present in only one artifact\n"));
        }
        for s in &self.skipped {
            out.push_str(&format!("warning: {s} — field skipped\n"));
        }
        out.push_str(&format!(
            "{} row(s), {} field(s) compared: {}\n",
            self.rows_compared,
            self.fields_compared,
            if self.ok() {
                "no regressions".to_string()
            } else {
                format!("{} regression(s)", self.regressions.len())
            }
        ));
        out
    }

    /// A machine-readable artifact (`bench-diff --json`): every compared
    /// field's verdict with the threshold it was judged against, plus the
    /// overall gate outcome. Exit semantics are unchanged — this mirrors
    /// [`DiffReport::ok`], it does not replace it.
    pub fn to_json(&self) -> Value {
        use crate::report::obj;
        let checks = self
            .checks
            .iter()
            .map(|c| {
                obj(vec![
                    ("key", Value::String(c.key.clone())),
                    ("field", Value::String(c.field.clone())),
                    ("regime", Value::String(c.regime.into())),
                    ("old", Value::from_f64(c.old)),
                    ("new", Value::from_f64(c.new)),
                    ("threshold", Value::from_f64(c.threshold)),
                    ("delta_pct", Value::from_f64(c.delta_pct)),
                    ("ok", Value::Bool(c.ok)),
                ])
            })
            .collect();
        let regressions = self
            .regressions
            .iter()
            .map(|r| {
                obj(vec![
                    ("key", Value::String(r.key.clone())),
                    ("field", Value::String(r.field.clone())),
                    ("old", Value::from_f64(r.old)),
                    ("new", Value::from_f64(r.new)),
                ])
            })
            .collect();
        let strings =
            |v: &[String]| Value::Array(v.iter().map(|s| Value::String(s.clone())).collect());
        obj(vec![
            ("schema_version", Value::from_u64(SCHEMA_VERSION)),
            ("kind", Value::String("bench-diff".into())),
            ("ok", Value::Bool(self.ok())),
            ("rows_compared", Value::from_u64(self.rows_compared as u64)),
            (
                "fields_compared",
                Value::from_u64(self.fields_compared as u64),
            ),
            ("checks", Value::Array(checks)),
            ("regressions", Value::Array(regressions)),
            ("unmatched", strings(&self.unmatched)),
            ("skipped", strings(&self.skipped)),
        ])
    }
}

/// The identifying key of a row: `phase=<path>` for flattened PROF rows,
/// `family/n=<n>` when present, else the row's position.
fn row_key(row: &Value, index: usize) -> String {
    if let Some(p) = row.get("phase").and_then(Value::as_str) {
        return format!("phase={p}");
    }
    let family = row.get("family").and_then(Value::as_str);
    let n = row.get("n").and_then(Value::as_u64);
    match (family, n) {
        (Some(f), Some(n)) => format!("{f}/n={n}"),
        (Some(f), None) => format!("{f}/row={index}"),
        _ => format!("row={index}"),
    }
}

/// Whether a field carries wall-clock time (jitter-tolerant comparison).
fn is_wall_field(name: &str) -> bool {
    name.ends_with("_ms") || name.ends_with("_ns")
}

/// Whether a field is a higher-is-better speedup ratio: a *drop* is the
/// regression direction.
fn is_speedup_field(name: &str) -> bool {
    name.ends_with("_speedup_x")
}

/// Fields that are identity, not measurement: never compared.
fn is_key_field(name: &str) -> bool {
    matches!(
        name,
        "family" | "n" | "m" | "r" | "schema_version" | "phase"
    )
}

/// Whether an artifact is a PROF planner profile (`kind: "profile"`).
fn is_profile(doc: &Value) -> bool {
    doc.get("kind").and_then(Value::as_str) == Some("profile")
}

/// Flattens a PROF artifact into synthetic diff rows: a `(run)` row with
/// the artifact's makespan / wall-clock scalars, then one row per phase
/// path carrying `calls`, `total_ms`, `self_ms`, the phase's work
/// counters, and (when recorded) `peak_bytes`. `attributed_pct` is
/// deliberately left out: growth there is an improvement, which the
/// deterministic regime would misread as a regression.
fn profile_rows(doc: &Value) -> Vec<Value> {
    fn walk(rows: &mut Vec<Value>, node: &Value, prefix: &str) {
        let name = node.get("name").and_then(Value::as_str).unwrap_or("?");
        let path = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}/{name}")
        };
        let mut fields = vec![("phase".to_string(), Value::String(path.clone()))];
        for k in ["calls", "total_ms", "self_ms"] {
            if let Some(v) = node.get(k) {
                fields.push((k.to_string(), v.clone()));
            }
        }
        if let Some(counters) = node.get("counters").and_then(Value::as_object) {
            for (k, v) in counters {
                fields.push((k.clone(), v.clone()));
            }
        }
        if let Some(p) = node.get("alloc").and_then(|a| a.get("peak_bytes")) {
            fields.push(("peak_bytes".to_string(), p.clone()));
        }
        rows.push(Value::Object(fields));
        if let Some(children) = node.get("children").and_then(Value::as_array) {
            for c in children {
                walk(rows, c, &path);
            }
        }
    }
    let mut run = vec![("phase".to_string(), Value::String("(run)".to_string()))];
    for k in ["makespan", "plan_ms", "attributed_ms"] {
        if let Some(v) = doc.get(k) {
            run.push((k.to_string(), v.clone()));
        }
    }
    let mut rows = vec![Value::Object(run)];
    if let Some(phases) = doc.get("phases").and_then(Value::as_array) {
        for p in phases {
            walk(&mut rows, p, "");
        }
    }
    rows
}

/// Compares two bench artifacts and reports regressions per [`DiffConfig`].
///
/// Errors on schema-version mismatch or artifacts without a `rows` array —
/// those are usage errors, distinct from a clean "regressions found".
pub fn diff_bench(old: &Value, new: &Value, cfg: &DiffConfig) -> Result<DiffReport, String> {
    check_schema_version(old).map_err(|e| format!("old artifact: {e}"))?;
    check_schema_version(new).map_err(|e| format!("new artifact: {e}"))?;
    let old_flat;
    let old_rows = if is_profile(old) {
        old_flat = profile_rows(old);
        &old_flat
    } else {
        old.get("rows")
            .and_then(Value::as_array)
            .ok_or("old artifact has no \"rows\" array")?
    };
    let new_flat;
    let new_rows = if is_profile(new) {
        new_flat = profile_rows(new);
        &new_flat
    } else {
        new.get("rows")
            .and_then(Value::as_array)
            .ok_or("new artifact has no \"rows\" array")?
    };

    let mut report = DiffReport::default();
    let old_keyed: Vec<(String, &Value)> = old_rows
        .iter()
        .enumerate()
        .map(|(i, r)| (row_key(r, i), r))
        .collect();
    let new_keyed: Vec<(String, &Value)> = new_rows
        .iter()
        .enumerate()
        .map(|(i, r)| (row_key(r, i), r))
        .collect();

    for (key, old_row) in &old_keyed {
        let Some((_, new_row)) = new_keyed.iter().find(|(k, _)| k == key) else {
            report.unmatched.push(key.clone());
            continue;
        };
        report.rows_compared += 1;
        let Some(members) = old_row.as_object() else {
            continue;
        };
        for (field, old_val) in members {
            if is_key_field(field) {
                continue;
            }
            let Some(old_f) = old_val.as_f64() else {
                continue;
            };
            let Some(new_f) = new_row.get(field).and_then(Value::as_f64) else {
                report
                    .skipped
                    .push(format!("{key}: {field} missing from new artifact"));
                continue;
            };
            report.fields_compared += 1;
            let (regime, threshold, regressed) = if is_speedup_field(field) {
                let limit = old_f / cfg.wall_factor;
                ("speedup", limit, new_f < limit)
            } else if is_wall_field(field) {
                let grace = if field.ends_with("_ns") {
                    WALL_GRACE_MS * 1e6
                } else {
                    WALL_GRACE_MS
                };
                let limit = old_f * cfg.wall_factor + grace;
                ("wall", limit, new_f > limit)
            } else {
                let limit = old_f * (1.0 + cfg.threshold_pct / 100.0);
                ("deterministic", limit, new_f > limit)
            };
            let delta_pct = if old_f == 0.0 {
                0.0
            } else {
                (new_f - old_f) / old_f * 100.0
            };
            report.checks.push(FieldCheck {
                key: key.clone(),
                field: field.clone(),
                regime,
                old: old_f,
                new: new_f,
                threshold,
                delta_pct,
                ok: !regressed,
            });
            if regressed {
                report.regressions.push(Regression {
                    key: key.clone(),
                    field: field.clone(),
                    old: old_f,
                    new: new_f,
                });
            }
        }
        // Numeric fields only the new row has (a baseline predating the
        // column): warn and skip rather than fail, so refreshed artifacts
        // keep gating against old baselines.
        if let Some(new_members) = new_row.as_object() {
            for (field, new_val) in new_members {
                if is_key_field(field) || new_val.as_f64().is_none() {
                    continue;
                }
                if members.iter().all(|(f, _)| f != field) {
                    report
                        .skipped
                        .push(format!("{key}: {field} absent from baseline"));
                }
            }
        }
    }
    for (key, _) in &new_keyed {
        if !old_keyed.iter().any(|(k, _)| k == key) {
            report.unmatched.push(key.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::obj;
    use gossip_telemetry::SCHEMA_VERSION;

    fn artifact(rows: Vec<Value>) -> Value {
        obj(vec![
            ("schema_version", Value::from_u64(SCHEMA_VERSION)),
            ("experiment", Value::String("t".into())),
            ("rows", Value::Array(rows)),
        ])
    }

    fn row(family: &str, n: u64, makespan: u64, plan_ms: f64) -> Value {
        obj(vec![
            ("family", Value::String(family.into())),
            ("n", Value::from_u64(n)),
            ("makespan", Value::from_u64(makespan)),
            ("plan_ms", Value::from_f64(plan_ms)),
        ])
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(vec![row("ring", 16, 24, 0.5), row("torus", 64, 72, 3.0)]);
        let rep = diff_bench(&a, &a, &DiffConfig::default()).unwrap();
        assert!(rep.ok());
        assert_eq!(rep.rows_compared, 2);
        assert!(rep.fields_compared >= 4);
        assert!(rep.render().contains("no regressions"));
    }

    #[test]
    fn makespan_growth_beyond_threshold_flags() {
        let old = artifact(vec![row("ring", 16, 24, 0.5)]);
        let new = artifact(vec![row("ring", 16, 28, 0.5)]); // +16.7%
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert!(!rep.ok());
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].field, "makespan");
        assert!(rep.render().contains("REGRESSION ring/n=16 makespan"));
    }

    #[test]
    fn makespan_growth_within_threshold_passes() {
        let old = artifact(vec![row("ring", 16, 24, 0.5)]);
        let new = artifact(vec![row("ring", 16, 26, 0.5)]); // +8.3%
        assert!(diff_bench(&old, &new, &DiffConfig::default()).unwrap().ok());
    }

    #[test]
    fn wall_clock_uses_factor_plus_grace() {
        let old = artifact(vec![row("ring", 16, 24, 0.5)]);
        // 0.5ms -> 1.9ms is under 2x + 1ms grace: noise, not a regression.
        let fast = artifact(vec![row("ring", 16, 24, 1.9)]);
        assert!(diff_bench(&old, &fast, &DiffConfig::default())
            .unwrap()
            .ok());
        // 0.5ms -> 40ms is a real slowdown.
        let slow = artifact(vec![row("ring", 16, 24, 40.0)]);
        let rep = diff_bench(&old, &slow, &DiffConfig::default()).unwrap();
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].field, "plan_ms");
    }

    fn speedup_row(x: f64) -> Value {
        obj(vec![
            ("family", Value::String("gnp-kernel".into())),
            ("n", Value::from_u64(2048)),
            ("sim_kernel_speedup_x", Value::from_f64(x)),
        ])
    }

    #[test]
    fn speedup_drop_beyond_factor_flags() {
        let old = artifact(vec![speedup_row(6.0)]);
        let new = artifact(vec![speedup_row(2.0)]); // 3x drop > 2x factor
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].field, "sim_kernel_speedup_x");
        assert!(rep.render().contains("sim_kernel_speedup_x"));
    }

    #[test]
    fn speedup_drop_within_factor_passes() {
        let old = artifact(vec![speedup_row(6.0)]);
        let new = artifact(vec![speedup_row(4.0)]); // 1.5x drop, tolerated
        assert!(diff_bench(&old, &new, &DiffConfig::default()).unwrap().ok());
    }

    #[test]
    fn speedup_gain_never_flags() {
        let old = artifact(vec![speedup_row(6.0)]);
        let new = artifact(vec![speedup_row(60.0)]);
        assert!(diff_bench(&old, &new, &DiffConfig::default()).unwrap().ok());
    }

    #[test]
    fn improvements_never_flag() {
        let old = artifact(vec![row("ring", 16, 24, 10.0)]);
        let new = artifact(vec![row("ring", 16, 20, 0.1)]);
        assert!(diff_bench(&old, &new, &DiffConfig::default()).unwrap().ok());
    }

    #[test]
    fn unmatched_rows_are_noted_not_compared() {
        let old = artifact(vec![row("ring", 16, 24, 0.5), row("wheel", 8, 12, 0.1)]);
        let new = artifact(vec![row("ring", 16, 24, 0.5), row("torus", 64, 72, 3.0)]);
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert!(rep.ok());
        assert_eq!(rep.rows_compared, 1);
        assert_eq!(rep.unmatched.len(), 2);
    }

    #[test]
    fn unknown_schema_version_rejected() {
        let mut bad = artifact(vec![row("ring", 16, 24, 0.5)]);
        if let Value::Object(m) = &mut bad {
            m[0].1 = Value::from_u64(99);
        }
        let good = artifact(vec![row("ring", 16, 24, 0.5)]);
        let err = diff_bench(&bad, &good, &DiffConfig::default()).unwrap_err();
        assert!(err.contains("old artifact"), "{err}");
        assert!(err.contains("99"), "{err}");
        assert!(diff_bench(&good, &bad, &DiffConfig::default())
            .unwrap_err()
            .contains("new artifact"));
    }

    #[test]
    fn missing_rows_is_an_error() {
        let no_rows = obj(vec![("schema_version", Value::from_u64(SCHEMA_VERSION))]);
        let good = artifact(vec![]);
        assert!(diff_bench(&no_rows, &good, &DiffConfig::default()).is_err());
    }

    /// A minimal PROF artifact: plan -> {tree, generate} with one counter.
    fn prof(plan_ms: f64, tree_ms: f64, transmissions: u64) -> Value {
        let tree = obj(vec![
            ("name", Value::String("tree".into())),
            ("calls", Value::from_u64(1)),
            ("total_ms", Value::from_f64(tree_ms)),
            ("self_ms", Value::from_f64(tree_ms)),
        ]);
        let generate = obj(vec![
            ("name", Value::String("generate".into())),
            ("calls", Value::from_u64(1)),
            ("total_ms", Value::from_f64(plan_ms - tree_ms)),
            ("self_ms", Value::from_f64(plan_ms - tree_ms)),
            (
                "counters",
                obj(vec![("transmissions", Value::from_u64(transmissions))]),
            ),
        ]);
        let plan = obj(vec![
            ("name", Value::String("plan".into())),
            ("calls", Value::from_u64(1)),
            ("total_ms", Value::from_f64(plan_ms)),
            ("self_ms", Value::from_f64(0.0)),
            ("children", Value::Array(vec![tree, generate])),
        ]);
        obj(vec![
            ("schema_version", Value::from_u64(SCHEMA_VERSION)),
            ("kind", Value::String("profile".into())),
            ("n", Value::from_u64(64)),
            ("makespan", Value::from_u64(70)),
            ("plan_ms", Value::from_f64(plan_ms)),
            ("attributed_ms", Value::from_f64(plan_ms)),
            ("attributed_pct", Value::from_f64(100.0)),
            ("phases", Value::Array(vec![plan])),
        ])
    }

    #[test]
    fn identical_profiles_pass_and_flatten_to_phase_rows() {
        let a = prof(10.0, 4.0, 124);
        let rep = diff_bench(&a, &a, &DiffConfig::default()).unwrap();
        assert!(rep.ok(), "{}", rep.render());
        // (run) + plan + tree + generate.
        assert_eq!(rep.rows_compared, 4);
    }

    #[test]
    fn per_phase_slowdown_flags_with_phase_key() {
        let old = prof(10.0, 4.0, 124);
        let new = prof(40.0, 34.0, 124); // tree 4ms -> 34ms: > 2x + 1ms
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert!(!rep.ok());
        assert!(
            rep.regressions
                .iter()
                .any(|r| r.key == "phase=plan/tree" && r.field == "total_ms"),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn phase_counter_growth_flags_deterministically() {
        let old = prof(10.0, 4.0, 100);
        let new = prof(10.0, 4.0, 120); // +20% transmissions
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert!(rep
            .regressions
            .iter()
            .any(|r| r.key == "phase=plan/generate" && r.field == "transmissions"));
    }

    #[test]
    fn baseline_missing_phase_fields_warns_and_skips() {
        // A baseline predating the per-phase scaling columns: the new
        // artifact's extra fields are noted, never failed on.
        let old = artifact(vec![row("ring", 16, 24, 0.5)]);
        let new = artifact(vec![obj(vec![
            ("family", Value::String("ring".into())),
            ("n", Value::from_u64(16)),
            ("makespan", Value::from_u64(24)),
            ("plan_ms", Value::from_f64(0.5)),
            ("plan_tree_ms", Value::from_f64(0.2)),
            ("plan_generate_ms", Value::from_f64(0.3)),
        ])]);
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert!(rep.ok(), "{}", rep.render());
        assert_eq!(rep.skipped.len(), 2, "{:?}", rep.skipped);
        assert!(rep.render().contains("plan_tree_ms absent from baseline"));
        // The reverse direction — a field the baseline has but the new
        // artifact dropped — also warns and skips.
        let rep = diff_bench(&new, &old, &DiffConfig::default()).unwrap();
        assert!(rep.ok(), "{}", rep.render());
        assert!(rep
            .render()
            .contains("plan_tree_ms missing from new artifact"));
    }

    #[test]
    fn every_compared_field_gets_a_verdict_with_its_threshold() {
        let old = artifact(vec![row("ring", 16, 24, 0.5)]);
        let new = artifact(vec![row("ring", 16, 30, 0.5)]); // makespan +25%
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(rep.checks.len(), 2);
        let make = rep
            .checks
            .iter()
            .find(|c| c.field == "makespan")
            .expect("makespan check");
        assert_eq!(make.key, "ring/n=16");
        assert_eq!(make.regime, "deterministic");
        assert!(!make.ok);
        assert!((make.threshold - 24.0 * 1.15).abs() < 1e-9);
        assert!((make.delta_pct - 25.0).abs() < 1e-9);
        let wall = rep
            .checks
            .iter()
            .find(|c| c.field == "plan_ms")
            .expect("plan_ms check");
        assert_eq!(wall.regime, "wall");
        assert!(wall.ok);
        assert!((wall.threshold - (0.5 * 2.0 + WALL_GRACE_MS)).abs() < 1e-9);
    }

    #[test]
    fn speedup_checks_carry_a_lower_bound_threshold() {
        let old = artifact(vec![speedup_row(6.0)]);
        let new = artifact(vec![speedup_row(4.0)]);
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        let c = &rep.checks[0];
        assert_eq!(c.regime, "speedup");
        assert!(c.ok);
        assert!((c.threshold - 3.0).abs() < 1e-9); // 6.0 / wall_factor
    }

    #[test]
    fn json_artifact_mirrors_the_gate_verdict() {
        let old = artifact(vec![row("ring", 16, 24, 0.5), row("wheel", 8, 12, 0.1)]);
        let new = artifact(vec![row("ring", 16, 60, 0.5)]);
        let rep = diff_bench(&old, &new, &DiffConfig::default()).unwrap();
        let json = rep.to_json();
        assert_eq!(json.get("kind").and_then(Value::as_str), Some("bench-diff"));
        assert_eq!(
            json.get("schema_version").and_then(Value::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(json.get("ok").and_then(Value::as_bool), Some(false));
        let checks = json.get("checks").and_then(Value::as_array).unwrap();
        assert_eq!(checks.len(), 2);
        let failing = checks
            .iter()
            .find(|c| c.get("ok").and_then(Value::as_bool) == Some(false))
            .expect("a failing check");
        assert_eq!(
            failing.get("field").and_then(Value::as_str),
            Some("makespan")
        );
        assert!(failing.get("threshold").and_then(Value::as_f64).is_some());
        assert_eq!(
            json.get("regressions")
                .and_then(Value::as_array)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            json.get("unmatched")
                .and_then(Value::as_array)
                .unwrap()
                .len(),
            1
        );
        // The artifact parses back through the same JSON layer it ships on.
        let text = serde_json::to_string_pretty(&json).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, json);
    }
}
