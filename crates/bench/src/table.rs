//! Minimal fixed-width text-table builder for experiment reports.

/// A text table with a header row and aligned columns.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with right-aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["n", "makespan"]);
        t.row(vec!["8", "12"]);
        t.row(vec!["100", "150"]);
        let s = t.render();
        assert!(s.contains("  n  makespan"));
        assert!(s.lines().count() == 4);
        assert!(s.contains("100"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        TextTable::new(vec!["a", "b"]).row(vec!["1"]);
    }
}
