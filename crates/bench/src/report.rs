//! Machine-readable experiment artifacts: each `exp_*` binary that has a
//! structured payload writes it next to its stdout report as
//! `BENCH_<name>.json`, so downstream tooling (plots, regression diffs)
//! never has to scrape the text tables.

use gossip_telemetry::{Value, SCHEMA_VERSION};

/// Writes `payload` to `BENCH_<name>.json` in the current directory and
/// returns the path. Failures are reported, not fatal: the textual report
/// is the primary artifact.
///
/// A `schema_version` field is stamped into the top-level object (unless
/// the payload already carries one), so `gossip bench-diff` and other
/// readers can reject artifacts from incompatible builds.
pub fn write_bench_json(name: &str, payload: &Value) -> Option<String> {
    let path = format!("BENCH_{name}.json");
    let mut payload = payload.clone();
    if let Value::Object(members) = &mut payload {
        if !members.iter().any(|(k, _)| k == "schema_version") {
            members.insert(
                0,
                (
                    "schema_version".to_string(),
                    Value::from_u64(SCHEMA_VERSION),
                ),
            );
        }
    }
    let json = match serde_json::to_string_pretty(&payload) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("warning: could not serialize {path}: {e}");
            return None;
        }
    };
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {path}: {e}");
            None
        }
    }
}

/// A JSON object from key/value pairs (readability shim over the
/// order-preserving `Value::Object` representation).
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_builds_ordered_object() {
        let v = obj(vec![("a", Value::from_u64(1)), ("b", Value::from_f64(0.5))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_f64(), Some(0.5));
    }
}
