//! E15a — the paper's §4 complexity claims, timed:
//!
//! - minimum-depth spanning tree construction is the O(mn) bottleneck
//!   (sequential vs rayon-parallel sweep);
//! - "all the other steps of the algorithm to construct the schedule take
//!   O(n) time" — schedule generation scales linearly in total schedule
//!   size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_core::concurrent_updown;
use gossip_graph::{min_depth_spanning_tree, min_depth_spanning_tree_parallel, ChildOrder};
use gossip_workloads::{random_connected, Family};
use std::hint::black_box;

fn bench_spanning_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_depth_spanning_tree");
    for &n in &[64usize, 128, 256, 512] {
        let g = random_connected(n, 0.05, 1234);
        group.throughput(Throughput::Elements((g.n() * g.m()) as u64));
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| min_depth_spanning_tree(black_box(g), ChildOrder::ById).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| min_depth_spanning_tree_parallel(black_box(g), ChildOrder::ById).unwrap())
        });
    }
    group.finish();
}

fn bench_schedule_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_updown_schedule");
    for &n in &[64usize, 256, 1024] {
        // Schedule size is Θ(n²) events (n messages to n vertices), so
        // throughput is per delivered message.
        let g = random_connected(n, 0.03, 99);
        let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| concurrent_updown(black_box(tree)))
        });
    }
    group.finish();
}

fn bench_tree_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_by_family");
    for family in [
        Family::Path,
        Family::Star,
        Family::BinaryTree,
        Family::RandomTree,
    ] {
        let g = family.instance(512, 5);
        let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &tree,
            |b, tree| b.iter(|| concurrent_updown(black_box(tree))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spanning_tree, bench_schedule_generation, bench_tree_shapes
}
criterion_main!(benches);
