//! E15c — model-simulator throughput: full rule validation of a complete
//! gossip schedule, measured in deliveries per second, plus the exact
//! solver and the online executor on reference instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_core::{concurrent_updown, run_online, GossipPlanner};
use gossip_graph::{min_depth_spanning_tree, ChildOrder};
use gossip_model::simulate_gossip;
use gossip_workloads::random_connected;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_gossip");
    for &n in &[64usize, 256, 512] {
        let g = random_connected(n, 0.05, 77);
        let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
        group.throughput(Throughput::Elements(
            plan.schedule.stats().deliveries as u64,
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(g, plan),
            |b, (g, plan)| {
                b.iter(|| {
                    simulate_gossip(
                        black_box(g),
                        black_box(&plan.schedule),
                        black_box(&plan.origin_of_message),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_online_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_lockstep");
    for &n in &[32usize, 128] {
        let g = random_connected(n, 0.1, 13);
        let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        // Sanity once outside the hot loop.
        let mut offline = concurrent_updown(&tree);
        offline.normalize();
        assert_eq!(run_online(&tree), offline);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| run_online(black_box(tree)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator, bench_online_executor
}
criterion_main!(benches);
