//! E25 — the bitset simulation kernel: flat-CSR construction, the
//! word-parallel structural validator, strict (oracle-ordered) kernel
//! execution, and the prevalidated replay fast path, each against the
//! oracle [`Simulator`] on the same planned G(n, p) schedule.
//!
//! The headline ratio (oracle / prevalidated replay) is also measured —
//! with an enforced 5x floor — by `exp_theorem1`, whose `gnp-kernel`
//! rows feed the `gossip bench-diff` perf gate; this bench is the
//! statistically sampled view of the same contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_core::GossipPlanner;
use gossip_model::{CommModel, FlatSchedule, SimKernel, Simulator};
use gossip_workloads::random_connected;
use std::hint::black_box;

/// A planned G(n, p) instance (p = 16/n) shared by every group.
fn instance(n: usize) -> (gossip_graph::Graph, gossip_core::GossipPlan) {
    let g = random_connected(n, (16.0 / n as f64).min(0.5), 42);
    let plan = GossipPlanner::new(&g).unwrap().plan().unwrap();
    (g, plan)
}

fn bench_flat_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_build");
    for &n in &[256usize, 1024] {
        let (_, plan) = instance(n);
        group.throughput(Throughput::Elements(
            plan.schedule.stats().deliveries as u64,
        ));
        group.bench_with_input(BenchmarkId::from_parameter(n), &plan, |b, plan| {
            b.iter(|| FlatSchedule::from_schedule(black_box(&plan.schedule)))
        });
    }
    group.finish();
}

fn bench_flat_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_validate");
    for &n in &[256usize, 1024] {
        let (g, plan) = instance(n);
        let flat = FlatSchedule::from_schedule(&plan.schedule);
        group.throughput(Throughput::Elements(flat.deliveries() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(g, flat),
            |b, (g, flat)| {
                b.iter(|| {
                    flat.validate(
                        black_box(g),
                        CommModel::Multicast,
                        black_box(plan.origin_of_message.len()),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_kernel_vs_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    for &n in &[256usize, 1024] {
        let (g, plan) = instance(n);
        let flat = FlatSchedule::from_schedule(&plan.schedule);
        flat.validate(&g, CommModel::Multicast, plan.origin_of_message.len())
            .unwrap();
        group.throughput(Throughput::Elements(flat.deliveries() as u64));
        group.bench_with_input(
            BenchmarkId::new("oracle", n),
            &(&g, &plan),
            |b, (g, plan)| {
                b.iter(|| {
                    let mut sim =
                        Simulator::with_origins(g, CommModel::Multicast, &plan.origin_of_message)
                            .unwrap();
                    sim.run(black_box(&plan.schedule)).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kernel_strict", n),
            &(&g, &plan, &flat),
            |b, (g, plan, flat)| {
                b.iter(|| {
                    let mut k =
                        SimKernel::with_origins(g, CommModel::Multicast, &plan.origin_of_message)
                            .unwrap();
                    k.run(black_box(flat)).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kernel_prevalidated", n),
            &(&g, &plan, &flat),
            |b, (g, plan, flat)| {
                b.iter(|| {
                    let mut k =
                        SimKernel::with_origins(g, CommModel::Multicast, &plan.origin_of_message)
                            .unwrap();
                    k.run_prevalidated(black_box(flat)).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_flat_build, bench_flat_validate, bench_kernel_vs_oracle
}
criterion_main!(benches);
