//! E15d — timing of the search-based components: the exact hold-set
//! solver, the exact line scheduler, schedule compaction, and the
//! broadcast-model greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_core::{
    broadcast_model_gossip, line_gossip_schedule, optimal_gossip_time, GossipPlanner,
};
use gossip_model::{compact_schedule, CommModel};
use gossip_workloads::{path, random_connected, star};
use std::hint::black_box;

fn bench_exact_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solver");
    group.sample_size(10);
    for (name, g) in [
        ("path-5", path(5)),
        ("star-5", star(5)),
        ("ring-5", gossip_workloads::ring(5)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                optimal_gossip_time(
                    black_box(g),
                    CommModel::Multicast,
                    2 * g.n() + 4,
                    50_000_000,
                )
            })
        });
    }
    group.finish();
}

fn bench_line_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_scheduler");
    group.sample_size(10);
    for n in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| line_gossip_schedule(black_box(n)))
        });
    }
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction");
    group.sample_size(10);
    for &n in &[32usize, 128] {
        let g = random_connected(n, 0.05, 5);
        let plan = GossipPlanner::new(&g)
            .unwrap()
            .algorithm(gossip_core::Algorithm::Simple)
            .plan()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(g, plan),
            |b, (g, plan)| {
                b.iter(|| {
                    compact_schedule(
                        black_box(g),
                        black_box(&plan.schedule),
                        black_box(&plan.origin_of_message),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_broadcast_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_model_greedy");
    group.sample_size(10);
    for &n in &[16usize, 48] {
        let g = random_connected(n, 0.1, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| broadcast_model_gossip(black_box(g)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_solver,
    bench_line_scheduler,
    bench_compaction,
    bench_broadcast_model
);
criterion_main!(benches);
