//! Telemetry overhead guard: the instrumented entry points with a
//! [`NoopRecorder`] must cost within 5% of the raw (pre-telemetry) path,
//! measured on a 1024-vertex torus. Results (criterion display plus our own
//! wall-clock means) land in `BENCH_telemetry_overhead.json`.
//!
//! Four configurations per stage:
//! - `raw`: the un-instrumented code path (`Simulator::run`);
//! - `noop`: the recorded path with [`NoopRecorder`] — this is what every
//!   default caller pays, and what the <5% guard bounds;
//! - `metrics`: the recorded path with a live [`MetricsRecorder`] (no
//!   sink), the full-observability cost for context;
//! - `live`: the recorded path with a [`LiveRegistry`] (no event tap) —
//!   what `gossip serve` pays while scrapeable; also guarded at <5%;
//! - `flight`: the recorded path with a [`FlightRecorder`] capturing every
//!   transmission into the in-memory `.gfr` ring — what `--flight-out`
//!   pays.
//!
//! The threaded online executor gets its own noop/live/flight/alerts
//! quadruple: its cost is barrier-dominated wall clock, so the recorders —
//! including an [`AlertEngine`] running the full default rule set, what
//! `gossip serve --alerts` pays (`alerts_guard_ok`) — must disappear into
//! the noise there. That quadruple carries the <5% flight guard: the
//! wall-clock executors are where `--flight-out` attaches in `gossip
//! serve`/`recover`. On the dense oracle microbench the capture is O(every
//! transmission) against a simulator whose own per-transmission work is a
//! handful of nanoseconds, so its ratio (reported as
//! `simulate_flight_overhead_pct`, ~1x) is a statement about the
//! simulator's speed, not about recording cost — it is context, not a
//! guard.
//!
//! The planner phase profiler gets a `plan/noop` vs `plan/profiled` pair
//! (full construction pipeline, guards inert vs a [`Profiler`] installed)
//! guarded at <5% (`profile_guard_ok`): the profiler is designed to stay
//! always-on. Allocator counting cannot be toggled at runtime — build
//! with `--features prof-alloc` and compare artifacts; the build flavor
//! is recorded as `alloc_counting_enabled`, unguarded context.

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_bench::report::{obj, write_bench_json};
use gossip_core::{concurrent_updown_recorded, run_online_threaded_recorded, tree_origins};
use gossip_graph::{min_depth_spanning_tree, ChildOrder};
use gossip_model::{CommModel, FlatSchedule, Simulator};
use gossip_telemetry::flight::FlightHeader;
use gossip_telemetry::profile::Profiler;
use gossip_telemetry::{
    AlertEngine, FlightRecorder, LiveRegistry, MetricsRecorder, NoopRecorder, RuleSet, Value,
};
use gossip_workloads::torus;
use std::hint::black_box;
use std::time::Instant;

// With `--features prof-alloc` the counting allocator runs under this
// bench, so the artifact's plan timings include the counting cost —
// compare against a default build's artifact to price it. The flag is
// recorded as `alloc_counting_enabled`.
#[cfg(feature = "prof-alloc")]
#[global_allocator]
static ALLOC: gossip_telemetry::profile::ProfAlloc = gossip_telemetry::profile::ProfAlloc;

/// Minimum wall-clock seconds per run of each routine, with the routines
/// interleaved round-robin so slow drift (thermal, background load) hits
/// every configuration equally. Min-of-N rejects one-sided noise, which is
/// what an overhead *guard* needs: the true cost is the floor, not the mean.
fn time_min_interleaved<F: FnMut(usize)>(mut run: F, configs: usize, iters: usize) -> Vec<f64> {
    for c in 0..configs {
        run(c); // warm-up
    }
    let mut best = vec![f64::INFINITY; configs];
    for _ in 0..iters {
        for (c, slot) in best.iter_mut().enumerate() {
            let t0 = Instant::now();
            run(c);
            *slot = slot.min(t0.elapsed().as_secs_f64());
        }
    }
    best
}

fn bench_overhead(c: &mut Criterion) {
    let g = torus(32, 32); // 1024 vertices
    let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
    let schedule = concurrent_updown_recorded(&tree, &NoopRecorder);
    let origins = tree_origins(&tree);
    let metrics = MetricsRecorder::new();

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("simulate/raw", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &origins).unwrap();
            black_box(sim.run(black_box(&schedule)).unwrap())
        })
    });
    group.bench_function("simulate/noop", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &origins).unwrap();
            black_box(
                sim.run_recorded(black_box(&schedule), &NoopRecorder)
                    .unwrap(),
            )
        })
    });
    group.bench_function("simulate/metrics", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &origins).unwrap();
            black_box(sim.run_recorded(black_box(&schedule), &metrics).unwrap())
        })
    });
    let live = LiveRegistry::new();
    group.bench_function("simulate/live", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &origins).unwrap();
            black_box(sim.run_recorded(black_box(&schedule), &live).unwrap())
        })
    });
    // A fresh recorder per iteration: the capture grows with the run, so
    // reusing one would accumulate records (and memory) across samples.
    let flight_header = FlightHeader {
        n: g.n() as u32,
        n_msgs: origins.len() as u32,
        radius: 0,
        engine: "bench".to_string(),
        graph_digest: 0,
        schedule_digest: 0,
        fault_digest: 0,
        origins: origins.iter().map(|&o| o as u32).collect(),
    };
    group.bench_function("simulate/flight", |b| {
        b.iter(|| {
            let rec = FlightRecorder::new(flight_header.clone());
            let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &origins).unwrap();
            black_box(sim.run_recorded(black_box(&schedule), &rec).unwrap())
        })
    });
    group.bench_function("generate/noop", |b| {
        b.iter(|| black_box(concurrent_updown_recorded(black_box(&tree), &NoopRecorder)))
    });
    group.bench_function("generate/metrics", |b| {
        b.iter(|| black_box(concurrent_updown_recorded(black_box(&tree), &metrics)))
    });
    // The planner phase profiler: the full construction pipeline with a
    // Profiler installed vs the same pipeline with the guards inert. The
    // profiler is meant to stay always-on, so this pair carries its own
    // <5% guard (`profile_guard_ok`).
    let plan_pipeline = |g: &gossip_graph::Graph| {
        let tree = min_depth_spanning_tree(g, ChildOrder::ById).unwrap();
        let schedule = concurrent_updown_recorded(&tree, &NoopRecorder);
        black_box(FlatSchedule::from_schedule(&schedule));
    };
    group.bench_function("plan/noop", |b| b.iter(|| plan_pipeline(&g)));
    group.bench_function("plan/profiled", |b| {
        b.iter(|| {
            let profiler = Profiler::begin();
            plan_pipeline(&g);
            black_box(profiler.finish());
        })
    });
    group.finish();

    // Independent wall-clock timings for the JSON artifact (the criterion
    // harness prints but does not expose its timings).
    let iters = if std::env::args().any(|a| a == "--test") {
        1
    } else {
        7
    };
    let best = time_min_interleaved(
        |config| {
            let mut sim = Simulator::with_origins(&g, CommModel::Multicast, &origins).unwrap();
            match config {
                0 => black_box(sim.run(&schedule).unwrap()),
                1 => black_box(sim.run_recorded(&schedule, &NoopRecorder).unwrap()),
                2 => black_box(sim.run_recorded(&schedule, &metrics).unwrap()),
                3 => black_box(sim.run_recorded(&schedule, &live).unwrap()),
                _ => {
                    let rec = FlightRecorder::new(flight_header.clone());
                    black_box(sim.run_recorded(&schedule, &rec).unwrap())
                }
            };
        },
        5,
        iters,
    );
    let (raw, noop, recorded, live_t, flight_t) = (best[0], best[1], best[2], best[3], best[4]);
    let overhead_pct = 100.0 * (noop - raw) / raw;
    let live_overhead_pct = 100.0 * (live_t - raw) / raw;
    let simulate_flight_overhead_pct = 100.0 * (flight_t - raw) / raw;

    // The threaded online executor: per-round wall clock is dominated by
    // the barrier, so live instrumentation must vanish into it. This is
    // also where the flight guard binds — the wall-clock executors are the
    // paths `--flight-out` instruments in production.
    let online_tree = min_depth_spanning_tree(&torus(8, 8), ChildOrder::ById).unwrap();
    let online_origins = tree_origins(&online_tree);
    let online_header = FlightHeader {
        n: online_tree.n() as u32,
        n_msgs: online_origins.len() as u32,
        radius: 0,
        engine: "bench".to_string(),
        graph_digest: 0,
        schedule_digest: 0,
        fault_digest: 0,
        origins: online_origins.iter().map(|&o| o as u32).collect(),
    };
    let online_best = time_min_interleaved(
        |config| {
            match config {
                0 => black_box(run_online_threaded_recorded(&online_tree, &NoopRecorder)),
                1 => black_box(run_online_threaded_recorded(&online_tree, &live)),
                2 => {
                    let rec = FlightRecorder::new(online_header.clone());
                    black_box(run_online_threaded_recorded(&online_tree, &rec))
                }
                _ => {
                    // What `gossip serve --alerts` pays: the full default
                    // rule set evaluating every round over the live
                    // registry. Fresh engine per run so the single-shot
                    // latches judge every round, never a latched fast path.
                    let engine = AlertEngine::new(&live, RuleSet::default())
                        .total_pairs((online_tree.n() * online_origins.len()) as u64);
                    black_box(run_online_threaded_recorded(&online_tree, &engine))
                }
            };
        },
        4,
        iters,
    );
    let (online_noop, online_live, online_flight, online_alerts) = (
        online_best[0],
        online_best[1],
        online_best[2],
        online_best[3],
    );
    let online_live_overhead_pct = 100.0 * (online_live - online_noop) / online_noop;
    let flight_overhead_pct = 100.0 * (online_flight - online_noop) / online_noop;
    let alerts_overhead_pct = 100.0 * (online_alerts - online_noop) / online_noop;

    // The planner profiler pair for the artifact. Allocator counting is a
    // process-global build decision (`--features prof-alloc`), so it
    // cannot be toggled per configuration here: its cost is measured
    // separately by comparing a prof-alloc build's artifact against a
    // default build's, and reported unguarded as context via
    // `alloc_counting_enabled`.
    let plan_best = time_min_interleaved(
        |config| match config {
            0 => plan_pipeline(&g),
            _ => {
                let profiler = Profiler::begin();
                plan_pipeline(&g);
                black_box(profiler.finish());
            }
        },
        2,
        iters,
    );
    let (plan_noop, plan_profiled) = (plan_best[0], plan_best[1]);
    let profile_overhead_pct = 100.0 * (plan_profiled - plan_noop) / plan_noop;
    let alloc_counting = Profiler::begin().finish().alloc_tracking();

    let payload = obj(vec![
        ("experiment", Value::String("telemetry_overhead".into())),
        ("n", Value::from_u64(g.n() as u64)),
        ("iters", Value::from_u64(iters as u64)),
        ("simulate_raw_ms", Value::from_f64(raw * 1e3)),
        ("simulate_noop_ms", Value::from_f64(noop * 1e3)),
        ("simulate_metrics_ms", Value::from_f64(recorded * 1e3)),
        ("simulate_live_ms", Value::from_f64(live_t * 1e3)),
        ("simulate_flight_ms", Value::from_f64(flight_t * 1e3)),
        ("noop_overhead_pct", Value::from_f64(overhead_pct)),
        ("live_overhead_pct", Value::from_f64(live_overhead_pct)),
        (
            "simulate_flight_overhead_pct",
            Value::from_f64(simulate_flight_overhead_pct),
        ),
        ("online_n", Value::from_u64(online_tree.n() as u64)),
        ("online_noop_ms", Value::from_f64(online_noop * 1e3)),
        ("online_live_ms", Value::from_f64(online_live * 1e3)),
        ("online_flight_ms", Value::from_f64(online_flight * 1e3)),
        ("online_alerts_ms", Value::from_f64(online_alerts * 1e3)),
        (
            "online_live_overhead_pct",
            Value::from_f64(online_live_overhead_pct),
        ),
        ("flight_overhead_pct", Value::from_f64(flight_overhead_pct)),
        ("alerts_overhead_pct", Value::from_f64(alerts_overhead_pct)),
        ("plan_noop_ms", Value::from_f64(plan_noop * 1e3)),
        ("plan_profiled_ms", Value::from_f64(plan_profiled * 1e3)),
        (
            "profile_overhead_pct",
            Value::from_f64(profile_overhead_pct),
        ),
        ("alloc_counting_enabled", Value::Bool(alloc_counting)),
        ("guard_pct", Value::from_f64(5.0)),
        ("guard_ok", Value::Bool(overhead_pct < 5.0)),
        ("live_guard_ok", Value::Bool(live_overhead_pct < 5.0)),
        ("flight_guard_ok", Value::Bool(flight_overhead_pct < 5.0)),
        (
            "online_live_guard_ok",
            Value::Bool(online_live_overhead_pct < 5.0),
        ),
        ("profile_guard_ok", Value::Bool(profile_overhead_pct < 5.0)),
        ("alerts_guard_ok", Value::Bool(alerts_overhead_pct < 5.0)),
    ]);
    if let Some(path) = write_bench_json("telemetry_overhead", &payload) {
        println!(
            "noop overhead: {overhead_pct:.2}%, live registry: {live_overhead_pct:.2}%, \
             online live: {online_live_overhead_pct:.2}%, \
             online flight: {flight_overhead_pct:.2}%, \
             online alerts: {alerts_overhead_pct:.2}%, \
             plan profiler: {profile_overhead_pct:.2}% (guard < 5%; \
             dense-capture context: {simulate_flight_overhead_pct:.2}%; \
             alloc counting: {alloc_counting}), wrote {path}"
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_overhead
}
criterion_main!(benches);
