//! E15b — head-to-head schedule construction cost of the four algorithms
//! (ConcurrentUpDown, Simple, UpDown, Telephone) on a fixed tree, plus the
//! full graph-to-schedule pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_core::{Algorithm, GossipPlanner};
use gossip_graph::{min_depth_spanning_tree, ChildOrder};
use gossip_workloads::{random_connected, Family};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    let g = Family::RandomTree.instance(128, 7);
    let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
    for alg in [
        Algorithm::ConcurrentUpDown,
        Algorithm::Simple,
        Algorithm::UpDown,
        Algorithm::Telephone,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &tree, |b, tree| {
            b.iter(|| alg.schedule(black_box(tree)))
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_plan");
    for &n in &[64usize, 256] {
        let g = random_connected(n, 0.05, 31);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| GossipPlanner::new(black_box(g)).unwrap().plan().unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_algorithms, bench_full_pipeline
}
criterion_main!(benches);
