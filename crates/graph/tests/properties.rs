//! Property-based tests for the graph substrate: every algorithm is checked
//! against a brute-force oracle on random graphs.

use gossip_graph::{
    articulation_points, bfs, components, distance_metrics, distance_metrics_parallel,
    is_connected, min_depth_spanning_tree, min_depth_spanning_tree_parallel, ChildOrder, Graph,
    GraphBuilder, RootedTree, NO_PARENT, UNREACHABLE,
};
use proptest::prelude::*;

/// Random graph on up to `max_n` vertices with each edge present w.p. ~p.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        proptest::collection::vec(proptest::bool::weighted(0.4), len).prop_map(move |mask| {
            let mut b = GraphBuilder::new(n);
            for (on, &(u, v)) in mask.iter().zip(&pairs) {
                if *on {
                    b.add_edge_unchecked(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

/// Random connected graph: random tree + extra edges.
fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        (
            parents,
            proptest::collection::vec(proptest::bool::weighted(0.2), len),
        )
            .prop_map(move |(ps, mask)| {
                let mut b = GraphBuilder::new(n);
                let mut present = std::collections::HashSet::new();
                for (i, p) in ps.into_iter().enumerate() {
                    b.add_edge_unchecked(p, i + 1).unwrap();
                    present.insert((p.min(i + 1), p.max(i + 1)));
                }
                for (on, &(u, v)) in mask.iter().zip(&pairs) {
                    if *on && !present.contains(&(u, v)) {
                        b.add_edge_unchecked(u, v).unwrap();
                    }
                }
                b.build()
            })
    })
}

/// Floyd–Warshall oracle.
fn all_pairs_oracle(g: &Graph) -> Vec<Vec<u32>> {
    let n = g.n();
    let inf = u32::MAX / 4;
    let mut d = vec![vec![inf; n]; n];
    for (v, row) in d.iter_mut().enumerate() {
        row[v] = 0;
    }
    for (u, v) in g.edges() {
        d[u][v] = 1;
        d[v][u] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                d[i][j] = d[i][j].min(d[i][k].saturating_add(d[k][j]));
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_matches_floyd_warshall(g in arb_graph(9)) {
        let oracle = all_pairs_oracle(&g);
        for (s, row) in oracle.iter().enumerate() {
            let r = bfs(&g, s);
            for (v, &dist) in row.iter().enumerate() {
                let expected = if dist >= u32::MAX / 4 { UNREACHABLE } else { dist };
                prop_assert_eq!(r.dist[v], expected, "dist({}, {})", s, v);
            }
        }
    }

    #[test]
    fn bfs_paths_are_shortest_and_valid(g in arb_connected(10)) {
        let r = bfs(&g, 0);
        for v in 0..g.n() {
            let p = r.path_to(v).unwrap();
            prop_assert_eq!(p.len() as u32, r.dist[v] + 1);
            prop_assert_eq!(p[0], 0);
            prop_assert_eq!(*p.last().unwrap(), v);
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn radius_diameter_relation(g in arb_connected(10)) {
        let m = distance_metrics(&g).unwrap();
        prop_assert!(m.radius <= m.diameter);
        prop_assert!(m.diameter <= 2 * m.radius);
        for &c in &m.center {
            prop_assert_eq!(m.ecc[c], m.radius);
        }
        prop_assert_eq!(distance_metrics_parallel(&g).unwrap(), m);
    }

    #[test]
    fn spanning_tree_height_equals_radius(g in arb_connected(10)) {
        let m = distance_metrics(&g).unwrap();
        let t = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        prop_assert_eq!(t.height(), m.radius);
        prop_assert!(t.is_spanning_tree_of(&g));
        prop_assert_eq!(
            min_depth_spanning_tree_parallel(&g, ChildOrder::ById).unwrap(),
            t
        );
    }

    #[test]
    fn articulation_points_match_deletion_oracle(g in arb_graph(9)) {
        let (_, base) = components(&g);
        let mut expected = Vec::new();
        for v in 0..g.n() {
            let mut b = GraphBuilder::new(g.n());
            for (x, y) in g.edges() {
                if x != v && y != v {
                    b.add_edge_unchecked(x, y).unwrap();
                }
            }
            let (_, k) = components(&b.build());
            if k - 1 > base - (g.degree(v) == 0) as usize {
                expected.push(v);
            }
        }
        prop_assert_eq!(articulation_points(&g), expected);
    }

    #[test]
    fn rooted_tree_invariants(parents in (2usize..20).prop_flat_map(|n| {
        let ps: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
        ps.prop_map(move |v| {
            let mut parent = vec![NO_PARENT; n];
            for (i, p) in v.into_iter().enumerate() {
                parent[i + 1] = p;
            }
            parent
        })
    })) {
        let t = RootedTree::from_parents(0, &parents).unwrap();
        let n = t.n();
        // Labels are a permutation; label >= level; ranges nest.
        let mut seen = vec![false; n];
        for v in 0..n {
            let l = t.label(v) as usize;
            prop_assert!(!seen[l]);
            seen[l] = true;
            prop_assert!(t.label(v) >= t.level(v));
            let (i, j) = t.subtree_range(v);
            prop_assert!(i <= j);
            prop_assert_eq!(t.subtree_size(v) as u32, j - i + 1);
            if let Some(p) = t.parent(v) {
                let (pi, pj) = t.subtree_range(p);
                prop_assert!(pi < i && j <= pj, "child range inside parent");
            }
        }
        // Round trip through the edge graph preserves the spanning property.
        let g = t.to_graph();
        prop_assert_eq!(g.m(), n - 1);
        prop_assert!(is_connected(&g));
        prop_assert!(t.is_spanning_tree_of(&g));
    }

    #[test]
    fn components_partition(g in arb_graph(10)) {
        let (comp, k) = components(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u], comp[v]);
        }
        let max = comp.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
        prop_assert_eq!(max, k);
        prop_assert_eq!(is_connected(&g), k <= 1);
    }
}
