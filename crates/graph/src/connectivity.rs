//! Connectivity queries: connectedness and component decomposition.
//!
//! Gossiping is only defined on connected networks (a message cannot cross
//! between components), so every scheduling entry point validates
//! connectivity first.

use crate::bfs::{bfs, UNREACHABLE};
use crate::graph::Graph;

/// Whether the graph is connected. The empty graph is vacuously connected;
/// a single vertex is connected.
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    bfs(g, 0).all_reached()
}

/// Assigns each vertex a component id in `0..k` (by discovery order) and
/// returns `(component_of, k)`.
pub fn components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut comp = vec![u32::MAX; n];
    let mut k = 0u32;
    let mut queue = Vec::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = k;
        queue.clear();
        queue.push(s as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &w in g.neighbors_raw(u) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = k;
                    queue.push(w);
                }
            }
        }
        k += 1;
    }
    (comp, k as usize)
}

/// The number of vertices reachable from `source`, including `source`.
pub fn reachable_count(g: &Graph, source: usize) -> usize {
    bfs(g, source)
        .dist
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_connected() {
        assert!(is_connected(&Graph::from_edges(0, &[]).unwrap()));
        assert!(is_connected(&Graph::from_edges(1, &[]).unwrap()));
    }

    #[test]
    fn two_isolated_vertices_disconnected() {
        assert!(!is_connected(&Graph::from_edges(2, &[]).unwrap()));
    }

    #[test]
    fn path_connected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn components_count_and_labels() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        let (comp, k) = components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[2], comp[5]);
    }

    #[test]
    fn reachable_counts() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(reachable_count(&g, 0), 3);
        assert_eq!(reachable_count(&g, 3), 1);
    }
}
