//! Exact Hamiltonian-circuit search for small graphs.
//!
//! §1 of the paper motivates the gossiping algorithm with the Hamiltonian
//! circuit schedule (Fig 1): a circuit yields an optimal `n - 1` round
//! schedule, but *finding* one is NP-complete. This module provides a
//! backtracking solver with degree-based pruning — exponential in the worst
//! case, entirely adequate for the paper-scale instances (rings, the
//! Petersen graph) used in the experiments, including proving the Petersen
//! graph has *no* Hamiltonian circuit.

use crate::graph::Graph;

/// Searches for a Hamiltonian circuit.
///
/// Returns the circuit as a vertex sequence of length `n` (the closing edge
/// back to the first vertex is implicit), or `None` if no circuit exists.
/// The search is exact: `None` is a proof of non-Hamiltonicity.
///
/// `n < 3` never has a circuit (the communication model needs a cycle of
/// distinct vertices).
///
/// # Examples
///
/// ```
/// use gossip_graph::{Graph, find_hamiltonian_circuit};
///
/// let ring = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
/// let c = find_hamiltonian_circuit(&ring).unwrap();
/// assert_eq!(c.len(), 5);
/// ```
pub fn find_hamiltonian_circuit(g: &Graph) -> Option<Vec<usize>> {
    let n = g.n();
    if n < 3 {
        return None;
    }
    // A circuit needs minimum degree 2.
    if g.min_degree() < 2 {
        return None;
    }
    let mut path = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    path.push(0usize);
    visited[0] = true;
    if extend(g, &mut path, &mut visited, n) {
        Some(path)
    } else {
        None
    }
}

fn extend(g: &Graph, path: &mut Vec<usize>, visited: &mut [bool], n: usize) -> bool {
    if path.len() == n {
        return g.has_edge(*path.last().unwrap(), path[0]);
    }
    let last = *path.last().unwrap();
    for &w in g.neighbors_raw(last) {
        let w = w as usize;
        if visited[w] {
            continue;
        }
        // Prune: an unvisited vertex (other than an endpoint candidate) whose
        // unvisited+endpoint degree drops below 2 can never be traversed.
        visited[w] = true;
        path.push(w);
        if prune_ok(g, path, visited, n) && extend(g, path, visited, n) {
            return true;
        }
        path.pop();
        visited[w] = false;
    }
    false
}

/// Cheap feasibility check: every unvisited vertex must retain at least two
/// usable neighbours (unvisited, or one of the two path endpoints).
fn prune_ok(g: &Graph, path: &[usize], visited: &[bool], n: usize) -> bool {
    if path.len() + 2 > n {
        return true; // too close to completion for the bound to fire safely
    }
    let start = path[0];
    let end = *path.last().unwrap();
    for v in 0..n {
        if visited[v] {
            continue;
        }
        let mut usable = 0;
        for &w in g.neighbors_raw(v) {
            let w = w as usize;
            if !visited[w] || w == start || w == end {
                usable += 1;
                if usable >= 2 {
                    break;
                }
            }
        }
        if usable < 2 {
            return false;
        }
    }
    true
}

/// Whether `g` has a Hamiltonian circuit (exact).
pub fn is_hamiltonian(g: &Graph) -> bool {
    find_hamiltonian_circuit(g).is_some()
}

/// Validates a purported circuit: `n` distinct vertices, consecutive edges
/// present, closing edge present.
pub fn verify_circuit(g: &Graph, circuit: &[usize]) -> bool {
    let n = g.n();
    if circuit.len() != n || n < 3 {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in circuit {
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    for w in circuit.windows(2) {
        if !g.has_edge(w[0], w[1]) {
            return false;
        }
    }
    g.has_edge(circuit[n - 1], circuit[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    fn petersen() -> Graph {
        // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
        let mut edges = Vec::new();
        for i in 0..5 {
            edges.push((i, (i + 1) % 5));
            edges.push((5 + i, 5 + (i + 2) % 5));
            edges.push((i, i + 5));
        }
        Graph::from_edges(10, &edges).unwrap()
    }

    #[test]
    fn ring_has_circuit() {
        for n in 3..10 {
            let g = cycle(n);
            let c = find_hamiltonian_circuit(&g).unwrap();
            assert!(verify_circuit(&g, &c));
        }
    }

    #[test]
    fn path_has_none() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(find_hamiltonian_circuit(&g).is_none());
    }

    #[test]
    fn petersen_not_hamiltonian() {
        // The classical fact the paper leans on for Fig 2.
        assert!(!is_hamiltonian(&petersen()));
    }

    #[test]
    fn complete_graph_hamiltonian() {
        let mut edges = Vec::new();
        for u in 0..7 {
            for v in (u + 1)..7 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(7, &edges).unwrap();
        let c = find_hamiltonian_circuit(&g).unwrap();
        assert!(verify_circuit(&g, &c));
    }

    #[test]
    fn tiny_graphs_none() {
        assert!(find_hamiltonian_circuit(&Graph::from_edges(1, &[]).unwrap()).is_none());
        assert!(find_hamiltonian_circuit(&Graph::from_edges(2, &[(0, 1)]).unwrap()).is_none());
    }

    #[test]
    fn verify_rejects_bad_circuits() {
        let g = cycle(4);
        assert!(!verify_circuit(&g, &[0, 1, 2])); // wrong length
        assert!(!verify_circuit(&g, &[0, 1, 1, 2])); // repeat
        assert!(!verify_circuit(&g, &[0, 2, 1, 3])); // non-edge hop
        assert!(verify_circuit(&g, &[0, 1, 2, 3]));
    }

    #[test]
    fn grid_2x3_hamiltonian() {
        // 0-1-2 / 3-4-5 grid has circuit 0,1,2,5,4,3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)])
            .unwrap();
        let c = find_hamiltonian_circuit(&g).unwrap();
        assert!(verify_circuit(&g, &c));
    }
}
