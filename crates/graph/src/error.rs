//! Error types for graph construction and queries.

use std::fmt;

/// Errors produced by graph construction and graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex id `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the communication model has no use
    /// for a processor linked to itself.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: usize,
    },
    /// The same undirected edge was supplied more than once.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// An operation that requires a connected graph was invoked on a
    /// disconnected one (gossiping is impossible across components).
    Disconnected,
    /// An operation that requires at least one vertex was invoked on an
    /// empty graph.
    EmptyGraph,
    /// A tree operation was given a structure that is not a tree
    /// (wrong edge count or a cycle).
    NotATree {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptyGraph => write!(f, "graph has no vertices"),
            GraphError::NotATree { reason } => write!(f, "not a tree: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}
