//! Breadth-first search: distances, parents, traversal orders.
//!
//! BFS is the workhorse of the paper's §3.1: the minimum-depth spanning tree
//! is found by one BFS per vertex. The result type here records everything a
//! single sweep learns — hop distances, BFS-tree parents, and the visit
//! order — so callers never re-run a sweep for a second quantity.

use crate::graph::Graph;

/// Sentinel distance for vertices unreachable from the BFS source.
pub const UNREACHABLE: u32 = u32::MAX;

/// The result of one BFS sweep from a source vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// The source vertex of the sweep.
    pub source: usize,
    /// `dist[v]` = hop distance from the source, or [`UNREACHABLE`].
    pub dist: Vec<u32>,
    /// `parent[v]` = predecessor of `v` in the BFS tree; `parent[source]`
    /// and parents of unreachable vertices are `u32::MAX`.
    pub parent: Vec<u32>,
    /// Vertices in visit order (the source first). Unreachable vertices do
    /// not appear.
    pub order: Vec<u32>,
}

impl BfsResult {
    /// The eccentricity of the source: the largest finite distance.
    ///
    /// Returns `None` if some vertex is unreachable (eccentricity is then
    /// infinite, and the graph cannot gossip at all).
    pub fn eccentricity(&self) -> Option<u32> {
        let mut max = 0;
        for &d in &self.dist {
            if d == UNREACHABLE {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    }

    /// Whether every vertex was reached.
    pub fn all_reached(&self) -> bool {
        self.order.len() == self.dist.len()
    }

    /// Reconstructs the path from the source to `v` (inclusive of both), or
    /// `None` if `v` was not reached.
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        if self.dist[v] == UNREACHABLE {
            return None;
        }
        let mut path = Vec::with_capacity(self.dist[v] as usize + 1);
        let mut cur = v;
        path.push(cur);
        while cur != self.source {
            cur = self.parent[cur] as usize;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Runs BFS from `source`, allocating fresh result buffers.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
///
/// # Examples
///
/// ```
/// use gossip_graph::{Graph, bfs};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let r = bfs(&g, 0);
/// assert_eq!(r.dist, vec![0, 1, 2, 3]);
/// assert_eq!(r.eccentricity(), Some(3));
/// assert_eq!(r.path_to(3), Some(vec![0, 1, 2, 3]));
/// ```
pub fn bfs(g: &Graph, source: usize) -> BfsResult {
    assert!(
        source < g.n(),
        "BFS source {source} out of range (n = {})",
        g.n()
    );
    let n = g.n();
    let mut result = BfsResult {
        source,
        dist: vec![UNREACHABLE; n],
        parent: vec![u32::MAX; n],
        order: Vec::with_capacity(n),
    };
    bfs_into(g, source, &mut result);
    result
}

/// Runs BFS from `source`, reusing the buffers inside `out`.
///
/// This is the allocation-free kernel used by the n-source sweep in
/// [`crate::spanning`]: buffers are cleared and refilled rather than
/// reallocated, per the "reuse workhorse collections" guidance for hot
/// loops.
pub fn bfs_into(g: &Graph, source: usize, out: &mut BfsResult) {
    let n = g.n();
    out.source = source;
    out.dist.clear();
    out.dist.resize(n, UNREACHABLE);
    out.parent.clear();
    out.parent.resize(n, u32::MAX);
    out.order.clear();
    out.order.reserve(n);

    out.dist[source] = 0;
    out.order.push(source as u32);
    // `order` doubles as the FIFO queue: `head` chases the push cursor.
    let mut head = 0;
    while head < out.order.len() {
        let u = out.order[head] as usize;
        head += 1;
        let du = out.dist[u];
        for &w in g.neighbors_raw(u) {
            let w_us = w as usize;
            if out.dist[w_us] == UNREACHABLE {
                out.dist[w_us] = du + 1;
                out.parent[w_us] = u as u32;
                out.order.push(w);
            }
        }
    }
    // One counter update per sweep (not per vertex): attributes the whole
    // frontier to whatever profiler phase is active, a no-op otherwise.
    gossip_telemetry::profile::count("frontier_popped", out.order.len() as u64);
}

/// Hop distance between two vertices, or `None` if disconnected.
pub fn distance(g: &Graph, u: usize, v: usize) -> Option<u32> {
    let r = bfs(g, u);
    match r.dist[v] {
        UNREACHABLE => None,
        d => Some(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn distances_on_path() {
        let r = bfs(&path5(), 2);
        assert_eq!(r.dist, vec![2, 1, 0, 1, 2]);
        assert_eq!(r.eccentricity(), Some(2));
    }

    #[test]
    fn parents_form_tree() {
        let r = bfs(&path5(), 0);
        assert_eq!(r.parent[0], u32::MAX);
        for v in 1..5 {
            assert_eq!(r.parent[v], (v - 1) as u32);
        }
    }

    #[test]
    fn order_is_level_monotone() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (4, 5)]).unwrap();
        let r = bfs(&g, 0);
        for w in r.order.windows(2) {
            assert!(r.dist[w[0] as usize] <= r.dist[w[1] as usize]);
        }
    }

    #[test]
    fn disconnected_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let r = bfs(&g, 0);
        assert_eq!(r.dist[2], UNREACHABLE);
        assert_eq!(r.eccentricity(), None);
        assert!(!r.all_reached());
        assert_eq!(r.path_to(3), None);
    }

    #[test]
    fn bfs_into_reuses_buffers() {
        let g = path5();
        let mut r = bfs(&g, 0);
        bfs_into(&g, 4, &mut r);
        assert_eq!(r.source, 4);
        assert_eq!(r.dist, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn pairwise_distance() {
        let g = path5();
        assert_eq!(distance(&g, 0, 4), Some(4));
        assert_eq!(distance(&g, 3, 3), Some(0));
    }

    #[test]
    fn path_reconstruction_on_cycle() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let r = bfs(&g, 0);
        let p = r.path_to(3).unwrap();
        assert_eq!(p.len(), 4); // distance 3 either way round
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 3);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }
}
