//! Minimum-depth spanning tree construction (the paper's §3.1).
//!
//! "Such a tree can be easily constructed by performing n breadth-first
//! search (BFS) traversals of the graph starting at each vertex and then
//! selecting the tree with least height (or depth). This procedure takes
//! O(mn) time."
//!
//! The height of the winning tree equals the graph radius `r`, and its root
//! is a center vertex: the BFS tree from `v` has height = eccentricity(`v`),
//! minimized over center vertices. Both a sequential sweep and a
//! rayon-parallel sweep (one independent BFS per task) are provided; they
//! return identical trees because ties are broken by the smallest root id in
//! both.

use crate::bfs::{bfs, bfs_into};
use crate::error::GraphError;
use crate::graph::Graph;
use crate::tree::{RootedTree, NO_PARENT};
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt};
use rayon::prelude::*;
use std::time::Instant;

pub mod fast;

/// How child order is fixed when a BFS parent forest is turned into a
/// [`RootedTree`].
///
/// The paper allows "any arbitrary order"; the schedule length is `n + r`
/// regardless, but the concrete schedule differs, so reproducible builds fix
/// the order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChildOrder {
    /// Children sorted by ascending vertex id (deterministic, the default).
    #[default]
    ById,
    /// Children sorted by descending subtree size (largest subtree first).
    /// Exposed for schedule-shape experiments; still deterministic.
    LargestSubtreeFirst,
}

/// Builds the BFS spanning tree of `g` rooted at `root`.
///
/// Errors with [`GraphError::Disconnected`] if `g` is not connected and
/// [`GraphError::EmptyGraph`] on zero vertices.
pub fn bfs_tree(g: &Graph, root: usize, order: ChildOrder) -> Result<RootedTree, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let r = bfs(g, root);
    if !r.all_reached() {
        return Err(GraphError::Disconnected);
    }
    parents_to_tree(root, &r.parent, order)
}

/// Finds a spanning tree of minimum possible height: one BFS per vertex,
/// keep the shallowest (ties to the smallest root id). Sequential sweep.
///
/// The returned tree's height equals the radius of `g`.
pub fn min_depth_spanning_tree(g: &Graph, order: ChildOrder) -> Result<RootedTree, GraphError> {
    min_depth_spanning_tree_recorded(g, order, &NoopRecorder)
}

/// [`min_depth_spanning_tree`] with telemetry: one `spanning_tree` span,
/// a `spanning/bfs_sweep_ns` histogram sample per BFS sweep, sweep /
/// early-exit counters, and a `spanning/radius` gauge.
pub fn min_depth_spanning_tree_recorded(
    g: &Graph,
    order: ChildOrder,
    recorder: &dyn Recorder,
) -> Result<RootedTree, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let _span = recorder.span("spanning_tree");
    let _phase = gossip_telemetry::profile::phase("tree");
    let radius_floor = {
        let _p = gossip_telemetry::profile::phase("radius_bound");
        lower_radius_bound(g)
    };
    let mut scratch = bfs(g, 0);
    let mut best: Option<(u32, usize, Vec<u32>)> = None;
    let mut sweeps = 0u64;
    for v in 0..g.n() {
        let t0 = recorder.enabled().then(Instant::now);
        {
            let _sweep = gossip_telemetry::profile::phase("bfs_sweep");
            bfs_into(g, v, &mut scratch);
        }
        if let Some(t0) = t0 {
            recorder.observe("spanning/bfs_sweep_ns", t0.elapsed().as_nanos() as f64);
        }
        sweeps += 1;
        let ecc = scratch.eccentricity().ok_or(GraphError::Disconnected)?;
        let better = match &best {
            None => true,
            Some((best_ecc, _, _)) => ecc < *best_ecc,
        };
        if better {
            best = Some((ecc, v, scratch.parent.clone()));
            if ecc == radius_floor {
                // Cannot do better than a known lower bound; stop early.
                recorder.counter("spanning/early_exit", 1);
                break;
            }
        }
    }
    let (radius, root, parent) = best.expect("n > 0");
    gossip_telemetry::profile::count("bfs_sweeps", sweeps);
    if recorder.enabled() {
        recorder.counter("spanning/sweeps", sweeps);
        recorder.gauge("spanning/radius", f64::from(radius));
        recorder.event(
            "spanning_tree",
            &[
                (
                    "mode",
                    gossip_telemetry::Value::String("sequential".to_string()),
                ),
                ("sweeps", gossip_telemetry::Value::from_u64(sweeps)),
                (
                    "radius",
                    gossip_telemetry::Value::from_u64(u64::from(radius)),
                ),
                ("root", gossip_telemetry::Value::from_u64(root as u64)),
            ],
        );
    }
    parents_to_tree(root, &parent, order)
}

/// Rayon-parallel variant of [`min_depth_spanning_tree`]: one independent
/// BFS per task, reduced by `(eccentricity, root id)`.
///
/// Produces the identical tree to the sequential sweep.
pub fn min_depth_spanning_tree_parallel(
    g: &Graph,
    order: ChildOrder,
) -> Result<RootedTree, GraphError> {
    min_depth_spanning_tree_parallel_recorded(g, order, &NoopRecorder)
}

/// [`min_depth_spanning_tree_parallel`] with telemetry. Per-sweep timings
/// land in the same `spanning/bfs_sweep_ns` histogram as the sequential
/// sweep (recorded from worker threads; the span covers the whole sweep).
pub fn min_depth_spanning_tree_parallel_recorded(
    g: &Graph,
    order: ChildOrder,
    recorder: &dyn Recorder,
) -> Result<RootedTree, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let _span = recorder.span("spanning_tree_parallel");
    // Distinct phase name from the sequential sweep: the per-sweep work
    // happens on rayon workers, which the thread-local profiler cannot
    // see, so only the calling thread's wall-clock wait is attributed.
    let _phase = gossip_telemetry::profile::phase("tree_par");
    let best = (0..g.n())
        .into_par_iter()
        .map(|v| {
            let t0 = recorder.enabled().then(Instant::now);
            let r = bfs(g, v);
            if let Some(t0) = t0 {
                recorder.observe("spanning/bfs_sweep_ns", t0.elapsed().as_nanos() as f64);
            }
            r.eccentricity()
                .map(|ecc| (ecc, v, r.parent))
                .ok_or(GraphError::Disconnected)
        })
        .try_reduce_with(|a, b| {
            // Smallest (eccentricity, root id) wins, matching sequential
            // tie-breaking exactly.
            Ok(if (b.0, b.1) < (a.0, a.1) { b } else { a })
        })
        .expect("n > 0")?;
    if recorder.enabled() {
        recorder.counter("spanning/sweeps", g.n() as u64);
        recorder.gauge("spanning/radius", f64::from(best.0));
        recorder.event(
            "spanning_tree",
            &[
                (
                    "mode",
                    gossip_telemetry::Value::String("parallel".to_string()),
                ),
                ("sweeps", gossip_telemetry::Value::from_u64(g.n() as u64)),
                (
                    "radius",
                    gossip_telemetry::Value::from_u64(u64::from(best.0)),
                ),
                ("root", gossip_telemetry::Value::from_u64(best.1 as u64)),
            ],
        );
    }
    parents_to_tree(best.1, &best.2, order)
}

/// A cheap lower bound on the radius used for early exit in the sequential
/// sweep: `ceil(diameter_lower / 2)` where `diameter_lower` is the
/// eccentricity of vertex 0 (any eccentricity lower-bounds the diameter,
/// and `r >= ceil(d / 2)` always).
fn lower_radius_bound(g: &Graph) -> u32 {
    match bfs(g, 0).eccentricity() {
        Some(e) => e.div_ceil(2),
        None => 0,
    }
}

pub(crate) fn parents_to_tree(
    root: usize,
    parent: &[u32],
    order: ChildOrder,
) -> Result<RootedTree, GraphError> {
    let _phase = gossip_telemetry::profile::phase("build_tree");
    gossip_telemetry::profile::count("tree_edges", parent.len().saturating_sub(1) as u64);
    let mut parent = parent.to_vec();
    parent[root] = NO_PARENT;
    match order {
        ChildOrder::ById => RootedTree::from_parents(root, &parent),
        ChildOrder::LargestSubtreeFirst => {
            let n = parent.len();
            // Subtree sizes via reverse-level accumulation.
            let tmp = RootedTree::from_parents(root, &parent)?;
            let mut size = vec![1u32; n];
            let mut bfs_order = tmp.bfs_order();
            bfs_order.reverse();
            for v in bfs_order {
                if let Some(p) = tmp.parent(v) {
                    size[p] += size[v];
                }
            }
            let mut children: Vec<Vec<u32>> = (0..n).map(|v| tmp.children(v).to_vec()).collect();
            for kids in &mut children {
                kids.sort_by_key(|&c| (std::cmp::Reverse(size[c as usize]), c));
            }
            RootedTree::from_parents_with_child_order(root, &parent, children)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::radius;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn path_tree_rooted_at_center() {
        let g = path(7);
        let t = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        assert_eq!(t.root(), 3);
        assert_eq!(t.height(), 3);
        assert!(t.is_spanning_tree_of(&g));
    }

    #[test]
    fn tree_height_equals_radius() {
        for g in [path(9), cycle(8), cycle(9), path(2)] {
            let r = radius(&g).unwrap();
            let t = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
            assert_eq!(t.height(), r);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for g in [path(10), cycle(11)] {
            let a = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
            let b = min_depth_spanning_tree_parallel(&g, ChildOrder::ById).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn complete_graph_star_tree() {
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(6, &edges).unwrap();
        let t = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.children(t.root()).len(), 5);
    }

    #[test]
    fn bfs_tree_specific_root() {
        let g = path(5);
        let t = bfs_tree(&g, 0, ChildOrder::ById).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.height(), 4); // not minimum depth: rooted at an end
    }

    #[test]
    fn disconnected_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            min_depth_spanning_tree(&g, ChildOrder::ById).unwrap_err(),
            GraphError::Disconnected
        );
        assert_eq!(
            min_depth_spanning_tree_parallel(&g, ChildOrder::ById).unwrap_err(),
            GraphError::Disconnected
        );
        assert_eq!(
            bfs_tree(&g, 0, ChildOrder::ById).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn empty_errors() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(
            min_depth_spanning_tree(&g, ChildOrder::ById).unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn singleton_tree() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let t = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        assert_eq!(t.n(), 1);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn largest_subtree_first_order() {
        // Path rooted at center: both subtrees are chains; with a lopsided
        // tree the bigger side must come first.
        let g = path(6); // centers 2 and 3; root 2 has sides {0,1} and {3,4,5}
        let t = min_depth_spanning_tree(&g, ChildOrder::LargestSubtreeFirst).unwrap();
        assert_eq!(t.root(), 2);
        let kids = t.children(2);
        assert_eq!(kids[0], 3); // subtree of size 3 before size 2
        assert_eq!(kids[1], 1);
    }

    #[test]
    fn child_order_preserves_height() {
        let g = cycle(10);
        let a = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        let b = min_depth_spanning_tree(&g, ChildOrder::LargestSubtreeFirst).unwrap();
        assert_eq!(a.height(), b.height());
    }
}
