//! Articulation points (cut vertices), via iterative Tarjan lowlink.
//!
//! Cut vertices power the generalized gossip lower bound: every message
//! crossing a cut vertex `c` is serialized through `c`'s single receive
//! slot per round, which extends the paper's straight-line argument
//! (`n + r - 1` on odd paths) to arbitrary graphs.

use crate::graph::Graph;

/// Returns the articulation points of `g`, ascending.
///
/// A vertex is an articulation point if removing it (and its edges)
/// increases the number of connected components. Works per component;
/// isolated vertices are never articulation points.
pub fn articulation_points(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut disc = vec![u32::MAX; n]; // discovery order, MAX = unvisited
    let mut low = vec![u32::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0u32;

    // Iterative DFS frames: (vertex, parent, next neighbour index,
    // child count for roots).
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();

    for start in 0..n {
        if disc[start] != u32::MAX {
            continue;
        }
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        let mut root_children = 0usize;
        stack.push((start, usize::MAX, 0));
        while let Some(&mut (v, parent, ref mut ni)) = stack.last_mut() {
            let nbrs = g.neighbors_raw(v);
            if *ni < nbrs.len() {
                let w = nbrs[*ni] as usize;
                *ni += 1;
                if disc[w] == u32::MAX {
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    if v == start {
                        root_children += 1;
                    }
                    stack.push((w, v, 0));
                } else if w != parent {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[v]);
                    if p != start && low[v] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[start] = true;
        }
    }

    (0..n).filter(|&v| is_cut[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::components;
    use crate::graph::GraphBuilder;

    /// Brute-force check: v is a cut vertex iff deleting it increases the
    /// component count among the remaining vertices.
    fn brute_force(g: &Graph) -> Vec<usize> {
        let n = g.n();
        let (_, base) = components(g);
        let mut cuts = Vec::new();
        for v in 0..n {
            let mut b = GraphBuilder::new(n);
            for (x, y) in g.edges() {
                if x != v && y != v {
                    b.add_edge_unchecked(x, y).unwrap();
                }
            }
            let h = b.build();
            let (comp, k) = components(&h);
            let _ = comp;
            // v itself is now isolated: compare k - 1 against base.
            if k - 1 > base - (g.degree(v) == 0) as usize {
                cuts.push(v);
            }
        }
        cuts
    }

    #[test]
    fn path_interior_vertices_are_cuts() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(articulation_points(&g), vec![1, 2, 3]);
    }

    #[test]
    fn cycle_has_none() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn star_center_is_cut() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(articulation_points(&g), vec![0]);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]).unwrap();
        assert_eq!(articulation_points(&g), vec![2]);
    }

    #[test]
    fn matches_brute_force_on_assorted_graphs() {
        let cases = vec![
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (1, 4), (4, 5)]).unwrap(),
            Graph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 3),
                    (5, 6),
                ],
            )
            .unwrap(),
            Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap(), // disconnected
            Graph::from_edges(3, &[]).unwrap(),               // isolated vertices
            Graph::from_edges(2, &[(0, 1)]).unwrap(),
        ];
        for g in cases {
            assert_eq!(articulation_points(&g), brute_force(&g), "{g:?}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(articulation_points(&g).is_empty());
    }
}
