//! Pruned multi-source minimum-depth spanning tree construction — the fast
//! planner's replacement for the paper's n-sweep §3.1 procedure.
//!
//! The reference sweep runs one scalar BFS per vertex: O(mn), the wall that
//! sheds every `exp_scaling` size above n = 8192. This module finds the same
//! minimum depth (= graph radius) with far fewer sweeps, in three steps:
//!
//! 1. **Double sweep**: BFS from vertex 0, from the farthest vertex `a`
//!    found, and from the farthest vertex `b` from `a`. Each distance array
//!    is a per-vertex eccentricity lower bound (`d(v, x) <= ecc(v)`), so
//!    `lb[v] = max(d0[v], da[v], db[v])` — and `ecc(a)`-style sweep maxima
//!    lower-bound the diameter, giving the radius floor `ceil(diam_lb / 2)`.
//! 2. **Pruned candidate waves**: only vertices with `lb[v]` strictly below
//!    the incumbent eccentricity can still *improve* the tree depth; they
//!    are sorted by `(lb, id)` and evaluated in doubling waves of 64-source
//!    batches. After each wave the incumbent tightens and the remaining
//!    candidates are re-filtered. Pruning `lb >= incumbent` can only discard
//!    equal-depth ties, so the resulting tree height is exactly the radius;
//!    the *root* may differ from the reference sweep's smallest-id choice
//!    when such a tie is pruned (the documented fast-vs-reference contract).
//! 3. **Multi-source bitset BFS**: each batch packs up to 64 sources into
//!    one `u64` word per vertex (the `SimKernel` word-arena idiom) and runs
//!    a push-style expansion over sparse frontier lists: never more work
//!    than 64 scalar sweeps, and on low-diameter graphs each word operation
//!    advances up to 64 frontiers at once.
//!
//! The wave structure (doubling, over the deterministically sorted candidate
//! list) is fixed independent of thread count, and batch results are reduced
//! by exact `(ecc, id)` minima — so the chosen root, and therefore the tree,
//! is byte-identical no matter how many rayon workers run the batches.

use crate::bfs::{bfs, bfs_into};
use crate::error::GraphError;
use crate::graph::Graph;
use crate::spanning::{parents_to_tree, ChildOrder};
use crate::tree::RootedTree;
use gossip_telemetry::{NoopRecorder, Recorder, RecorderExt};
use rayon::prelude::*;

/// Sources per multi-source batch: one bit of a `u64` frontier word each.
const BATCH: usize = 64;

/// Finds a spanning tree of minimum possible height using the pruned
/// multi-source sweep. The returned tree's height equals the radius of `g`;
/// the root may differ from [`crate::min_depth_spanning_tree`]'s only when
/// several vertices tie at the radius (equal-depth tie-breaks).
///
/// Errors with [`GraphError::Disconnected`] / [`GraphError::EmptyGraph`]
/// exactly like the reference sweep.
pub fn min_depth_spanning_tree_fast(
    g: &Graph,
    order: ChildOrder,
) -> Result<RootedTree, GraphError> {
    min_depth_spanning_tree_fast_recorded(g, order, &NoopRecorder)
}

/// [`min_depth_spanning_tree_fast`] with telemetry: a `spanning_tree_fast`
/// span, `tree_fast > double_sweep / ms_bfs / final_bfs / build_tree`
/// profiler phases, and counters for evaluated sweeps, pruned candidates,
/// and multi-source batches.
pub fn min_depth_spanning_tree_fast_recorded(
    g: &Graph,
    order: ChildOrder,
    recorder: &dyn Recorder,
) -> Result<RootedTree, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let _span = recorder.span("spanning_tree_fast");
    let _phase = gossip_telemetry::profile::phase("tree_fast");
    let n = g.n();

    // Step 1: double sweep — 3 scalar BFS giving lower bounds and an
    // initial incumbent, plus the connectivity check.
    let (mut scratch, lb, floor, mut best) = {
        let _p = gossip_telemetry::profile::phase("double_sweep");
        let r0 = bfs(g, 0);
        if !r0.all_reached() {
            return Err(GraphError::Disconnected);
        }
        let ecc0 = r0.eccentricity().expect("all reached");
        let a = farthest(&r0.dist);
        let mut lb = r0.dist;
        let mut scratch = bfs(g, a);
        let ecc_a = scratch.eccentricity().expect("connected");
        let b = farthest(&scratch.dist);
        max_into(&mut lb, &scratch.dist);
        bfs_into(g, b, &mut scratch);
        let ecc_b = scratch.eccentricity().expect("connected");
        max_into(&mut lb, &scratch.dist);
        // Any eccentricity lower-bounds the diameter, and 2r >= diam.
        let diam_lb = ecc0.max(ecc_a).max(ecc_b);
        let floor = diam_lb.div_ceil(2);
        let mut best = (ecc0, 0u32);
        for cand in [(ecc_a, a as u32), (ecc_b, b as u32)] {
            if cand < best {
                best = cand;
            }
        }
        (scratch, lb, floor, best)
    };
    let mut sweeps = 3u64;
    let mut pruned = 0u64;
    let mut batches = 0u64;

    // Step 2 + 3: doubling waves of 64-source batches over the candidates
    // that can still beat the incumbent.
    if best.0 > floor {
        let _p = gossip_telemetry::profile::phase("ms_bfs");
        // The three swept vertices need no re-evaluation: 0 is excluded by
        // id; a and b have lb >= ecc(a) >= incumbent (d(a, b) = ecc(a) is
        // in both bounds), so the lb filter drops them.
        let mut candidates: Vec<u32> = (0..n as u32)
            .filter(|&v| v != 0 && lb[v as usize] < best.0)
            .collect();
        candidates.sort_unstable_by_key(|&v| (lb[v as usize], v));
        let mut wave = 1usize; // in batches
        let mut cursor = 0usize;
        while cursor < candidates.len() && best.0 > floor {
            let take = (wave * BATCH).min(candidates.len() - cursor);
            let batch_list: Vec<&[u32]> = candidates[cursor..cursor + take].chunks(BATCH).collect();
            batches += batch_list.len() as u64;
            sweeps += take as u64;
            let results: Vec<Vec<(u32, u32)>> = batch_list
                .into_par_iter()
                .map(|sources| eval_batch(g, sources))
                .collect();
            for &(ecc, v) in results.iter().flatten() {
                if (ecc, v) < best {
                    best = (ecc, v);
                }
            }
            cursor += take;
            // Re-filter the tail against the tightened incumbent; order is
            // preserved, so the wave structure stays deterministic.
            if cursor < candidates.len() {
                let before = candidates.len();
                let mut w = cursor;
                for r in cursor..candidates.len() {
                    let v = candidates[r];
                    if lb[v as usize] < best.0 {
                        candidates[w] = v;
                        w += 1;
                    }
                }
                candidates.truncate(w);
                pruned += (before - candidates.len()) as u64;
            }
            wave *= 2;
        }
        if best.0 <= floor {
            pruned += (candidates.len() - cursor) as u64;
            recorder.counter("spanning/early_exit", 1);
        }
    } else {
        recorder.counter("spanning/early_exit", 1);
    }

    gossip_telemetry::profile::count("bfs_sweeps", sweeps);
    gossip_telemetry::profile::count("candidates_pruned", pruned);
    gossip_telemetry::profile::count("ms_batches", batches);
    let (radius, root) = best;
    if recorder.enabled() {
        recorder.counter("spanning/sweeps", sweeps);
        recorder.counter("spanning/pruned", pruned);
        recorder.gauge("spanning/radius", f64::from(radius));
        recorder.event(
            "spanning_tree",
            &[
                ("mode", gossip_telemetry::Value::String("fast".to_string())),
                ("sweeps", gossip_telemetry::Value::from_u64(sweeps)),
                ("pruned", gossip_telemetry::Value::from_u64(pruned)),
                (
                    "radius",
                    gossip_telemetry::Value::from_u64(u64::from(radius)),
                ),
                ("root", gossip_telemetry::Value::from_u64(u64::from(root))),
            ],
        );
    }

    // Final scalar sweep from the winner gives the parent array — the same
    // BFS the reference runs, so equal roots mean byte-identical trees.
    {
        let _p = gossip_telemetry::profile::phase("final_bfs");
        bfs_into(g, root as usize, &mut scratch);
    }
    debug_assert_eq!(scratch.eccentricity(), Some(radius));
    parents_to_tree(root as usize, &scratch.parent, order)
}

/// Index of the first maximum in a distance array (ties to smallest id).
fn farthest(dist: &[u32]) -> usize {
    let mut arg = 0usize;
    for (v, &d) in dist.iter().enumerate() {
        if d > dist[arg] {
            arg = v;
        }
    }
    arg
}

fn max_into(lb: &mut [u32], dist: &[u32]) {
    for (l, &d) in lb.iter_mut().zip(dist) {
        if d > *l {
            *l = d;
        }
    }
}

/// One multi-source bitset BFS over up to 64 sources: returns `(ecc, source)`
/// pairs. Push-style expansion over sparse frontier lists with one `u64`
/// frontier/visited word per vertex — at most the work of 64 scalar sweeps,
/// and one word op per up-to-64 frontiers on low-diameter graphs.
///
/// Assumes `g` is connected (the caller's double sweep verified it).
fn eval_batch(g: &Graph, sources: &[u32]) -> Vec<(u32, u32)> {
    let n = g.n();
    debug_assert!(!sources.is_empty() && sources.len() <= BATCH);
    let mut visited = vec![0u64; n];
    let mut frontier = vec![0u64; n];
    let mut next = vec![0u64; n];
    let mut frontier_list: Vec<u32> = Vec::with_capacity(sources.len());
    let mut next_list: Vec<u32> = Vec::with_capacity(n.min(4 * sources.len()));
    let mut ecc = vec![0u32; sources.len()];

    for (idx, &s) in sources.iter().enumerate() {
        let bit = 1u64 << idx;
        visited[s as usize] |= bit;
        frontier[s as usize] |= bit;
        frontier_list.push(s);
    }
    let mut level = 0u32;
    loop {
        next_list.clear();
        for &u in &frontier_list {
            let fu = frontier[u as usize];
            for &w in g.neighbors_raw(u as usize) {
                let w_us = w as usize;
                let new = fu & !visited[w_us];
                if new != 0 {
                    if next[w_us] == 0 {
                        next_list.push(w);
                    }
                    next[w_us] |= new;
                }
            }
        }
        if next_list.is_empty() {
            break;
        }
        level += 1;
        let mut progressed = 0u64;
        for &w in &next_list {
            let w_us = w as usize;
            let nw = next[w_us];
            visited[w_us] |= nw;
            progressed |= nw;
        }
        let mut bits = progressed;
        while bits != 0 {
            let idx = bits.trailing_zeros() as usize;
            ecc[idx] = level;
            bits &= bits - 1;
        }
        // Clear the old frontier words (sparse: only listed vertices are
        // nonzero) and swap the arenas for the next level.
        for &u in &frontier_list {
            frontier[u as usize] = 0;
        }
        std::mem::swap(&mut frontier, &mut next);
        std::mem::swap(&mut frontier_list, &mut next_list);
    }
    for &u in &frontier_list {
        frontier[u as usize] = 0;
    }
    gossip_telemetry::profile::count("frontier_popped", u64::from(level) * sources.len() as u64);
    sources
        .iter()
        .enumerate()
        .map(|(idx, &s)| (ecc[idx], s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::radius;
    use crate::spanning::min_depth_spanning_tree;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    fn grid(rows: usize, cols: usize) -> Graph {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols));
                }
            }
        }
        Graph::from_edges(rows * cols, &edges).unwrap()
    }

    #[test]
    fn height_equals_radius_on_structured_graphs() {
        for g in [
            path(2),
            path(9),
            path(64),
            cycle(8),
            cycle(9),
            cycle(130),
            grid(5, 7),
            grid(9, 9),
        ] {
            let r = radius(&g).unwrap();
            let t = min_depth_spanning_tree_fast(&g, ChildOrder::ById).unwrap();
            assert_eq!(t.height(), r, "radius mismatch");
            assert!(t.is_spanning_tree_of(&g));
        }
    }

    #[test]
    fn matches_reference_height_on_star_and_complete() {
        let mut edges = Vec::new();
        for u in 0..9 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let complete = Graph::from_edges(9, &edges).unwrap();
        let star = Graph::from_edges(7, &(1..7).map(|v| (0, v)).collect::<Vec<_>>()).unwrap();
        for g in [complete, star] {
            let a = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
            let b = min_depth_spanning_tree_fast(&g, ChildOrder::ById).unwrap();
            assert_eq!(a.height(), b.height());
        }
    }

    #[test]
    fn repeated_runs_are_identical() {
        let g = grid(8, 13);
        let a = min_depth_spanning_tree_fast(&g, ChildOrder::ById).unwrap();
        for _ in 0..3 {
            assert_eq!(
                a,
                min_depth_spanning_tree_fast(&g, ChildOrder::ById).unwrap()
            );
        }
    }

    #[test]
    fn disconnected_and_empty_error() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            min_depth_spanning_tree_fast(&g, ChildOrder::ById).unwrap_err(),
            GraphError::Disconnected
        );
        let e = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(
            min_depth_spanning_tree_fast(&e, ChildOrder::ById).unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn singleton_and_pair() {
        let g1 = Graph::from_edges(1, &[]).unwrap();
        let t1 = min_depth_spanning_tree_fast(&g1, ChildOrder::ById).unwrap();
        assert_eq!((t1.n(), t1.height()), (1, 0));
        let g2 = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let t2 = min_depth_spanning_tree_fast(&g2, ChildOrder::ById).unwrap();
        assert_eq!(t2.height(), 1);
    }

    #[test]
    fn batch_eccentricities_are_exact() {
        // Every vertex of a 6x5 grid, in odd-sized batches, vs scalar BFS.
        let g = grid(6, 5);
        let all: Vec<u32> = (0..g.n() as u32).collect();
        for chunk in all.chunks(7) {
            for (ecc, v) in eval_batch(&g, chunk) {
                assert_eq!(Some(ecc), bfs(&g, v as usize).eccentricity(), "v = {v}");
            }
        }
    }

    #[test]
    fn child_order_is_respected() {
        let g = path(6);
        let t = min_depth_spanning_tree_fast(&g, ChildOrder::LargestSubtreeFirst).unwrap();
        assert_eq!(t.height(), radius(&g).unwrap());
    }
}
