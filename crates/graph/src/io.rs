//! Plain-text graph I/O: the ubiquitous edge-list format.
//!
//! Format: an optional header line `n <count>`, then one `u v` pair per
//! line. `#`-prefixed lines and blank lines are comments. Without a header
//! the vertex count is `max id + 1`. This lets the CLI and experiments
//! ingest graphs from any external tool without a JSON round trip.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use std::fmt;

/// Errors from parsing the edge-list text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The edges violated graph validity (self-loop, duplicate, range).
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: cannot parse {content:?}")
            }
            ParseError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parses the edge-list text format.
///
/// # Examples
///
/// ```
/// use gossip_graph::io::parse_edge_list;
///
/// let g = parse_edge_list("n 4\n# a square\n0 1\n1 2\n2 3\n3 0\n").unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_id = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || ParseError::BadLine {
            line: idx + 1,
            content: raw.to_string(),
        };
        let mut parts = line.split_whitespace();
        let first = parts.next().ok_or_else(bad)?;
        if first == "n" {
            let v = parts.next().ok_or_else(bad)?;
            declared_n = Some(v.parse().map_err(|_| bad())?);
            if parts.next().is_some() {
                return Err(bad());
            }
            continue;
        }
        let u: usize = first.parse().map_err(|_| bad())?;
        let v: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Writes the edge-list text format (with an `n` header, so isolated
/// vertices survive a round trip).
pub fn write_edge_list(g: &Graph) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(16 + 8 * g.m());
    let _ = writeln!(out, "n {}", g.n());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let text = write_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn header_preserves_isolated_vertices() {
        let g = parse_edge_list("n 5\n0 1\n").unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn infers_n_without_header() {
        let g = parse_edge_list("0 3\n1 2\n").unwrap();
        assert_eq!(g.n(), 4);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = parse_edge_list("# hi\n\n  \n0 1\n# bye\n").unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse_edge_list("0 x\n"),
            Err(ParseError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("0 1 2\n"),
            Err(ParseError::BadLine { .. })
        ));
        assert!(matches!(
            parse_edge_list("n\n"),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn rejects_invalid_graphs() {
        assert!(matches!(
            parse_edge_list("1 1\n"),
            Err(ParseError::Graph(_))
        ));
        assert!(matches!(
            parse_edge_list("n 2\n0 5\n"),
            Err(ParseError::Graph(_))
        ));
        assert!(matches!(
            parse_edge_list("0 1\n1 0\n"),
            Err(ParseError::Graph(_))
        ));
    }
}
