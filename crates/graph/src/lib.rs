//! # gossip-graph
//!
//! Graph substrate for the `multigossip` workspace — the structures and
//! traversals required by Gonzalez's gossiping algorithm (IPPS 2001 /
//! TPDS 2004):
//!
//! - [`Graph`]: compact CSR simple undirected graphs;
//! - [`bfs()`](bfs()) / [`BfsResult`]: breadth-first sweeps with reusable buffers;
//! - [`DistanceMetrics`]: eccentricities, radius `r`, diameter, center;
//! - [`RootedTree`]: rooted trees with levels `k`, DFS preorder labels `i`,
//!   and subtree ranges `[i, j]` — the exact quantities the scheduling
//!   algorithms consume;
//! - [`min_depth_spanning_tree`]: the paper's §3.1 construction (n BFS
//!   sweeps, keep the shallowest; sequential and rayon-parallel);
//! - [`min_depth_spanning_tree_fast`]: the pruned multi-source bitset sweep
//!   (double-sweep eccentricity bounds + 64-source `u64` frontiers) that
//!   reaches the same radius with far fewer than n sweeps;
//! - [`find_hamiltonian_circuit`]: exact search backing the Fig 1 / Fig 2
//!   discussion.
//!
//! ```
//! use gossip_graph::{Graph, min_depth_spanning_tree, ChildOrder};
//!
//! // A 6-cycle: radius 3, so the minimum-depth spanning tree has height 3.
//! let g = Graph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5),(5,0)]).unwrap();
//! let t = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
//! assert_eq!(t.height(), 3);
//! assert!(t.is_spanning_tree_of(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod articulation;
pub mod bfs;
pub mod bipartite;
pub mod connectivity;
pub mod error;
pub mod graph;
pub mod hamiltonian;
pub mod io;
pub mod metrics;
pub mod render;
pub mod spanning;
pub mod tree;

pub use articulation::articulation_points;
pub use bfs::{bfs, bfs_into, distance, BfsResult, UNREACHABLE};
pub use bipartite::{bipartiteness, is_bipartite, Bipartiteness};
pub use connectivity::{components, is_connected, reachable_count};
pub use error::GraphError;
pub use graph::{Graph, GraphBuilder};
pub use hamiltonian::{find_hamiltonian_circuit, is_hamiltonian, verify_circuit};
pub use io::{parse_edge_list, write_edge_list};
pub use metrics::{
    all_pairs_distances, bfs_from_all_sources, diameter, distance_metrics,
    distance_metrics_parallel, radius, DistanceMetrics,
};
pub use render::render_tree;
pub use spanning::fast::{min_depth_spanning_tree_fast, min_depth_spanning_tree_fast_recorded};
pub use spanning::{
    bfs_tree, min_depth_spanning_tree, min_depth_spanning_tree_parallel,
    min_depth_spanning_tree_parallel_recorded, min_depth_spanning_tree_recorded, ChildOrder,
};
pub use tree::{RootedTree, NO_PARENT};
