//! Rooted trees with levels, DFS preorder, and subtree ranges.
//!
//! The paper's algorithms run entirely on a rooted spanning tree. Every
//! quantity they consume lives here:
//!
//! - the **level** `k` of each vertex (root = 0),
//! - the **DFS preorder label** `i` of each vertex (root = 0; children are
//!   visited in their stored order, so labels inside a subtree are
//!   contiguous),
//! - the **subtree range** `[i, j]`: the labels of the vertices (and hence
//!   messages) originating in the subtree rooted at the vertex.
//!
//! The type is indexed by *original* vertex ids; label-indexed views are
//! provided for the scheduling crate, which works in label space throughout.

use crate::error::GraphError;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Sentinel parent for the root.
pub const NO_PARENT: u32 = u32::MAX;

/// A rooted tree over vertices `0..n`, with precomputed levels, DFS preorder
/// labels, and subtree label ranges.
///
/// Construct with [`RootedTree::from_parents`] (child order = ascending
/// vertex id) or [`RootedTree::from_parents_with_child_order`].
///
/// # Examples
///
/// ```
/// use gossip_graph::RootedTree;
///
/// // A path 0 - 1 - 2 rooted at 1.
/// let t = RootedTree::from_parents(1, &[1, u32::MAX, 1]).unwrap();
/// assert_eq!(t.root(), 1);
/// assert_eq!(t.level(0), 1);
/// assert_eq!(t.height(), 1);
/// assert_eq!(t.label(1), 0);           // root gets preorder label 0
/// assert_eq!(t.subtree_range(1), (0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RootedTree {
    root: usize,
    /// `parent[v]`, [`NO_PARENT`] for the root.
    parent: Vec<u32>,
    /// Children of each vertex, in the fixed order used by the DFS labeling.
    children: Vec<Vec<u32>>,
    /// `level[v]` = depth of `v` (root = 0).
    level: Vec<u32>,
    /// `label[v]` = DFS preorder index of `v`.
    label: Vec<u32>,
    /// `vertex_of_label[i]` = vertex with preorder label `i`.
    vertex_of_label: Vec<u32>,
    /// `range_end[v]` = largest label in `v`'s subtree (the start is
    /// `label[v]` itself, by preorder contiguity).
    range_end: Vec<u32>,
    /// Tree height = maximum level.
    height: u32,
}

impl RootedTree {
    /// Builds a rooted tree from a parent array; children are ordered by
    /// ascending vertex id.
    ///
    /// `parent[root]` must be [`NO_PARENT`]; every other entry must be a
    /// valid vertex. Rejects structures with the wrong edge count, cycles,
    /// or vertices not reachable from the root.
    pub fn from_parents(root: usize, parent: &[u32]) -> Result<Self, GraphError> {
        let n = parent.len();
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, &p) in parent.iter().enumerate() {
            if v == root {
                if p != NO_PARENT {
                    return Err(GraphError::NotATree {
                        reason: format!("root {root} has parent {p}"),
                    });
                }
                continue;
            }
            if p == NO_PARENT {
                return Err(GraphError::NotATree {
                    reason: format!("non-root vertex {v} has no parent"),
                });
            }
            if p as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: p as usize,
                    n,
                });
            }
            children[p as usize].push(v as u32);
        }
        Self::assemble(root, parent.to_vec(), children)
    }

    /// Builds a rooted tree from a parent array with an explicit child order
    /// per vertex.
    ///
    /// The paper fixes "the ordering of the subtrees in any arbitrary
    /// order"; the DFS labels — and therefore the entire communication
    /// schedule — depend on that order, so reproducing a specific paper
    /// figure requires passing its child order explicitly.
    pub fn from_parents_with_child_order(
        root: usize,
        parent: &[u32],
        children: Vec<Vec<u32>>,
    ) -> Result<Self, GraphError> {
        let n = parent.len();
        if children.len() != n {
            return Err(GraphError::NotATree {
                reason: format!(
                    "children table has {} rows for {n} vertices",
                    children.len()
                ),
            });
        }
        // The explicit children table must be consistent with the parents.
        let mut seen = vec![false; n];
        for (p, kids) in children.iter().enumerate() {
            for &c in kids {
                let c_us = c as usize;
                if c_us >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: c_us, n });
                }
                if parent[c_us] != p as u32 {
                    return Err(GraphError::NotATree {
                        reason: format!(
                            "child table lists {c_us} under {p}, parent array says {}",
                            parent[c_us]
                        ),
                    });
                }
                if seen[c_us] {
                    return Err(GraphError::NotATree {
                        reason: format!("vertex {c_us} listed as a child twice"),
                    });
                }
                seen[c_us] = true;
            }
        }
        for (v, &was_seen) in seen.iter().enumerate().take(n) {
            if v != root && !was_seen {
                return Err(GraphError::NotATree {
                    reason: format!("vertex {v} missing from the child table"),
                });
            }
        }
        Self::assemble(root, parent.to_vec(), children)
    }

    fn assemble(
        root: usize,
        parent: Vec<u32>,
        children: Vec<Vec<u32>>,
    ) -> Result<Self, GraphError> {
        let n = parent.len();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if root >= n {
            return Err(GraphError::VertexOutOfRange { vertex: root, n });
        }

        let mut level = vec![0u32; n];
        let mut label = vec![u32::MAX; n];
        let mut vertex_of_label = vec![u32::MAX; n];
        let mut range_end = vec![0u32; n];
        let mut height = 0u32;

        // Iterative DFS preorder. Each frame is (vertex, next-child-index);
        // on last visit of a frame we know the subtree's maximum label.
        let mut stack: Vec<(u32, usize)> = Vec::with_capacity(64);
        label[root] = 0;
        vertex_of_label[0] = root as u32;
        let mut next_label = 1u32;
        stack.push((root as u32, 0));
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            let v_us = v as usize;
            if *ci < children[v_us].len() {
                let c = children[v_us][*ci];
                *ci += 1;
                let c_us = c as usize;
                if label[c_us] != u32::MAX {
                    return Err(GraphError::NotATree {
                        reason: format!("vertex {c_us} reached twice (cycle)"),
                    });
                }
                level[c_us] = level[v_us] + 1;
                height = height.max(level[c_us]);
                label[c_us] = next_label;
                vertex_of_label[next_label as usize] = c;
                next_label += 1;
                stack.push((c, 0));
            } else {
                range_end[v_us] = next_label - 1;
                stack.pop();
            }
        }
        if next_label as usize != n {
            return Err(GraphError::NotATree {
                reason: format!("only {next_label} of {n} vertices reachable from root"),
            });
        }
        Ok(RootedTree {
            root,
            parent,
            children,
            level,
            label,
            vertex_of_label,
            range_end,
            height,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: usize) -> Option<usize> {
        match self.parent[v] {
            NO_PARENT => None,
            p => Some(p as usize),
        }
    }

    /// Children of `v` in DFS order.
    #[inline]
    pub fn children(&self, v: usize) -> &[u32] {
        &self.children[v]
    }

    /// Depth of `v`; the root is at level 0. This is the paper's `k`.
    #[inline]
    pub fn level(&self, v: usize) -> u32 {
        self.level[v]
    }

    /// Tree height (maximum level). Equals the network radius when the tree
    /// is a minimum-depth spanning tree rooted at a center vertex.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// DFS preorder label of `v`. This is the paper's message number `i`:
    /// the message originating at `v` is labeled `label(v)`.
    #[inline]
    pub fn label(&self, v: usize) -> u32 {
        self.label[v]
    }

    /// The vertex whose preorder label is `i`.
    #[inline]
    pub fn vertex_of_label(&self, i: u32) -> usize {
        self.vertex_of_label[i as usize] as usize
    }

    /// The label range `(i, j)` of `v`'s subtree: the messages originating
    /// at `v` or below are exactly `i..=j`, with `i = label(v)`.
    #[inline]
    pub fn subtree_range(&self, v: usize) -> (u32, u32) {
        (self.label[v], self.range_end[v])
    }

    /// Whether `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: usize) -> bool {
        self.children[v].is_empty()
    }

    /// Size of `v`'s subtree (including `v`).
    #[inline]
    pub fn subtree_size(&self, v: usize) -> usize {
        (self.range_end[v] - self.label[v] + 1) as usize
    }

    /// Vertices in DFS preorder (i.e. ascending label).
    pub fn preorder(&self) -> impl Iterator<Item = usize> + '_ {
        self.vertex_of_label.iter().map(|&v| v as usize)
    }

    /// Vertices in BFS order from the root (level-monotone). Useful when a
    /// computation needs parents resolved before children.
    pub fn bfs_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.n());
        order.push(self.root);
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            order.extend(self.children[v].iter().map(|&c| c as usize));
        }
        order
    }

    /// The tree's edges as an undirected [`Graph`] (the "tree network" the
    /// paper performs all communications in).
    pub fn to_graph(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.n().saturating_sub(1));
        for v in 0..self.n() {
            if let Some(p) = self.parent(v) {
                edges.push((p, v));
            }
        }
        Graph::from_edges(self.n(), &edges).expect("tree edges are valid")
    }

    /// Checks that every tree edge exists in `g`, i.e. this is a spanning
    /// tree of `g`.
    pub fn is_spanning_tree_of(&self, g: &Graph) -> bool {
        if g.n() != self.n() {
            return false;
        }
        (0..self.n()).all(|v| match self.parent(v) {
            Some(p) => g.has_edge(p, v),
            None => true,
        })
    }

    /// Returns the child of `v` whose subtree contains label `m`, if any.
    ///
    /// Used by Propagate-Down step (D3): message `m` is sent to all children
    /// *except* the one whose subtree already holds it.
    pub fn child_containing_label(&self, v: usize, m: u32) -> Option<usize> {
        // Children's ranges are sorted and disjoint; binary search by start.
        let kids = &self.children[v];
        let idx = kids.partition_point(|&c| self.label[c as usize] <= m);
        if idx == 0 {
            return None;
        }
        let c = kids[idx - 1] as usize;
        let (i, j) = self.subtree_range(c);
        (i <= m && m <= j).then_some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reconstructed Fig 5 tree of the paper (see DESIGN.md §3.1):
    /// 16 vertices where vertex id happens to equal the DFS label.
    pub fn fig5_parents() -> Vec<u32> {
        // 0 -> {1,4,11}; 1 -> {2,3}; 4 -> {5,8}; 5 -> {6,7};
        // 8 -> {9,10}; 11 -> {12,15}; 12 -> {13,14}
        let mut p = vec![0u32; 16];
        p[0] = NO_PARENT;
        p[1] = 0;
        p[2] = 1;
        p[3] = 1;
        p[4] = 0;
        p[5] = 4;
        p[6] = 5;
        p[7] = 5;
        p[8] = 4;
        p[9] = 8;
        p[10] = 8;
        p[11] = 0;
        p[12] = 11;
        p[13] = 12;
        p[14] = 12;
        p[15] = 11;
        p
    }

    #[test]
    fn fig5_labels_match_ids() {
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        for v in 0..16 {
            assert_eq!(t.label(v), v as u32, "vertex {v}");
            assert_eq!(t.vertex_of_label(v as u32), v);
        }
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn fig5_subtree_ranges() {
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        assert_eq!(t.subtree_range(0), (0, 15));
        assert_eq!(t.subtree_range(1), (1, 3));
        assert_eq!(t.subtree_range(4), (4, 10));
        assert_eq!(t.subtree_range(5), (5, 7));
        assert_eq!(t.subtree_range(8), (8, 10));
        assert_eq!(t.subtree_range(11), (11, 15));
        assert_eq!(t.subtree_range(12), (12, 14));
        assert_eq!(t.subtree_range(15), (15, 15));
    }

    #[test]
    fn fig5_levels() {
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        assert_eq!(t.level(0), 0);
        assert_eq!(t.level(4), 1);
        assert_eq!(t.level(8), 2);
        assert_eq!(t.level(10), 3);
        assert_eq!(t.level(3), 2);
    }

    #[test]
    fn child_containing_label() {
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        assert_eq!(t.child_containing_label(0, 7), Some(4));
        assert_eq!(t.child_containing_label(0, 0), None); // root's own message
        assert_eq!(t.child_containing_label(0, 15), Some(11));
        assert_eq!(t.child_containing_label(4, 9), Some(8));
        assert_eq!(t.child_containing_label(4, 4), None);
        assert_eq!(t.child_containing_label(8, 3), None); // outside subtree
    }

    #[test]
    fn labels_ge_levels() {
        // Paper invariant: i >= k for every vertex.
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        for v in 0..t.n() {
            assert!(t.label(v) >= t.level(v));
        }
    }

    #[test]
    fn custom_child_order_changes_labels() {
        // Star rooted at 0 with children visited 2, 1.
        let parent = vec![NO_PARENT, 0, 0];
        let t =
            RootedTree::from_parents_with_child_order(0, &parent, vec![vec![2, 1], vec![], vec![]])
                .unwrap();
        assert_eq!(t.label(2), 1);
        assert_eq!(t.label(1), 2);
    }

    #[test]
    fn rejects_cycle() {
        // 0 <- 1 <- 2 <- 1 is impossible with a parent array, but a child
        // table can try to smuggle a repeat in.
        let parent = vec![NO_PARENT, 0, 1];
        let err = RootedTree::from_parents_with_child_order(
            0,
            &parent,
            vec![vec![1], vec![2, 2], vec![]],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::NotATree { .. }));
    }

    #[test]
    fn rejects_orphan() {
        let mut p = vec![NO_PARENT, 0, 0];
        p[2] = NO_PARENT; // second root
        assert!(matches!(
            RootedTree::from_parents(0, &p),
            Err(GraphError::NotATree { .. })
        ));
    }

    #[test]
    fn rejects_root_with_parent() {
        let p = vec![1, NO_PARENT];
        assert!(matches!(
            RootedTree::from_parents(0, &p),
            Err(GraphError::NotATree { .. })
        ));
    }

    #[test]
    fn singleton_tree() {
        let t = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        assert_eq!(t.n(), 1);
        assert_eq!(t.height(), 0);
        assert_eq!(t.subtree_range(0), (0, 0));
        assert!(t.is_leaf(0));
    }

    #[test]
    fn to_graph_round_trip() {
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        let g = t.to_graph();
        assert_eq!(g.m(), 15);
        assert!(t.is_spanning_tree_of(&g));
    }

    #[test]
    fn bfs_order_level_monotone() {
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        let order = t.bfs_order();
        assert_eq!(order.len(), 16);
        for w in order.windows(2) {
            assert!(t.level(w[0]) <= t.level(w[1]));
        }
    }

    #[test]
    fn preorder_is_ascending_labels() {
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        let labels: Vec<u32> = t.preorder().map(|v| t.label(v)).collect();
        assert_eq!(labels, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn subtree_sizes() {
        let t = RootedTree::from_parents(0, &fig5_parents()).unwrap();
        assert_eq!(t.subtree_size(0), 16);
        assert_eq!(t.subtree_size(4), 7);
        assert_eq!(t.subtree_size(3), 1);
    }
}
