//! Compact undirected graph in compressed sparse row (CSR) form.
//!
//! The communication networks of the paper are simple undirected graphs: a
//! vertex per processor, an edge per bidirectional link. Algorithms in this
//! workspace iterate neighbourhoods in hot loops (n-source BFS sweeps for the
//! minimum-depth spanning tree), so the representation is a flat CSR layout:
//! one `offsets` array of length `n + 1` and one `targets` array of length
//! `2m`, which keeps every neighbourhood contiguous in memory.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// An immutable simple undirected graph in CSR form.
///
/// Vertices are `0..n`. Construct with [`GraphBuilder`] or
/// [`Graph::from_edges`].
///
/// # Examples
///
/// ```
/// use gossip_graph::Graph;
///
/// // A triangle with a pendant vertex: 0-1, 1-2, 2-0, 2-3.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(2), 3);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for `v`'s neighbours.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour lists.
    targets: Vec<u32>,
    /// Number of undirected edges.
    m: usize,
}

impl Graph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Each `(u, v)` pair is one undirected edge. Rejects out-of-range
    /// endpoints, self-loops, and duplicate edges (in either orientation).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
            .iter()
            .map(|&t| t as usize)
    }

    /// The sorted neighbour list of `v` as a raw slice of `u32` ids.
    ///
    /// Hot-loop variant of [`Graph::neighbors`] that avoids per-element
    /// widening when the caller works in `u32` indices.
    #[inline]
    pub fn neighbors_raw(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Whether the undirected edge `(u, v)` exists.
    ///
    /// Binary search over the sorted neighbour list: `O(log deg(u))`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.n || v >= self.n {
            return false;
        }
        self.neighbors_raw(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterates every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices; 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over all vertices; 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// A copy of this graph with one extra edge.
    ///
    /// Fails on the same conditions as [`GraphBuilder::add_edge`]
    /// (duplicate, self-loop, out of range).
    pub fn with_edge(&self, u: usize, v: usize) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::with_capacity(self.n, self.m + 1);
        for (x, y) in self.edges() {
            b.add_edge_unchecked(x, y)?;
        }
        b.add_edge(u, v)?;
        Ok(b.build())
    }

    /// A copy of this graph with one edge removed.
    ///
    /// Fails with [`GraphError::DuplicateEdge`]'s sibling semantics
    /// inverted: an error if the edge is absent.
    pub fn without_edge(&self, u: usize, v: usize) -> Result<Graph, GraphError> {
        if !self.has_edge(u, v) {
            return Err(GraphError::NotATree {
                reason: format!("edge ({u}, {v}) not present"),
            });
        }
        let key = (u.min(v), u.max(v));
        let mut b = GraphBuilder::with_capacity(self.n, self.m - 1);
        for (x, y) in self.edges() {
            if (x, y) != key {
                b.add_edge_unchecked(x, y)?;
            }
        }
        Ok(b.build())
    }

    /// The induced subgraph on `keep` (vertices renumbered by their order
    /// in `keep`). Duplicate entries in `keep` are rejected.
    pub fn induced_subgraph(&self, keep: &[usize]) -> Result<Graph, GraphError> {
        let mut index = vec![usize::MAX; self.n];
        for (new, &old) in keep.iter().enumerate() {
            if old >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: old,
                    n: self.n,
                });
            }
            if index[old] != usize::MAX {
                return Err(GraphError::NotATree {
                    reason: format!("vertex {old} listed twice"),
                });
            }
            index[old] = new;
        }
        let mut b = GraphBuilder::new(keep.len());
        for (x, y) in self.edges() {
            if index[x] != usize::MAX && index[y] != usize::MAX {
                b.add_edge_unchecked(index[x], index[y])?;
            }
        }
        Ok(b.build())
    }

    /// The complement graph (same vertices, exactly the missing edges).
    pub fn complement(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.n, self.n * (self.n - 1) / 2 - self.m);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if !self.has_edge(u, v) {
                    b.add_edge_unchecked(u, v).expect("valid");
                }
            }
        }
        b.build()
    }

    /// The sorted (descending) degree sequence.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = (0..self.n).map(|v| self.degree(v)).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Whether the graph is a tree (connected with exactly `n - 1` edges).
    pub fn is_tree(&self) -> bool {
        self.n > 0 && self.m == self.n - 1 && crate::connectivity::is_connected(self)
    }

    /// A DOT-format rendering, handy for eyeballing reconstructed paper
    /// figures with Graphviz.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(32 + 12 * self.m);
        let _ = writeln!(s, "graph {name} {{");
        for v in 0..self.n {
            let _ = writeln!(s, "  {v};");
        }
        for (u, v) in self.edges() {
            let _ = writeln!(s, "  {u} -- {v};");
        }
        s.push_str("}\n");
        s
    }
}

/// Incremental builder for [`Graph`].
///
/// Collects edges with validation, then lays them out in CSR form on
/// [`GraphBuilder::build`].
///
/// # Examples
///
/// ```
/// use gossip_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// assert!(b.add_edge(1, 0).is_err()); // duplicate
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Starts a builder with room for `m` edges pre-reserved.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Duplicate detection is linear in the number of edges added so far;
    /// use [`GraphBuilder::add_edge_unchecked`] in bulk loads that are known
    /// duplicate-free.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.validate_endpoints(u, v)?;
        let key = Self::canonical(u, v);
        if self.edges.contains(&key) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        self.edges.push(key);
        Ok(())
    }

    /// Adds the undirected edge `(u, v)` without the linear duplicate scan.
    ///
    /// Endpoint range and self-loop checks still apply; duplicates are
    /// rejected later, by [`GraphBuilder::build`]'s sort-and-dedup pass
    /// panicking in debug builds and silently deduplicating in release.
    pub fn add_edge_unchecked(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.validate_endpoints(u, v)?;
        self.edges.push(Self::canonical(u, v));
        Ok(())
    }

    fn validate_endpoints(&self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        Ok(())
    }

    #[inline]
    fn canonical(u: usize, v: usize) -> (u32, u32) {
        if u < v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        }
    }

    /// Finalizes the CSR layout.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let m = self.edges.len();
        let mut degree = vec![0u32; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in degree.iter().take(n) {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; 2 * m];
        for &(u, v) in &self.edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Edge list was sorted by (min, max); per-vertex target runs need an
        // explicit sort because a vertex appears on both sides of edges.
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Graph {
            n,
            offsets,
            targets,
            m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn single_vertex() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn triangle_degrees_and_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.m(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(3, 0), (3, 4), (3, 1), (3, 2)]).unwrap();
        let nb: Vec<_> = g.neighbors(3).collect();
        assert_eq!(nb, vec![0, 1, 2, 4]);
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = Graph::from_edges(4, &[(0, 3)]).unwrap();
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(0, 4)); // out of range is just "no edge"
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::VertexOutOfRange { vertex: 2, n: 2 })
        );
    }

    #[test]
    fn rejects_duplicate_even_reversed() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn unchecked_builder_dedups_on_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_unchecked(0, 1).unwrap();
        b.add_edge_unchecked(1, 0).unwrap();
        let g = b.build();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn to_dot_contains_all_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let dot = g.to_dot("g");
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("1 -- 2"));
    }

    #[test]
    fn neighbors_raw_matches_neighbors() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let a: Vec<usize> = g.neighbors(0).collect();
        let b: Vec<usize> = g.neighbors_raw(0).iter().map(|&x| x as usize).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn with_and_without_edge() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let bigger = g.with_edge(2, 3).unwrap();
        assert_eq!(bigger.m(), 3);
        assert!(bigger.has_edge(2, 3));
        assert!(g.with_edge(0, 1).is_err());
        let smaller = bigger.without_edge(0, 1).unwrap();
        assert_eq!(smaller.m(), 2);
        assert!(!smaller.has_edge(0, 1));
        assert!(smaller.without_edge(0, 1).is_err());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let sub = g.induced_subgraph(&[1, 2, 3]).unwrap();
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        assert!(sub.has_edge(0, 1)); // old (1, 2)
        assert!(sub.has_edge(1, 2)); // old (2, 3)
        assert!(g.induced_subgraph(&[0, 0]).is_err());
        assert!(g.induced_subgraph(&[9]).is_err());
    }

    #[test]
    fn complement_and_degree_sequence() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let c = g.complement();
        assert_eq!(c.m(), 6 - 2);
        assert!(c.has_edge(0, 2));
        assert!(!c.has_edge(0, 1));
        assert_eq!(g.degree_sequence(), vec![2, 1, 1, 0]);
        // Complementing twice is the identity.
        assert_eq!(c.complement(), g);
    }

    #[test]
    fn is_tree_detection() {
        assert!(Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .is_tree());
        assert!(!Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
            .unwrap()
            .is_tree());
        assert!(!Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap().is_tree()); // forest
        assert!(Graph::from_edges(1, &[]).unwrap().is_tree());
        assert!(!Graph::from_edges(0, &[]).unwrap().is_tree());
    }

    #[test]
    fn min_max_degree() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }
}
