//! ASCII rendering of rooted trees, for CLI output and experiment reports.
//!
//! Shows the structure the scheduling algorithms actually consume: each
//! vertex with its DFS label `i`, subtree range `[i, j]`, and level `k`.

use crate::tree::RootedTree;

/// Renders `tree` as an indented ASCII outline:
///
/// ```text
/// 0  [i=0, range 0..=15, k=0]
/// ├── 1  [i=1, range 1..=3, k=1]
/// │   ├── 2  [i=2, range 2..=2, k=2]
/// │   └── 3  [i=3, range 3..=3, k=2]
/// └── 4  ...
/// ```
pub fn render_tree(tree: &RootedTree) -> String {
    let mut out = String::new();
    let root = tree.root();
    out.push_str(&describe(tree, root));
    out.push('\n');
    render_children(tree, root, String::new(), &mut out);
    out
}

fn describe(tree: &RootedTree, v: usize) -> String {
    let (i, j) = tree.subtree_range(v);
    format!(
        "{v}  [i={}, range {}..={}, k={}]",
        tree.label(v),
        i,
        j,
        tree.level(v)
    )
}

fn render_children(tree: &RootedTree, v: usize, prefix: String, out: &mut String) {
    let kids = tree.children(v);
    for (idx, &c) in kids.iter().enumerate() {
        let c = c as usize;
        let last = idx + 1 == kids.len();
        out.push_str(&prefix);
        out.push_str(if last { "└── " } else { "├── " });
        out.push_str(&describe(tree, c));
        out.push('\n');
        let next_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
        render_children(tree, c, next_prefix, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NO_PARENT;

    #[test]
    fn renders_structure_and_labels() {
        let t = RootedTree::from_parents(0, &[NO_PARENT, 0, 0, 1]).unwrap();
        let txt = render_tree(&t);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("0  [i=0, range 0..=3, k=0]"));
        assert!(txt.contains("├── 1"));
        assert!(txt.contains("└── 3") || txt.contains("└── 2"));
        // Grandchild is indented below its parent with a continuation bar.
        assert!(txt.contains("│   └── 3") || txt.contains("    └── 3"));
    }

    #[test]
    fn singleton() {
        let t = RootedTree::from_parents(0, &[NO_PARENT]).unwrap();
        assert_eq!(render_tree(&t).lines().count(), 1);
    }

    #[test]
    fn every_vertex_appears_once() {
        let mut p = vec![0u32; 16];
        for (v, par) in [
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 0),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 4),
            (9, 8),
            (10, 8),
            (11, 0),
            (12, 11),
            (13, 12),
            (14, 12),
            (15, 11),
        ] {
            p[v] = par;
        }
        p[0] = NO_PARENT;
        let t = RootedTree::from_parents(0, &p).unwrap();
        let txt = render_tree(&t);
        assert_eq!(txt.lines().count(), 16);
        for v in 0..16 {
            assert!(txt.contains(&format!("{v}  [i={v},")), "vertex {v} missing");
        }
    }
}
