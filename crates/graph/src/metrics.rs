//! Distance metrics: eccentricities, radius, diameter, center.
//!
//! The paper's schedule length is `n + r` with `r` the network *radius*: the
//! least `r` such that some vertex is within `r` hops of every other vertex.
//! Computing `r` exactly requires the eccentricity of every vertex — an
//! n-source BFS sweep, `O(mn)` total, which this module provides both
//! sequentially and in parallel (one BFS per rayon task; sweeps share
//! nothing, so the parallelism is embarrassingly clean).

use crate::bfs::{bfs, bfs_into, BfsResult};
use crate::error::GraphError;
use crate::graph::Graph;
use rayon::prelude::*;

/// Global distance summary of a connected graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMetrics {
    /// `ecc[v]` = eccentricity of vertex `v`.
    pub ecc: Vec<u32>,
    /// Minimum eccentricity.
    pub radius: u32,
    /// Maximum eccentricity.
    pub diameter: u32,
    /// All vertices whose eccentricity equals the radius, ascending.
    pub center: Vec<usize>,
}

impl DistanceMetrics {
    fn from_eccentricities(ecc: Vec<u32>) -> Self {
        let radius = *ecc.iter().min().expect("nonempty");
        let diameter = *ecc.iter().max().expect("nonempty");
        let center = ecc
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e == radius)
            .map(|(v, _)| v)
            .collect();
        DistanceMetrics {
            ecc,
            radius,
            diameter,
            center,
        }
    }
}

/// Computes all eccentricities with a sequential n-source BFS sweep.
///
/// Errors with [`GraphError::EmptyGraph`] on zero vertices and
/// [`GraphError::Disconnected`] if any sweep fails to reach every vertex.
pub fn distance_metrics(g: &Graph) -> Result<DistanceMetrics, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut scratch = bfs(g, 0);
    let mut ecc = Vec::with_capacity(g.n());
    for v in 0..g.n() {
        bfs_into(g, v, &mut scratch);
        ecc.push(scratch.eccentricity().ok_or(GraphError::Disconnected)?);
    }
    Ok(DistanceMetrics::from_eccentricities(ecc))
}

/// Computes all eccentricities with a rayon-parallel n-source BFS sweep.
///
/// Semantically identical to [`distance_metrics`]; each source is an
/// independent task with its own scratch buffers.
pub fn distance_metrics_parallel(g: &Graph) -> Result<DistanceMetrics, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let ecc: Result<Vec<u32>, GraphError> = (0..g.n())
        .into_par_iter()
        .map(|v| bfs(g, v).eccentricity().ok_or(GraphError::Disconnected))
        .collect();
    Ok(DistanceMetrics::from_eccentricities(ecc?))
}

/// The radius of a connected graph (sequential sweep).
pub fn radius(g: &Graph) -> Result<u32, GraphError> {
    Ok(distance_metrics(g)?.radius)
}

/// The diameter of a connected graph (sequential sweep).
pub fn diameter(g: &Graph) -> Result<u32, GraphError> {
    Ok(distance_metrics(g)?.diameter)
}

/// Full all-pairs shortest-path table, one BFS row per source, in parallel.
///
/// `O(n^2)` memory; intended for exact-search paths on small inputs and for
/// tests. Errors on empty input; rows of a disconnected graph contain
/// [`crate::bfs::UNREACHABLE`].
pub fn all_pairs_distances(g: &Graph) -> Result<Vec<Vec<u32>>, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    Ok((0..g.n()).into_par_iter().map(|v| bfs(g, v).dist).collect())
}

/// One BFS sweep from every source, returned whole.
///
/// Used by minimum-depth spanning tree construction, which needs parents —
/// not just eccentricities — from each sweep.
pub fn bfs_from_all_sources(g: &Graph) -> Vec<BfsResult> {
    (0..g.n()).into_par_iter().map(|v| bfs(g, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn path_metrics() {
        let m = distance_metrics(&path(7)).unwrap();
        assert_eq!(m.radius, 3);
        assert_eq!(m.diameter, 6);
        assert_eq!(m.center, vec![3]);
        assert_eq!(m.ecc[0], 6);
        assert_eq!(m.ecc[3], 3);
    }

    #[test]
    fn even_path_two_centers() {
        let m = distance_metrics(&path(6)).unwrap();
        assert_eq!(m.radius, 3);
        assert_eq!(m.center, vec![2, 3]);
    }

    #[test]
    fn cycle_metrics() {
        let m = distance_metrics(&cycle(8)).unwrap();
        assert_eq!(m.radius, 4);
        assert_eq!(m.diameter, 4);
        assert_eq!(m.center.len(), 8);
    }

    #[test]
    fn star_radius_one() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let m = distance_metrics(&g).unwrap();
        assert_eq!(m.radius, 1);
        assert_eq!(m.diameter, 2);
        assert_eq!(m.center, vec![0]);
    }

    #[test]
    fn singleton_metrics() {
        let m = distance_metrics(&Graph::from_edges(1, &[]).unwrap()).unwrap();
        assert_eq!(m.radius, 0);
        assert_eq!(m.diameter, 0);
        assert_eq!(m.center, vec![0]);
    }

    #[test]
    fn empty_graph_errors() {
        assert_eq!(
            distance_metrics(&Graph::from_edges(0, &[]).unwrap()),
            Err(GraphError::EmptyGraph)
        );
    }

    #[test]
    fn disconnected_errors() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(distance_metrics(&g), Err(GraphError::Disconnected));
        assert_eq!(distance_metrics_parallel(&g), Err(GraphError::Disconnected));
    }

    #[test]
    fn parallel_matches_sequential() {
        for g in [path(11), cycle(9)] {
            assert_eq!(
                distance_metrics(&g).unwrap(),
                distance_metrics_parallel(&g).unwrap()
            );
        }
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = cycle(6);
        let d = all_pairs_distances(&g).unwrap();
        for (u, row) in d.iter().enumerate() {
            assert_eq!(row[u], 0);
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, d[v][u]);
            }
        }
    }

    #[test]
    fn radius_diameter_helpers() {
        let g = path(5);
        assert_eq!(radius(&g).unwrap(), 2);
        assert_eq!(diameter(&g).unwrap(), 4);
    }
}
