//! Bipartiteness testing with certificates.
//!
//! Used by the experiments around network `N_3`: a bipartite graph with
//! unequal parts can have no Hamiltonian circuit (a circuit alternates
//! parts), which is the easy certificate of `K_{2,3}`'s non-Hamiltonicity.

use crate::graph::Graph;

/// The outcome of a bipartiteness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bipartiteness {
    /// The graph is bipartite; `side[v]` gives each vertex's part (vertices
    /// of isolated components get a side too, via their own BFS).
    Bipartite {
        /// Part assignment, `false`/`true` per vertex.
        side: Vec<bool>,
    },
    /// The graph contains an odd cycle (returned as a vertex sequence;
    /// consecutive vertices adjacent, last adjacent to first, odd length).
    OddCycle {
        /// The certificate cycle.
        cycle: Vec<usize>,
    },
}

/// Two-colors `g` by BFS, or exhibits an odd cycle.
///
/// # Examples
///
/// ```
/// use gossip_graph::{Graph, bipartiteness, Bipartiteness};
///
/// let even = Graph::from_edges(4, &[(0,1),(1,2),(2,3),(3,0)]).unwrap();
/// assert!(matches!(bipartiteness(&even), Bipartiteness::Bipartite { .. }));
///
/// let odd = Graph::from_edges(3, &[(0,1),(1,2),(2,0)]).unwrap();
/// match bipartiteness(&odd) {
///     Bipartiteness::OddCycle { cycle } => assert_eq!(cycle.len() % 2, 1),
///     _ => panic!("triangle is not bipartite"),
/// }
/// ```
pub fn bipartiteness(g: &Graph) -> Bipartiteness {
    let n = g.n();
    let mut side = vec![false; n];
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut queue = Vec::new();
    for s in 0..n {
        if dist[s] != u32::MAX {
            continue;
        }
        dist[s] = 0;
        queue.clear();
        queue.push(s as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &w in g.neighbors_raw(u) {
                let w_us = w as usize;
                if dist[w_us] == u32::MAX {
                    dist[w_us] = dist[u] + 1;
                    side[w_us] = !side[u];
                    parent[w_us] = u as u32;
                    queue.push(w);
                } else if side[w_us] == side[u] {
                    // Odd cycle: paths u -> lca and w -> lca plus edge (u, w).
                    return Bipartiteness::OddCycle {
                        cycle: odd_cycle(u, w_us, &parent, &dist),
                    };
                }
            }
        }
    }
    Bipartiteness::Bipartite { side }
}

/// Whether `g` is bipartite.
pub fn is_bipartite(g: &Graph) -> bool {
    matches!(bipartiteness(g), Bipartiteness::Bipartite { .. })
}

fn odd_cycle(u: usize, w: usize, parent: &[u32], dist: &[u32]) -> Vec<usize> {
    // Walk both endpoints up to their lowest common ancestor.
    let (mut a, mut b) = (u, w);
    let mut up_a = Vec::new();
    let mut up_b = Vec::new();
    while dist[a] > dist[b] {
        up_a.push(a);
        a = parent[a] as usize;
    }
    while dist[b] > dist[a] {
        up_b.push(b);
        b = parent[b] as usize;
    }
    while a != b {
        up_a.push(a);
        up_b.push(b);
        a = parent[a] as usize;
        b = parent[b] as usize;
    }
    // Cycle: u -> ... -> lca -> ... -> w (edge w-u closes it).
    let mut cycle = up_a;
    cycle.push(a);
    up_b.reverse();
    cycle.extend(up_b);
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify_odd_cycle(g: &Graph, cycle: &[usize]) {
        assert_eq!(cycle.len() % 2, 1, "cycle must be odd");
        assert!(cycle.len() >= 3);
        for w in cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "{} - {} not an edge", w[0], w[1]);
        }
        assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
        let mut sorted = cycle.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cycle.len(), "cycle repeats a vertex");
    }

    #[test]
    fn even_cycle_bipartite() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        match bipartiteness(&g) {
            Bipartiteness::Bipartite { side } => {
                for (u, v) in g.edges() {
                    assert_ne!(side[u], side[v]);
                }
            }
            _ => panic!("C6 is bipartite"),
        }
    }

    #[test]
    fn odd_cycle_certified() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        match bipartiteness(&g) {
            Bipartiteness::OddCycle { cycle } => verify_odd_cycle(&g, &cycle),
            _ => panic!("C5 is not bipartite"),
        }
    }

    #[test]
    fn triangle_with_tail() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]).unwrap();
        match bipartiteness(&g) {
            Bipartiteness::OddCycle { cycle } => verify_odd_cycle(&g, &cycle),
            _ => panic!("contains a triangle"),
        }
    }

    #[test]
    fn trees_and_empty_bipartite() {
        assert!(is_bipartite(
            &Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]).unwrap()
        ));
        assert!(is_bipartite(&Graph::from_edges(3, &[]).unwrap()));
        assert!(is_bipartite(&Graph::from_edges(0, &[]).unwrap()));
    }

    #[test]
    fn k23_bipartite_with_unequal_parts() {
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
        match bipartiteness(&g) {
            Bipartiteness::Bipartite { side } => {
                let a = side.iter().filter(|&&s| s).count();
                assert!(a == 2 || a == 3, "parts of sizes 2 and 3");
            }
            _ => panic!("K23 is bipartite"),
        }
    }

    #[test]
    fn disconnected_mixed() {
        // Bipartite component + triangle component.
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4), (4, 2)]).unwrap();
        match bipartiteness(&g) {
            Bipartiteness::OddCycle { cycle } => verify_odd_cycle(&g, &cycle),
            _ => panic!("triangle component makes it non-bipartite"),
        }
    }
}
