//! Post-mortem analysis of flight records: time-travel inspection,
//! cross-run divergence diffing, and anomaly flagging.
//!
//! A `.gfr` capture ([`gossip_telemetry::flight::FlightLog`]) holds the
//! run's initial knowledge (the origin table) and every attempted
//! transmission plus every suppressed delivery — which is exactly enough
//! to reconstruct every processor's hold set after any round, without the
//! graph or the schedule at hand. Everything here is built on that replay:
//!
//! - [`inspect`] answers "what did every processor know after round
//!   `t`?" — the time-travel query behind `gossip inspect RUN.gfr
//!   --round t` — and cross-checks the replayed knowledge count against
//!   the capture's recorded `round_end` curve.
//! - [`diff`] aligns two captures round by round and reports the first
//!   round where their applied deliveries differ, per-(message, vertex)
//!   first-delivery-time deltas, and retransmission deltas. Captures of
//!   the same schedule from different engines (oracle vs kernel, offline
//!   vs threaded-online) diff as identical; a clean-vs-lossy pair
//!   diverges exactly at the fault plan's first suppressed delivery.
//! - [`anomalies`] flags straggler rounds (interior rounds delivering far
//!   below the run's median), utilization dips (far fewer active senders
//!   than typical), and messages whose completion exceeds the paper's
//!   `n + r` bound.

use gossip_telemetry::flight::{
    alert_rule_label, alert_severity_label, cause_label, churn_op_label, FlightAlert, FlightChurn,
    FlightLog,
};
use std::collections::HashSet;
use std::fmt::Write as _;

/// One run replayed from its capture: hold sets, first-delivery times,
/// and per-round applied-delivery detail.
struct RunView {
    n: usize,
    n_msgs: usize,
    rounds: usize,
    /// Hold sets as `n_msgs`-bit rows, one per vertex (`words` words each).
    hold: Vec<u64>,
    words: usize,
    /// `first_hold[m * n + v]`: the time vertex `v` first held message `m`
    /// (origins at 0; a delivery in round `t` lands at `t + 1`);
    /// `u32::MAX` = never.
    first_hold: Vec<u32>,
    /// Applied deliveries per round as sorted `(msg, from, to)` triples.
    applied: Vec<Vec<(u32, u32, u32)>>,
    /// Distinct senders per round.
    senders: Vec<usize>,
    /// Deliveries that landed on a vertex already holding the message.
    retransmissions: usize,
    /// Attempted transmissions / suppressed deliveries.
    tx_count: usize,
    loss_count: usize,
}

impl RunView {
    fn known_pairs(&self) -> u64 {
        self.hold.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    fn holds(&self, v: usize, m: usize) -> bool {
        self.hold[v * self.words + m / 64] & (1u64 << (m % 64)) != 0
    }

    fn vertex_count(&self, v: usize) -> usize {
        self.hold[v * self.words..(v + 1) * self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// Replays `log` up to and including round `upto` (`None` = the whole
/// capture). Errors on structurally corrupt captures (out-of-range
/// processors or messages) rather than panicking.
fn replay(log: &FlightLog, upto: Option<usize>) -> Result<RunView, String> {
    let n = log.header.n as usize;
    let n_msgs = log.header.n_msgs as usize;
    if log.header.origins.len() != n_msgs {
        return Err(format!(
            "corrupt capture: {} origin(s) for {} message(s)",
            log.header.origins.len(),
            n_msgs
        ));
    }
    let words = n_msgs.div_ceil(64).max(1);
    let mut view = RunView {
        n,
        n_msgs,
        rounds: log.rounds(),
        hold: vec![0u64; n * words],
        words,
        first_hold: vec![u32::MAX; n * n_msgs],
        applied: Vec::new(),
        senders: Vec::new(),
        retransmissions: 0,
        tx_count: 0,
        loss_count: 0,
    };
    for (m, &o) in log.header.origins.iter().enumerate() {
        let v = o as usize;
        if v >= n {
            return Err(format!("corrupt capture: origin {o} of message {m} >= n"));
        }
        view.hold[v * words + m / 64] |= 1u64 << (m % 64);
        view.first_hold[m * n + v] = 0;
    }
    let losses = log.losses();
    let lost_set: HashSet<(u32, u32, u32, u32)> = losses
        .iter()
        .map(|l| (l.round, l.msg, l.from, l.to))
        .collect();
    view.loss_count = losses.len();
    let limit = upto.map(|r| r + 1).unwrap_or(usize::MAX);
    let mut txs = log.txs().into_iter().peekable();
    view.tx_count = log.txs().len();
    let mut round = 0usize;
    while txs.peek().is_some() && round < limit {
        round = txs.peek().expect("peeked").round as usize;
        if round >= limit {
            break;
        }
        let mut applied = Vec::new();
        let mut senders = HashSet::new();
        while txs.peek().map(|t| t.round as usize) == Some(round) {
            let tx = txs.next().expect("peeked");
            let (m, from) = (tx.msg as usize, tx.from as usize);
            if m >= n_msgs || from >= n {
                return Err(format!(
                    "corrupt capture: transmission (msg {m}, from {from}) out of range"
                ));
            }
            senders.insert(tx.from);
            for &d in tx.dests {
                let v = d as usize;
                if v >= n {
                    return Err(format!("corrupt capture: destination {v} >= n"));
                }
                if lost_set.contains(&(tx.round, tx.msg, tx.from, d)) {
                    continue;
                }
                let slot = v * words + m / 64;
                let bit = 1u64 << (m % 64);
                if view.hold[slot] & bit != 0 {
                    view.retransmissions += 1;
                } else {
                    view.hold[slot] |= bit;
                    view.first_hold[m * n + v] = tx.round + 1;
                }
                applied.push((tx.msg, tx.from, d));
            }
        }
        // Pad empty rounds so `applied[t]` is indexed by absolute round.
        while view.applied.len() < round {
            view.applied.push(Vec::new());
            view.senders.push(0);
        }
        applied.sort_unstable();
        view.applied.push(applied);
        view.senders.push(senders.len());
    }
    Ok(view)
}

/// Everything `gossip inspect` reports about one capture at one round.
#[derive(Debug, Clone)]
pub struct InspectReport {
    /// Engine label from the header.
    pub engine: String,
    /// Processor count.
    pub n: usize,
    /// Message count.
    pub n_msgs: usize,
    /// Graph radius from the header.
    pub radius: usize,
    /// Rounds covered by the capture.
    pub rounds: usize,
    /// Attempted transmissions.
    pub tx_count: usize,
    /// Suppressed deliveries.
    pub loss_count: usize,
    /// `(epoch, start_round)` repair epochs.
    pub epochs: Vec<(u32, u32)>,
    /// Applied topology changes, in round order (churn captures only).
    pub churn_events: Vec<FlightChurn>,
    /// Deliveries invalidated by churn (losses with cause
    /// `churn_invalidated`), over the whole capture.
    pub churn_invalidated: usize,
    /// Of those, `(message, destination)` pairs the repaired schedule
    /// delivered anyway by the end of the run.
    pub churn_repaired: usize,
    /// Watchdog alerts captured in the record, in firing order.
    pub alerts: Vec<FlightAlert>,
    /// Records evicted by the ring buffer (nonzero = truncated capture).
    pub dropped: u64,
    /// The round inspected (state after this round applied).
    pub round: usize,
    /// (processor, message) pairs known after `round`, from replay.
    pub known_pairs: u64,
    /// The capture's own `round_end` knowledge count at `round`, when
    /// present — an integrity cross-check for the replay.
    pub recorded_known_pairs: Option<u64>,
    /// `known_pairs / (n * n_msgs)`.
    pub coverage: f64,
    /// Messages held per vertex after `round`.
    pub hold_counts: Vec<usize>,
    /// Per-vertex missing message lists (only populated for `n <= 32`).
    pub missing: Vec<(usize, Vec<u32>)>,
    /// Whether gossip is complete at `round`.
    pub complete: bool,
}

/// Reconstructs the run's state after `round` (`None` = final state) —
/// the time-travel query. `round` past the end of the capture clamps to
/// the final round.
pub fn inspect(log: &FlightLog, round: Option<usize>) -> Result<InspectReport, String> {
    let rounds = log.rounds();
    let last = rounds.saturating_sub(1);
    let round = round.map(|r| r.min(last)).unwrap_or(last);
    let view = replay(log, Some(round))?;
    let known = view.known_pairs();
    let total = (view.n * view.n_msgs) as u64;
    let hold_counts: Vec<usize> = (0..view.n).map(|v| view.vertex_count(v)).collect();
    let missing = if view.n <= 32 {
        (0..view.n)
            .map(|v| {
                let miss: Vec<u32> = (0..view.n_msgs)
                    .filter(|&m| !view.holds(v, m))
                    .map(|m| m as u32)
                    .collect();
                (v, miss)
            })
            .collect()
    } else {
        Vec::new()
    };
    let recorded = log
        .known_pairs_curve()
        .iter()
        .find(|&&(r, _)| r as usize == round)
        .map(|&(_, k)| k);
    let churn_events = log.churn_events();
    let invalidated: Vec<(u32, u32)> = log
        .losses()
        .iter()
        .filter(|l| cause_label(l.cause) == "churn_invalidated")
        .map(|l| (l.msg, l.to))
        .collect();
    let churn_repaired = if invalidated.is_empty() {
        0
    } else {
        // "Repaired" is a whole-run judgment: replay to the end and ask
        // whether the pair landed anyway via the repaired schedule.
        let full = replay(log, None)?;
        invalidated
            .iter()
            .filter(|&&(m, to)| {
                (m as usize) < full.n_msgs
                    && (to as usize) < full.n
                    && full.first_hold[m as usize * full.n + to as usize] != u32::MAX
            })
            .count()
    };
    Ok(InspectReport {
        engine: log.header.engine.clone(),
        n: view.n,
        n_msgs: view.n_msgs,
        radius: log.header.radius as usize,
        rounds,
        tx_count: replayed_tx_count(log),
        loss_count: view.loss_count,
        epochs: log.epochs(),
        churn_invalidated: invalidated.len(),
        churn_repaired,
        churn_events,
        alerts: log.alerts(),
        dropped: log.dropped,
        round,
        known_pairs: known,
        recorded_known_pairs: recorded,
        coverage: if total == 0 {
            1.0
        } else {
            known as f64 / total as f64
        },
        hold_counts,
        missing,
        complete: known == total,
    })
}

fn replayed_tx_count(log: &FlightLog) -> usize {
    log.txs().len()
}

/// Renders an [`InspectReport`] as the `gossip inspect` text output.
pub fn render_inspect(r: &InspectReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight record: engine {}, n = {}, n_msgs = {}, radius r = {}",
        r.engine, r.n, r.n_msgs, r.radius
    );
    let epochs = if r.epochs.is_empty() {
        String::from("no repair epochs")
    } else {
        format!("{} repair epoch(s)", r.epochs.len())
    };
    let _ = writeln!(
        out,
        "capture: {} round(s), {} transmission(s), {} suppressed delivery(ies), {epochs}",
        r.rounds, r.tx_count, r.loss_count
    );
    if r.dropped > 0 {
        let _ = writeln!(
            out,
            "warning: ring buffer evicted {} record(s) — replay is partial",
            r.dropped
        );
    }
    if !r.churn_events.is_empty() {
        let _ = writeln!(out, "topology churn: {} event(s)", r.churn_events.len());
        for c in &r.churn_events {
            let what = churn_op_label(c.op);
            if c.u == c.v {
                let _ = writeln!(out, "  round {:>3}: {what} v{}", c.round, c.u);
            } else {
                let _ = writeln!(out, "  round {:>3}: {what} {}-{}", c.round, c.u, c.v);
            }
        }
        let _ = writeln!(
            out,
            "churn repair: {} delivery(ies) invalidated, {} of them delivered anyway by the repaired schedule",
            r.churn_invalidated, r.churn_repaired
        );
    }
    if !r.alerts.is_empty() {
        let _ = writeln!(out, "alert timeline: {} alert(s)", r.alerts.len());
        for a in &r.alerts {
            let _ = writeln!(
                out,
                "  round {:>3}: [{}] {} — value {:.2}, threshold {:.2}",
                a.round,
                alert_severity_label(a.severity),
                alert_rule_label(a.rule),
                a.value,
                a.threshold
            );
        }
    }
    let _ = writeln!(
        out,
        "state after round {}: {} of {} pairs known ({:.1}% coverage){}",
        r.round,
        r.known_pairs,
        r.n as u64 * r.n_msgs as u64,
        r.coverage * 100.0,
        if r.complete { " — complete" } else { "" }
    );
    match r.recorded_known_pairs {
        Some(k) if k == r.known_pairs => {
            let _ = writeln!(out, "integrity: replay matches recorded known_pairs ({k})");
        }
        Some(k) => {
            let _ = writeln!(
                out,
                "integrity: MISMATCH — replay {} vs recorded {k}",
                r.known_pairs
            );
        }
        None => {}
    }
    if !r.hold_counts.is_empty() {
        let mut sorted = r.hold_counts.clone();
        sorted.sort_unstable();
        let _ = writeln!(
            out,
            "per-vertex knowledge: min {}, median {}, max {}",
            sorted[0],
            sorted[sorted.len() / 2],
            sorted[sorted.len() - 1]
        );
    }
    for (v, miss) in &r.missing {
        if miss.is_empty() {
            let _ = writeln!(out, "  v{v:<3} holds {}/{}", r.n_msgs, r.n_msgs);
        } else {
            let list: Vec<String> = miss.iter().take(12).map(|m| m.to_string()).collect();
            let more = if miss.len() > 12 { ", ..." } else { "" };
            let _ = writeln!(
                out,
                "  v{v:<3} holds {}/{}  missing: {}{more}",
                r.n_msgs - miss.len(),
                r.n_msgs,
                list.join(",")
            );
        }
    }
    out
}

/// What `gossip diff A.gfr B.gfr` found.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Engine labels of the two captures.
    pub engines: (String, String),
    /// Header observations (digest or fingerprint mismatches). These are
    /// informational: engine labels legitimately differ across engines,
    /// and a clean-vs-lossy pair differs in fault digest by construction.
    pub notes: Vec<String>,
    /// Whether the captures are comparable at all (same `n` / `n_msgs`).
    pub comparable: bool,
    /// Rounds covered by each capture.
    pub rounds: (usize, usize),
    /// Attempted transmissions in each capture.
    pub tx_counts: (usize, usize),
    /// Suppressed deliveries in each capture.
    pub loss_counts: (usize, usize),
    /// Deliveries landing on an already-knowing vertex, per capture.
    pub retransmissions: (usize, usize),
    /// First round whose applied-delivery sets differ, if any.
    pub first_divergent_round: Option<usize>,
    /// Applied-delivery counts at the first divergent round.
    pub divergent_deliveries: Option<(usize, usize)>,
    /// (message, vertex) pairs first delivered later in B than in A.
    pub later_in_b: usize,
    /// (message, vertex) pairs first delivered earlier in B than in A.
    pub earlier_in_b: usize,
    /// Largest first-delivery delay of B relative to A, in rounds.
    pub max_delay: u32,
    /// Pairs delivered in A but never in B, and vice versa.
    pub only_in_a: usize,
    /// Pairs delivered in B but never in A.
    pub only_in_b: usize,
    /// The verdict: no divergent round and identical round counts.
    pub identical: bool,
}

/// Aligns two captures and reports where (and how) they diverge.
pub fn diff(a: &FlightLog, b: &FlightLog) -> Result<DiffReport, String> {
    let mut notes = Vec::new();
    if a.header.engine != b.header.engine {
        notes.push(format!(
            "engines differ: {} vs {}",
            a.header.engine, b.header.engine
        ));
    }
    for (what, x, y) in [
        ("graph", a.header.graph_digest, b.header.graph_digest),
        (
            "schedule",
            a.header.schedule_digest,
            b.header.schedule_digest,
        ),
        ("fault plan", a.header.fault_digest, b.header.fault_digest),
    ] {
        if x != y {
            notes.push(format!("{what} digests differ: {x:#018x} vs {y:#018x}"));
        }
    }
    if a.dropped > 0 || b.dropped > 0 {
        notes.push(format!(
            "ring buffer evictions: {} vs {} — diff is over partial captures",
            a.dropped, b.dropped
        ));
    }
    if a.header.n != b.header.n || a.header.n_msgs != b.header.n_msgs {
        return Ok(DiffReport {
            engines: (a.header.engine.clone(), b.header.engine.clone()),
            notes,
            comparable: false,
            rounds: (a.rounds(), b.rounds()),
            tx_counts: (0, 0),
            loss_counts: (0, 0),
            retransmissions: (0, 0),
            first_divergent_round: None,
            divergent_deliveries: None,
            later_in_b: 0,
            earlier_in_b: 0,
            max_delay: 0,
            only_in_a: 0,
            only_in_b: 0,
            identical: false,
        });
    }
    let va = replay(a, None)?;
    let vb = replay(b, None)?;
    let rounds = va.applied.len().max(vb.applied.len());
    let empty: Vec<(u32, u32, u32)> = Vec::new();
    let mut first_divergent = None;
    let mut divergent_deliveries = None;
    for t in 0..rounds {
        let ra = va.applied.get(t).unwrap_or(&empty);
        let rb = vb.applied.get(t).unwrap_or(&empty);
        if ra != rb {
            first_divergent = Some(t);
            divergent_deliveries = Some((ra.len(), rb.len()));
            break;
        }
    }
    let (mut later, mut earlier, mut only_a, mut only_b) = (0usize, 0usize, 0usize, 0usize);
    let mut max_delay = 0u32;
    for (fa, fb) in va.first_hold.iter().zip(&vb.first_hold) {
        match (*fa, *fb) {
            (u32::MAX, u32::MAX) => {}
            (u32::MAX, _) => only_b += 1,
            (_, u32::MAX) => only_a += 1,
            (x, y) if y > x => {
                later += 1;
                max_delay = max_delay.max(y - x);
            }
            (x, y) if y < x => earlier += 1,
            _ => {}
        }
    }
    let identical = first_divergent.is_none() && va.applied.len() == vb.applied.len();
    Ok(DiffReport {
        engines: (a.header.engine.clone(), b.header.engine.clone()),
        notes,
        comparable: true,
        rounds: (va.rounds, vb.rounds),
        tx_counts: (va.tx_count, vb.tx_count),
        loss_counts: (va.loss_count, vb.loss_count),
        retransmissions: (va.retransmissions, vb.retransmissions),
        first_divergent_round: first_divergent,
        divergent_deliveries,
        later_in_b: later,
        earlier_in_b: earlier,
        max_delay,
        only_in_a: only_a,
        only_in_b: only_b,
        identical,
    })
}

/// Renders a [`DiffReport`] as the `gossip diff` text output.
pub fn render_diff(r: &DiffReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff: A (engine {}) vs B (engine {})",
        r.engines.0, r.engines.1
    );
    for note in &r.notes {
        let _ = writeln!(out, "note: {note}");
    }
    if !r.comparable {
        let _ = writeln!(
            out,
            "verdict: captures are NOT COMPARABLE (different n or n_msgs)"
        );
        return out;
    }
    let _ = writeln!(
        out,
        "rounds: A {}, B {}; transmissions: A {}, B {}; losses: A {}, B {}",
        r.rounds.0, r.rounds.1, r.tx_counts.0, r.tx_counts.1, r.loss_counts.0, r.loss_counts.1
    );
    let _ = writeln!(
        out,
        "retransmissions: A {}, B {} ({:+})",
        r.retransmissions.0,
        r.retransmissions.1,
        r.retransmissions.1 as i64 - r.retransmissions.0 as i64
    );
    match r.first_divergent_round {
        Some(t) => {
            let (da, db) = r.divergent_deliveries.unwrap_or((0, 0));
            let _ = writeln!(
                out,
                "first divergent round: {t} (A applied {da} delivery(ies), B applied {db})"
            );
            let _ = writeln!(
                out,
                "delivery-time deltas: {} pair(s) later in B (max +{} round(s)), \
                 {} earlier; {} pair(s) only in A, {} only in B",
                r.later_in_b, r.max_delay, r.earlier_in_b, r.only_in_a, r.only_in_b
            );
            let _ = writeln!(out, "verdict: runs DIVERGE at round {t}");
        }
        None if r.identical => {
            let _ = writeln!(
                out,
                "verdict: runs are identical ({} round(s), {} transmission(s))",
                r.rounds.0, r.tx_counts.0
            );
        }
        None => {
            let _ = writeln!(
                out,
                "verdict: runs DIVERGE in length (A {} round(s), B {})",
                r.rounds.0, r.rounds.1
            );
        }
    }
    out
}

/// What the anomaly pass flags in one capture.
#[derive(Debug, Clone, Default)]
pub struct Anomalies {
    /// Interior rounds whose applied deliveries fall below half the
    /// run's median: `(round, deliveries, median)`.
    pub stragglers: Vec<(usize, usize, f64)>,
    /// Interior rounds with under half the median distinct senders:
    /// `(round, senders, median)`.
    pub utilization_dips: Vec<(usize, usize, f64)>,
    /// Messages whose completion time exceeds the paper's `n + r` bound:
    /// `(msg, completion_time, bound)`.
    pub slow_messages: Vec<(u32, usize, usize)>,
    /// Messages that never reached every vertex.
    pub incomplete_messages: Vec<u32>,
}

impl Anomalies {
    /// Whether the pass flagged anything at all.
    pub fn is_clean(&self) -> bool {
        self.stragglers.is_empty()
            && self.utilization_dips.is_empty()
            && self.slow_messages.is_empty()
            && self.incomplete_messages.is_empty()
    }
}

fn median(mut xs: Vec<usize>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2] as f64
}

/// Flags straggler rounds, utilization dips, and `n + r` violations in
/// one capture. Only interior rounds (strictly between the first and
/// last round that applied anything) can be stragglers or dips — ramp-up
/// and tail-off are the expected shape of a gossip run, not anomalies.
pub fn anomalies(log: &FlightLog) -> Result<Anomalies, String> {
    let view = replay(log, None)?;
    let mut out = Anomalies::default();
    let active: Vec<usize> = (0..view.applied.len())
        .filter(|&t| !view.applied[t].is_empty())
        .collect();
    if let (Some(&first), Some(&last)) = (active.first(), active.last()) {
        let deliveries: Vec<usize> = view.applied.iter().map(Vec::len).collect();
        let med_d = median(deliveries[first..=last].to_vec());
        let med_s = median(view.senders[first..=last].to_vec());
        for (t, &d) in deliveries.iter().enumerate().take(last).skip(first + 1) {
            if (d as f64) < med_d / 2.0 {
                out.stragglers.push((t, d, med_d));
            }
            let s = view.senders[t];
            if (s as f64) < med_s / 2.0 {
                out.utilization_dips.push((t, s, med_s));
            }
        }
    }
    let bound = view.n + log.header.radius as usize;
    for m in 0..view.n_msgs {
        let row = &view.first_hold[m * view.n..(m + 1) * view.n];
        if row.contains(&u32::MAX) {
            out.incomplete_messages.push(m as u32);
        } else {
            let completion = row.iter().copied().max().unwrap_or(0) as usize;
            if completion > bound {
                out.slow_messages.push((m as u32, completion, bound));
            }
        }
    }
    Ok(out)
}

/// Renders the anomaly pass as text (one line when clean).
pub fn render_anomalies(a: &Anomalies) -> String {
    if a.is_clean() {
        return String::from("anomalies: none\n");
    }
    let mut out = String::new();
    for (t, d, med) in &a.stragglers {
        let _ = writeln!(
            out,
            "anomaly: straggler round {t} applied {d} delivery(ies) (run median {med:.0})"
        );
    }
    for (t, s, med) in &a.utilization_dips {
        let _ = writeln!(
            out,
            "anomaly: utilization dip at round {t} — {s} sender(s) active (run median {med:.0})"
        );
    }
    for (m, c, b) in &a.slow_messages {
        let _ = writeln!(
            out,
            "anomaly: message {m} completed at time {c}, past the n + r bound {b}"
        );
    }
    for m in &a.incomplete_messages {
        let _ = writeln!(out, "anomaly: message {m} never reached every vertex");
    }
    out
}

/// A one-line classification of a capture's losses by cause, for summary
/// output (`sampled 4, not_held 11`). Empty string when lossless.
pub fn loss_breakdown(log: &FlightLog) -> String {
    let mut counts: Vec<(u8, usize)> = Vec::new();
    for l in log.losses() {
        match counts.iter_mut().find(|(c, _)| *c == l.cause) {
            Some((_, k)) => *k += 1,
            None => counts.push((l.cause, 1)),
        }
    }
    counts.sort_by_key(|&(c, _)| c);
    counts
        .iter()
        .map(|&(c, k)| format!("{} {k}", cause_label(c)))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_telemetry::flight::{FlightHeader, FlightRecord};

    fn header(n: u32, engine: &str) -> FlightHeader {
        FlightHeader {
            n,
            n_msgs: n,
            radius: 1,
            engine: engine.to_string(),
            graph_digest: 1,
            schedule_digest: 2,
            fault_digest: 0,
            origins: (0..n).collect(),
        }
    }

    /// A 3-vertex path gossiped by hand: txs chosen so the run completes.
    fn tiny_log(lossy: bool) -> FlightLog {
        let mut records = vec![
            FlightRecord::Tx {
                round: 0,
                msg: 0,
                from: 0,
                dests: vec![1],
            },
            FlightRecord::Tx {
                round: 0,
                msg: 2,
                from: 2,
                dests: vec![1],
            },
            FlightRecord::RoundEnd {
                round: 0,
                known_pairs: 5,
            },
            FlightRecord::Tx {
                round: 1,
                msg: 1,
                from: 1,
                dests: vec![0, 2],
            },
            FlightRecord::RoundEnd {
                round: 1,
                known_pairs: 7,
            },
            FlightRecord::Tx {
                round: 2,
                msg: 2,
                from: 1,
                dests: vec![0],
            },
            FlightRecord::Tx {
                round: 3,
                msg: 0,
                from: 1,
                dests: vec![2],
            },
        ];
        if lossy {
            records.insert(
                1,
                FlightRecord::Loss {
                    round: 0,
                    msg: 2,
                    from: 2,
                    to: 1,
                    cause: 0,
                },
            );
        }
        FlightLog {
            header: header(3, if lossy { "lossy" } else { "kernel" }),
            records,
            dropped: 0,
        }
    }

    #[test]
    fn inspect_time_travels() {
        let log = tiny_log(false);
        let at0 = inspect(&log, Some(0)).unwrap();
        assert_eq!(at0.known_pairs, 5);
        assert_eq!(at0.recorded_known_pairs, Some(5));
        assert!(!at0.complete);
        assert_eq!(at0.hold_counts, vec![1, 3, 1]);
        let end = inspect(&log, None).unwrap();
        assert_eq!(end.known_pairs, 9);
        assert!(end.complete);
        assert!(render_inspect(&end).contains("complete"));
        // Past-the-end rounds clamp.
        assert_eq!(inspect(&log, Some(99)).unwrap().round, 3);
    }

    #[test]
    fn diff_identical_and_divergent() {
        let a = tiny_log(false);
        let same = diff(&a, &a).unwrap();
        assert!(same.identical);
        assert_eq!(same.first_divergent_round, None);
        assert!(render_diff(&same).contains("identical"));

        let b = tiny_log(true);
        let d = diff(&a, &b).unwrap();
        assert!(!d.identical);
        assert_eq!(d.first_divergent_round, Some(0), "loss is at round 0");
        assert_eq!(d.loss_counts, (0, 1));
        assert!(d.only_in_a >= 1, "msg 2 never reaches v1/v0 in B");
        assert!(render_diff(&d).contains("DIVERGE at round 0"));
    }

    #[test]
    fn diff_rejects_incomparable_headers() {
        let a = tiny_log(false);
        let mut b = tiny_log(false);
        b.header.n = 4;
        b.header.origins.push(3);
        b.header.n_msgs = 4;
        let d = diff(&a, &b).unwrap();
        assert!(!d.comparable);
        assert!(!d.identical);
        assert!(render_diff(&d).contains("NOT COMPARABLE"));
    }

    #[test]
    fn anomaly_pass_flags_incomplete_and_slow() {
        let clean = anomalies(&tiny_log(false)).unwrap();
        assert!(clean.slow_messages.is_empty());
        assert!(clean.incomplete_messages.is_empty());
        let lossy = anomalies(&tiny_log(true)).unwrap();
        assert_eq!(lossy.incomplete_messages, vec![2]);
        assert!(render_anomalies(&lossy).contains("message 2 never reached"));
    }

    #[test]
    fn retransmissions_are_counted() {
        let mut log = tiny_log(false);
        log.records.push(FlightRecord::Tx {
            round: 4,
            msg: 0,
            from: 0,
            dests: vec![1],
        });
        let d = diff(&tiny_log(false), &log).unwrap();
        assert_eq!(d.retransmissions, (0, 1));
        assert!(!d.identical, "extra round in B");
        assert_eq!(d.first_divergent_round, Some(4));
    }

    #[test]
    fn loss_breakdown_labels_causes() {
        assert_eq!(loss_breakdown(&tiny_log(false)), "");
        assert_eq!(loss_breakdown(&tiny_log(true)), "sampled 1");
    }

    #[test]
    fn inspect_surfaces_alert_timeline() {
        use gossip_telemetry::flight::{alert_rule_code, alert_severity_code};
        let mut log = tiny_log(true);
        log.records.push(FlightRecord::Alert {
            round: 1,
            rule: alert_rule_code("loss_spike"),
            severity: alert_severity_code("warn"),
            value_bits: 0.75f64.to_bits(),
            threshold_bits: 0.5f64.to_bits(),
        });
        log.records.push(FlightRecord::Alert {
            round: 3,
            rule: alert_rule_code("bound"),
            severity: alert_severity_code("critical"),
            value_bits: 9.0f64.to_bits(),
            threshold_bits: 5.0f64.to_bits(),
        });
        let report = inspect(&log, None).unwrap();
        assert_eq!(report.alerts.len(), 2);
        let text = render_inspect(&report);
        assert!(text.contains("alert timeline: 2 alert(s)"), "{text}");
        assert!(
            text.contains("round   1: [warn] loss_spike — value 0.75, threshold 0.50"),
            "{text}"
        );
        assert!(
            text.contains("round   3: [critical] bound — value 9.00, threshold 5.00"),
            "{text}"
        );
        // Alert-free captures render no timeline header.
        let clean = inspect(&tiny_log(false), None).unwrap();
        assert!(!render_inspect(&clean).contains("alert timeline"));
    }

    #[test]
    fn inspect_surfaces_churn_timeline_and_repairs() {
        use gossip_telemetry::flight::churn_op_code;
        // A churn capture by hand: the 1-2 edge dies at round 1,
        // invalidating msg 1's delivery to v2; a repair resends it at
        // round 3 (delivered). Msg 0's delivery to v2 is invalidated too
        // and never repaired.
        let records = vec![
            FlightRecord::Tx {
                round: 0,
                msg: 1,
                from: 1,
                dests: vec![0],
            },
            FlightRecord::Churn {
                round: 1,
                op: churn_op_code("edge_remove"),
                u: 1,
                v: 2,
            },
            FlightRecord::Churn {
                round: 1,
                op: churn_op_code("node_leave"),
                u: 2,
                v: 2,
            },
            FlightRecord::Loss {
                round: 1,
                msg: 1,
                from: 1,
                to: 2,
                cause: 5,
            },
            FlightRecord::Loss {
                round: 2,
                msg: 0,
                from: 0,
                to: 2,
                cause: 5,
            },
            FlightRecord::Tx {
                round: 3,
                msg: 1,
                from: 1,
                dests: vec![2],
            },
        ];
        let log = FlightLog {
            header: header(3, "churn"),
            records,
            dropped: 0,
        };
        let report = inspect(&log, None).unwrap();
        assert_eq!(report.churn_events.len(), 2);
        assert_eq!(report.churn_invalidated, 2);
        assert_eq!(report.churn_repaired, 1, "msg 1 -> v2 lands at round 3");
        let text = render_inspect(&report);
        assert!(text.contains("topology churn: 2 event(s)"), "{text}");
        assert!(text.contains("edge_remove 1-2"), "{text}");
        assert!(text.contains("node_leave v2"), "{text}");
        assert!(
            text.contains("2 delivery(ies) invalidated, 1 of them"),
            "{text}"
        );
    }
}
