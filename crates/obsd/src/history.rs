//! Run-history aggregation: every schema-versioned artifact family the
//! workspace produces, ingested into one in-memory time-series index.
//!
//! Three artifact shapes exist (all JSON documents with `schema_version`):
//!
//! - **metrics** documents from `--metrics` runs:
//!   `{schema_version, snapshot: {counters, gauges, ...}, events: [...]}`;
//!   the per-round `round` / `round_end` events yield knowledge curves.
//! - **bench** artifacts (`BENCH_*.json`): `{schema_version, experiment,
//!   ...}`, optionally with a `rows` array of per-instance measurements
//!   (`exp_theorem1`'s family sweeps) — every numeric column becomes a
//!   series over the sweep.
//! - **recovery** reports (`kind: "recovery"`): the per-epoch table yields
//!   residual/loss/delivery trajectories.
//! - **profile** artifacts (`kind: "profile"`, from `gossip profile` /
//!   `gossip plan --profile-out`): headline construction numbers plus one
//!   `phase/<path>` scalar per planner phase (self time), which the
//!   dashboard renders as a per-phase stacked bar.
//!
//! A fourth, binary family also ingests: `.gfr` **flight records**
//! (recognized by their `GFR1` magic, not by JSON shape), yielding the
//! knowledge curve and per-round delivery counts.
//!
//! [`crate::dash::render_dashboard`] turns the index into a self-contained
//! HTML page.

use gossip_telemetry::{check_schema_version, FlightLog, Value};

/// Which artifact family a run came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// A `--metrics` document (snapshot + event stream).
    Metrics,
    /// A `BENCH_*.json` experiment artifact.
    Bench,
    /// A `RecoveryReport` artifact.
    Recovery,
    /// A `.gfr` flight record (`--flight-out`).
    Flight,
    /// A planner profile (`gossip profile` / `plan --profile-out`).
    Profile,
}

impl RunKind {
    /// Human label used in the dashboard.
    pub fn label(&self) -> &'static str {
        match self {
            RunKind::Metrics => "metrics",
            RunKind::Bench => "bench",
            RunKind::Recovery => "recovery",
            RunKind::Flight => "flight",
            RunKind::Profile => "profile",
        }
    }
}

/// One named time series: `(x, y)` points in ascending `x`.
#[derive(Debug, Clone)]
pub struct Series {
    /// What the series measures (e.g. `known_pairs`, `plan_ms`).
    pub name: String,
    /// The points, in ingestion order.
    pub points: Vec<(f64, f64)>,
}

/// One ingested artifact: headline scalars plus its time series.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Label (usually the file stem).
    pub name: String,
    /// Artifact family.
    pub kind: RunKind,
    /// Sub-family discriminator (the bench `experiment` name) so
    /// regression groups never mix measurements from different
    /// experiments that happen to share instance sizes.
    pub variant: Option<String>,
    /// Headline numbers, in artifact order.
    pub scalars: Vec<(String, f64)>,
    /// Extracted time series.
    pub series: Vec<Series>,
}

/// One flagged cross-run regression: the newest point of a judged
/// metric clears both the robust noise band and the metric's
/// directional gate relative to the prior runs in its group.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Comparison group: run kind, variant, and instance-size scalars
    /// (e.g. `profile n=64 m=96`) — runs are only judged against runs
    /// of the same shape.
    pub group: String,
    /// The judged scalar (e.g. `plan_ms`, `phase/plan/tree`).
    pub metric: String,
    /// Label of the offending (latest) run.
    pub run: String,
    /// The latest value.
    pub value: f64,
    /// Median of the prior runs.
    pub baseline: f64,
    /// Signed percentage change of the latest value vs the baseline.
    pub delta_pct: f64,
    /// Robust z-score (`0.6745 * dev / MAD`); infinite when the priors
    /// are exactly stable and the latest value moved at all.
    pub z: f64,
    /// EWMA (alpha 0.3) of the prior runs — the smoothed trend shown
    /// next to the baseline in the dashboard panel.
    pub ewma: f64,
}

/// The in-memory index of every ingested run.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Ingested runs, in ingestion order.
    pub runs: Vec<RunRecord>,
}

fn num(v: &Value) -> Option<f64> {
    v.as_f64()
        .or_else(|| v.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
}

impl History {
    /// An empty index.
    pub fn new() -> History {
        History::default()
    }

    /// Parses and classifies one artifact document. Returns the detected
    /// kind, or an error naming what made the document unreadable.
    pub fn ingest(&mut self, label: &str, content: &str) -> Result<RunKind, String> {
        let doc: Value =
            serde_json::from_str(content).map_err(|e| format!("{label}: not JSON: {e}"))?;
        check_schema_version(&doc).map_err(|e| format!("{label}: {e}"))?;
        let record = if doc.get("kind").and_then(Value::as_str) == Some("recovery") {
            ingest_recovery(label, &doc)
        } else if doc.get("kind").and_then(Value::as_str) == Some("profile") {
            ingest_profile(label, &doc)
        } else if doc.get("experiment").is_some() {
            ingest_bench(label, &doc)
        } else if doc.get("snapshot").is_some() {
            ingest_metrics(label, &doc)
        } else {
            return Err(format!(
                "{label}: unrecognized artifact (no kind/experiment/snapshot)"
            ));
        };
        let kind = record.kind;
        self.runs.push(record);
        Ok(kind)
    }

    /// Routes raw artifact bytes: `.gfr` flight records by their `GFR1`
    /// magic, everything else as a UTF-8 JSON document via
    /// [`History::ingest`].
    pub fn ingest_bytes(&mut self, label: &str, bytes: &[u8]) -> Result<RunKind, String> {
        if FlightLog::sniff(bytes) {
            return self.ingest_gfr(label, bytes);
        }
        let content = std::str::from_utf8(bytes)
            .map_err(|_| format!("{label}: neither a flight record nor UTF-8 JSON"))?;
        self.ingest(label, content)
    }

    /// Ingests one `.gfr` flight record: headline scalars (sizes, counts,
    /// eviction state) plus the knowledge curve and per-round applied
    /// delivery counts.
    pub fn ingest_gfr(&mut self, label: &str, bytes: &[u8]) -> Result<RunKind, String> {
        let log = FlightLog::decode(bytes).map_err(|e| format!("{label}: {e}"))?;
        let mut scalars = vec![
            ("n".to_string(), f64::from(log.header.n)),
            ("n_msgs".to_string(), f64::from(log.header.n_msgs)),
            ("radius".to_string(), f64::from(log.header.radius)),
            ("rounds".to_string(), log.rounds() as f64),
            ("transmissions".to_string(), log.txs().len() as f64),
            ("losses".to_string(), log.losses().len() as f64),
            ("epochs".to_string(), log.epochs().len() as f64),
        ];
        if log.dropped > 0 {
            scalars.push(("dropped_records".to_string(), log.dropped as f64));
        }
        let mut series = Vec::new();
        let known: Vec<(f64, f64)> = log
            .known_pairs_curve()
            .iter()
            .map(|&(r, k)| (f64::from(r), k as f64))
            .collect();
        if !known.is_empty() {
            series.push(Series {
                name: "known_pairs".to_string(),
                points: known,
            });
        }
        // Applied deliveries per round: destinations attempted minus the
        // round's suppressed deliveries (retransmissions included).
        let mut applied: Vec<(f64, f64)> = Vec::new();
        for tx in log.txs() {
            let x = f64::from(tx.round);
            match applied.iter_mut().find(|(r, _)| *r == x) {
                Some((_, y)) => *y += tx.dests.len() as f64,
                None => applied.push((x, tx.dests.len() as f64)),
            }
        }
        for l in log.losses() {
            let x = f64::from(l.round);
            if let Some((_, y)) = applied.iter_mut().find(|(r, _)| *r == x) {
                *y -= 1.0;
            }
        }
        if !applied.is_empty() {
            applied.sort_by(|a, b| a.0.total_cmp(&b.0));
            series.push(Series {
                name: "deliveries".to_string(),
                points: applied,
            });
        }
        self.runs.push(RunRecord {
            name: label.to_string(),
            kind: RunKind::Flight,
            variant: None,
            scalars,
            series,
        });
        Ok(RunKind::Flight)
    }

    /// [`History::ingest_bytes`] from a file path; the label is the file
    /// stem. Flight records are detected by content, so a `.gfr` capture
    /// never hits the UTF-8 JSON path.
    pub fn ingest_file(&mut self, path: &std::path::Path) -> Result<RunKind, String> {
        let label = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("artifact")
            .to_string();
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        self.ingest_bytes(&label, &bytes)
    }

    /// All series named `name` across runs, with the run labels.
    pub fn series_named(&self, name: &str) -> Vec<(&str, &Series)> {
        self.runs
            .iter()
            .flat_map(|r| {
                r.series
                    .iter()
                    .filter(|s| s.name == name)
                    .map(move |s| (r.name.as_str(), s))
            })
            .collect()
    }

    /// One scalar tracked across every run that has it — the cross-run
    /// trend lines (e.g. `plan_ms` over successive bench artifacts).
    pub fn scalar_trend(&self, name: &str) -> Vec<(&str, f64)> {
        self.runs
            .iter()
            .filter_map(|r| {
                r.scalars
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|&(_, v)| (r.name.as_str(), v))
            })
            .collect()
    }

    /// Cross-run regression detection: judges the *latest* run of each
    /// comparison group against the prior runs of the same group.
    ///
    /// Groups are `(kind, variant, n, m)` so only same-shaped runs are
    /// compared. Judged metrics: `makespan`, `plan_ms`, kernel speedups
    /// (`*_speedup_x`), and profile phase self-times (`phase/*`). A
    /// group needs [`MIN_REGRESSION_POINTS`] observations of a metric
    /// before its latest value is judged — anything thinner stays
    /// silent, so a fresh artifact directory never cries wolf.
    ///
    /// Two tests must both pass for a finding:
    ///
    /// - **noise gate**: the deviation from the prior median exceeds
    ///   3 robust z-units (`0.6745 * |dev| / MAD`); perfectly stable
    ///   priors (MAD 0) treat any movement as out of band.
    /// - **directional gate**, per metric class: wall-clock metrics
    ///   (`plan_ms`, `phase/*`) must exceed `2x median + 5ms` (the
    ///   absolute grace keeps micro-timings from flapping); `makespan`
    ///   (deterministic plan quality) must grow by more than 25%;
    ///   speedups must *fall* below half the median.
    ///
    /// Improvements never flag.
    pub fn regressions(&self) -> Vec<Regression> {
        const EWMA_ALPHA: f64 = 0.3;
        // (group, metric) -> (run name, value) points in ingestion order.
        // Vec-backed so the output ordering is deterministic across runs.
        type MetricPoints<'a> = Vec<((String, String), Vec<(&'a str, f64)>)>;
        let mut table: MetricPoints = Vec::new();
        for run in &self.runs {
            let group = group_key(run);
            for (name, v) in &run.scalars {
                if !judged_metric(name) {
                    continue;
                }
                let key = (group.clone(), name.clone());
                match table.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, pts)) => pts.push((run.name.as_str(), *v)),
                    None => table.push((key, vec![(run.name.as_str(), *v)])),
                }
            }
        }
        let mut out = Vec::new();
        for ((group, metric), pts) in table {
            if pts.len() < MIN_REGRESSION_POINTS {
                continue;
            }
            let (last_run, last) = *pts.last().expect("non-empty");
            let priors: Vec<f64> = pts[..pts.len() - 1].iter().map(|&(_, v)| v).collect();
            let med = median(&priors);
            let deviations: Vec<f64> = priors.iter().map(|v| (v - med).abs()).collect();
            let mad = median(&deviations);
            let dev = last - med;
            let beyond_noise = if mad > 0.0 {
                0.6745 * dev.abs() / mad >= 3.0
            } else {
                dev != 0.0
            };
            let regressed = if metric.ends_with("_speedup_x") {
                last < med / 2.0
            } else if metric == "makespan" {
                med > 0.0 && dev / med > 0.25
            } else {
                last > med * 2.0 + 5.0
            };
            if !(beyond_noise && regressed) {
                continue;
            }
            let z = if mad > 0.0 {
                0.6745 * dev / mad
            } else if dev > 0.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
            let ewma = priors
                .iter()
                .skip(1)
                .fold(priors[0], |e, &v| EWMA_ALPHA * v + (1.0 - EWMA_ALPHA) * e);
            let delta_pct = if med != 0.0 { dev / med * 100.0 } else { 0.0 };
            out.push(Regression {
                group,
                metric,
                run: last_run.to_string(),
                value: last,
                baseline: med,
                delta_pct,
                z,
                ewma,
            });
        }
        out
    }
}

/// Minimum observations of a `(group, metric)` pair before the latest
/// value is judged for regression.
pub const MIN_REGRESSION_POINTS: usize = 4;

fn judged_metric(name: &str) -> bool {
    name == "makespan"
        || name == "plan_ms"
        || name.ends_with("_speedup_x")
        || name.starts_with("phase/")
}

fn group_key(run: &RunRecord) -> String {
    use std::fmt::Write as _;
    let mut key = run.kind.label().to_string();
    if let Some(variant) = &run.variant {
        let _ = write!(key, " {variant}");
    }
    for dim in ["n", "m"] {
        if let Some(&(_, v)) = run.scalars.iter().find(|(k, _)| k == dim) {
            let _ = write!(key, " {dim}={v}");
        }
    }
    key
}

fn median(vals: &[f64]) -> f64 {
    let mut v = vals.to_vec();
    v.sort_by(f64::total_cmp);
    match v.len() {
        0 => 0.0,
        n if n % 2 == 1 => v[n / 2],
        n => (v[n / 2 - 1] + v[n / 2]) / 2.0,
    }
}

fn ingest_metrics(label: &str, doc: &Value) -> RunRecord {
    let mut scalars = Vec::new();
    let snapshot = &doc["snapshot"];
    for group in ["counters", "gauges"] {
        if let Some(entries) = snapshot[group].as_object() {
            for (k, v) in entries {
                if let Some(x) = num(v) {
                    scalars.push((k.clone(), x));
                }
            }
        }
    }
    let mut coverage = Vec::new();
    let mut known = Vec::new();
    if let Some(events) = doc["events"].as_array() {
        for e in events {
            match e["event"].as_str() {
                Some("round") => {
                    if let (Some(r), Some(c)) = (e["round"].as_f64(), e["coverage"].as_f64()) {
                        coverage.push((r, c));
                    }
                }
                Some("round_end") => {
                    if let (Some(r), Some(k)) = (e["round"].as_f64(), e["known_pairs"].as_f64()) {
                        known.push((r, k));
                    }
                }
                _ => {}
            }
        }
    }
    let mut series = Vec::new();
    if !coverage.is_empty() {
        series.push(Series {
            name: "coverage".to_string(),
            points: coverage,
        });
    }
    if !known.is_empty() {
        series.push(Series {
            name: "known_pairs".to_string(),
            points: known,
        });
    }
    RunRecord {
        name: label.to_string(),
        kind: RunKind::Metrics,
        variant: None,
        scalars,
        series,
    }
}

fn ingest_bench(label: &str, doc: &Value) -> RunRecord {
    let mut scalars = Vec::new();
    if let Some(members) = doc.as_object() {
        for (k, v) in members {
            if let Some(x) = num(v) {
                scalars.push((k.clone(), x));
            }
        }
    }
    // A `rows` sweep: every numeric column becomes a series over the sweep
    // index (x = the row's `n` when present, else its position).
    let mut series: Vec<Series> = Vec::new();
    if let Some(rows) = doc["rows"].as_array() {
        for (i, row) in rows.iter().enumerate() {
            let x = row["n"].as_f64().unwrap_or(i as f64);
            if let Some(members) = row.as_object() {
                for (k, v) in members {
                    let Some(y) = num(v) else { continue };
                    match series.iter_mut().find(|s| &s.name == k) {
                        Some(s) => s.points.push((x, y)),
                        None => series.push(Series {
                            name: k.clone(),
                            points: vec![(x, y)],
                        }),
                    }
                }
            }
        }
    }
    RunRecord {
        name: label.to_string(),
        kind: RunKind::Bench,
        variant: doc["experiment"].as_str().map(str::to_string),
        scalars,
        series,
    }
}

fn ingest_profile(label: &str, doc: &Value) -> RunRecord {
    let mut scalars = Vec::new();
    for key in [
        "n",
        "m",
        "radius",
        "makespan",
        "plan_ms",
        "attributed_ms",
        "unattributed_ms",
        "attributed_pct",
    ] {
        if let Some(x) = doc.get(key).and_then(num) {
            scalars.push((key.to_string(), x));
        }
    }
    // One `phase/<path>` scalar per phase-tree node carrying its *self*
    // time, so the dashboard's stacked bar partitions construction time
    // without double-counting parents.
    fn walk(prefix: &str, phases: &Value, scalars: &mut Vec<(String, f64)>) {
        let Some(list) = phases.as_array() else {
            return;
        };
        for p in list {
            let Some(name) = p["name"].as_str() else {
                continue;
            };
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            if let Some(self_ms) = p["self_ms"].as_f64() {
                scalars.push((format!("phase/{path}"), self_ms));
            }
            walk(&path, &p["children"], scalars);
        }
    }
    walk("", &doc["phases"], &mut scalars);
    RunRecord {
        name: label.to_string(),
        kind: RunKind::Profile,
        variant: None,
        scalars,
        series: Vec::new(),
    }
}

fn ingest_recovery(label: &str, doc: &Value) -> RunRecord {
    let mut scalars = Vec::new();
    for key in [
        "n",
        "baseline_rounds",
        "total_rounds",
        "overhead_rounds",
        "retransmissions",
        "lost_deliveries",
        "recovered",
        "survivors",
    ] {
        if let Some(x) = doc.get(key).and_then(num) {
            scalars.push((key.to_string(), x));
        }
    }
    let mut series: Vec<Series> = ["residual_after", "lost", "delivered"]
        .iter()
        .map(|name| Series {
            name: (*name).to_string(),
            points: Vec::new(),
        })
        .collect();
    if let Some(epochs) = doc["epochs"].as_array() {
        for e in epochs {
            let Some(x) = e["epoch"].as_f64() else {
                continue;
            };
            for s in &mut series {
                if let Some(y) = e[s.name.as_str()].as_f64() {
                    s.points.push((x, y));
                }
            }
        }
    }
    series.retain(|s| !s.points.is_empty());
    RunRecord {
        name: label.to_string(),
        kind: RunKind::Recovery,
        variant: None,
        scalars,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_all_three_families() {
        let mut h = History::new();
        let metrics = r#"{"schema_version": 1, "snapshot": {"counters": {"sim/sent": 12},
            "gauges": {"sim/coverage": 1.0}},
            "events": [{"event": "round", "round": 0, "coverage": 0.5},
                       {"event": "round", "round": 1, "coverage": 1.0}]}"#;
        let bench = r#"{"schema_version": 1, "experiment": "theorem1", "total_ms": 4.5,
            "rows": [{"n": 8, "makespan": 12, "plan_ms": 0.5},
                     {"n": 16, "makespan": 21, "plan_ms": 1.5}]}"#;
        let recovery = r#"{"schema_version": 1, "kind": "recovery", "n": 10,
            "total_rounds": 20, "retransmissions": 9, "lost_deliveries": 7,
            "recovered": true, "survivors": 10,
            "epochs": [{"epoch": 0, "lost": 7, "delivered": 40, "residual_after": 9},
                       {"epoch": 1, "lost": 0, "delivered": 9, "residual_after": 0}]}"#;
        assert_eq!(h.ingest("run", metrics), Ok(RunKind::Metrics));
        assert_eq!(h.ingest("BENCH_theorem1", bench), Ok(RunKind::Bench));
        assert_eq!(h.ingest("recovery", recovery), Ok(RunKind::Recovery));
        assert_eq!(h.runs.len(), 3);

        let cov = h.series_named("coverage");
        assert_eq!(cov.len(), 1);
        assert_eq!(cov[0].1.points, vec![(0.0, 0.5), (1.0, 1.0)]);

        let plan = h.series_named("plan_ms");
        assert_eq!(plan[0].1.points, vec![(8.0, 0.5), (16.0, 1.5)]);

        let resid = h.series_named("residual_after");
        assert_eq!(resid[0].1.points, vec![(0.0, 9.0), (1.0, 0.0)]);
        assert_eq!(h.scalar_trend("recovered"), vec![("recovery", 1.0)]);
    }

    #[test]
    fn classifies_profiles_and_flattens_phase_tree() {
        let mut h = History::new();
        let profile = r#"{"schema_version": 1, "kind": "profile",
            "algorithm": "concurrent-updown", "n": 12, "m": 18, "radius": 2,
            "makespan": 14, "plan_ms": 3.5, "attributed_ms": 3.4,
            "unattributed_ms": 0.1, "attributed_pct": 97.1,
            "alloc_tracking": false,
            "phases": [
                {"name": "plan", "calls": 1, "total_ms": 3.0, "self_ms": 0.2,
                 "children": [
                     {"name": "tree", "calls": 1, "total_ms": 1.8, "self_ms": 1.8},
                     {"name": "generate", "calls": 1, "total_ms": 1.0, "self_ms": 1.0}]},
                {"name": "flatten", "calls": 1, "total_ms": 0.4, "self_ms": 0.4}]}"#;
        assert_eq!(h.ingest("PROF_fig4", profile), Ok(RunKind::Profile));
        let run = &h.runs[0];
        assert_eq!(run.kind.label(), "profile");
        assert!(run.scalars.contains(&("plan_ms".to_string(), 3.5)));
        assert!(run.scalars.contains(&("phase/plan".to_string(), 0.2)));
        assert!(run.scalars.contains(&("phase/plan/tree".to_string(), 1.8)));
        assert!(run
            .scalars
            .contains(&("phase/plan/generate".to_string(), 1.0)));
        assert!(run.scalars.contains(&("phase/flatten".to_string(), 0.4)));
        assert_eq!(h.scalar_trend("attributed_pct"), vec![("PROF_fig4", 97.1)]);
    }

    #[test]
    fn rejects_unknown_and_wrong_schema() {
        let mut h = History::new();
        assert!(h.ingest("x", "not json").is_err());
        assert!(h.ingest("x", r#"{"schema_version": 1}"#).is_err());
        assert!(h
            .ingest("x", r#"{"schema_version": 99, "snapshot": {}}"#)
            .is_err());
        assert!(h.runs.is_empty());
    }

    fn profile_doc(makespan: f64, plan_ms: f64) -> String {
        format!(
            r#"{{"schema_version": 1, "kind": "profile", "n": 64, "m": 96,
                "makespan": {makespan}, "plan_ms": {plan_ms}}}"#
        )
    }

    #[test]
    fn regression_trips_on_doctored_makespan_but_not_on_a_stable_set() {
        // Stable: identical deterministic makespans, jittery plan times.
        let mut stable = History::new();
        for (i, plan_ms) in [0.41, 0.39, 0.44, 0.40].iter().enumerate() {
            stable
                .ingest(&format!("PROF_{i}"), &profile_doc(130.0, *plan_ms))
                .unwrap();
        }
        assert!(stable.regressions().is_empty());

        // Doctored: the last run's makespan doubles.
        let mut doctored = History::new();
        for (i, doc) in [
            profile_doc(130.0, 0.41),
            profile_doc(130.0, 0.39),
            profile_doc(130.0, 0.44),
            profile_doc(260.0, 0.40),
        ]
        .iter()
        .enumerate()
        {
            doctored.ingest(&format!("PROF_{i}"), doc).unwrap();
        }
        let regs = doctored.regressions();
        assert_eq!(regs.len(), 1, "only makespan should flag: {regs:?}");
        let r = &regs[0];
        assert_eq!(r.metric, "makespan");
        assert_eq!(r.run, "PROF_3");
        assert_eq!(r.group, "profile n=64 m=96");
        assert_eq!(r.value, 260.0);
        assert_eq!(r.baseline, 130.0);
        assert!((r.delta_pct - 100.0).abs() < 1e-9);
        // Stable priors: the movement is infinitely out of band.
        assert_eq!(r.z, f64::INFINITY);
        assert!((r.ewma - 130.0).abs() < 1e-9);
    }

    #[test]
    fn regression_needs_min_points_and_ignores_improvements() {
        // Three points: one short of the floor, even with a 10x jump.
        let mut thin = History::new();
        for (i, doc) in [
            profile_doc(130.0, 0.4),
            profile_doc(130.0, 0.4),
            profile_doc(1300.0, 0.4),
        ]
        .iter()
        .enumerate()
        {
            thin.ingest(&format!("PROF_{i}"), doc).unwrap();
        }
        assert!(thin.regressions().is_empty());

        // Improvements (makespan halves) never flag.
        let mut better = History::new();
        for (i, doc) in [
            profile_doc(130.0, 0.4),
            profile_doc(130.0, 0.4),
            profile_doc(130.0, 0.4),
            profile_doc(65.0, 0.4),
        ]
        .iter()
        .enumerate()
        {
            better.ingest(&format!("PROF_{i}"), doc).unwrap();
        }
        assert!(better.regressions().is_empty());
    }

    #[test]
    fn wall_metrics_get_absolute_grace_and_speedups_judge_downward() {
        let bench = |plan_ms: f64, speedup: f64| {
            format!(
                r#"{{"schema_version": 1, "experiment": "kernels", "n": 64,
                    "plan_ms": {plan_ms}, "csr_speedup_x": {speedup}}}"#,
            )
        };
        // Micro-timing doubles but stays inside the 5ms grace: silent.
        let mut micro = History::new();
        for (i, (p, s)) in [(0.4, 8.0), (0.5, 8.1), (0.4, 7.9), (1.2, 8.0)]
            .iter()
            .enumerate()
        {
            micro.ingest(&format!("B{i}"), &bench(*p, *s)).unwrap();
        }
        assert!(micro.regressions().is_empty());

        // A speedup collapse flags, and the group carries the experiment
        // name so other experiments' artifacts can't dilute it.
        let mut slow = History::new();
        for (i, (p, s)) in [(0.4, 8.0), (0.5, 8.1), (0.4, 7.9), (0.4, 2.0)]
            .iter()
            .enumerate()
        {
            slow.ingest(&format!("B{i}"), &bench(*p, *s)).unwrap();
        }
        let regs = slow.regressions();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "csr_speedup_x");
        assert_eq!(regs[0].group, "bench kernels n=64");
        assert!(regs[0].z < 0.0, "downward move, negative z: {}", regs[0].z);

        // A genuine wall blowup past the grace flags too.
        let mut wall = History::new();
        for (i, (p, s)) in [(3.0, 8.0), (3.2, 8.1), (2.9, 7.9), (40.0, 8.0)]
            .iter()
            .enumerate()
        {
            wall.ingest(&format!("B{i}"), &bench(*p, *s)).unwrap();
        }
        let regs = wall.regressions();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "plan_ms");
    }

    #[test]
    fn ingests_flight_records_by_magic_and_skips_unknown_bytes() {
        use gossip_telemetry::flight::FlightHeader;
        use gossip_telemetry::{FlightRecorder, Recorder, Value};

        let rec = FlightRecorder::new(FlightHeader {
            n: 2,
            n_msgs: 2,
            radius: 1,
            engine: "test".into(),
            graph_digest: 0,
            schedule_digest: 0,
            fault_digest: 0,
            origins: vec![0, 1],
        });
        rec.event("round_start", &[("round", Value::from_u64(0))]);
        rec.transmission(0, 0, 0, &[1]);
        rec.event(
            "round_end",
            &[
                ("round", Value::from_u64(0)),
                ("known_pairs", Value::from_u64(3)),
            ],
        );
        let bytes = rec.finish();

        let mut h = History::new();
        assert_eq!(h.ingest_bytes("run", &bytes), Ok(RunKind::Flight));
        let run = &h.runs[0];
        assert_eq!(run.kind.label(), "flight");
        assert!(run.scalars.contains(&("transmissions".to_string(), 1.0)));
        let known = h.series_named("known_pairs");
        assert_eq!(known[0].1.points, vec![(0.0, 3.0)]);
        let deliveries = h.series_named("deliveries");
        assert_eq!(deliveries[0].1.points, vec![(0.0, 1.0)]);

        // Unknown binary artifacts are a clean error (the dash directory
        // scan turns this into a skip-with-warning), never a panic.
        let mut h2 = History::new();
        assert!(h2.ingest_bytes("junk", &[0x00, 0xff, 0x80, 0x01]).is_err());
        // A corrupt capture that still carries the magic errors too.
        assert!(h2.ingest_bytes("trunc", &bytes[..8]).is_err());
        assert!(h2.runs.is_empty());
    }
}
