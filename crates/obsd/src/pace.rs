//! [`Paced`]: a recorder decorator that slows a run down to watchable
//! speed.
//!
//! A simulated gossip run over a small graph finishes in microseconds —
//! nothing a human pointing `curl` at `/metrics`, or a CI smoke job
//! scraping twice, could ever catch mid-flight. `Paced` wraps any
//! [`Recorder`] and stretches the round cadence without touching any
//! executor API: pacing is purely an observer concern, so it lives in the
//! observability layer.
//!
//! The sleep happens *between* rounds — a `round_end` arms a pending
//! delay that the next `round_start` consumes — so the final round of a
//! run ends immediately instead of tacking one useless delay onto every
//! paced execution.

use gossip_telemetry::{Recorder, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Forwards everything to `inner`, sleeping `delay` between one round's
/// end and the next round's start (a zero delay forwards transparently).
pub struct Paced<'r> {
    inner: &'r dyn Recorder,
    delay: Duration,
    /// Set by `round_end`, consumed (with the sleep) by the next
    /// `round_start` — never by run teardown.
    pending: AtomicBool,
}

impl<'r> Paced<'r> {
    /// Wraps `inner`, pausing `delay` between consecutive rounds.
    pub fn new(inner: &'r dyn Recorder, delay: Duration) -> Paced<'r> {
        Paced {
            inner,
            delay,
            pending: AtomicBool::new(false),
        }
    }
}

impl Recorder for Paced<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn counter(&self, name: &str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.inner.gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.inner.observe(name, value);
    }

    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        if name == "round_start"
            && self.pending.swap(false, Ordering::Relaxed)
            && !self.delay.is_zero()
        {
            std::thread::sleep(self.delay);
        }
        self.inner.event(name, fields);
        if name == "round_end" {
            self.pending.store(true, Ordering::Relaxed);
        }
    }

    fn span_observe(&self, path: &str, nanos: u64) {
        self.inner.span_observe(path, nanos);
    }

    fn wants_transmissions(&self) -> bool {
        self.inner.wants_transmissions()
    }

    fn transmission(&self, round: usize, msg: u32, from: u32, dests: &[u32]) {
        self.inner.transmission(round, msg, from, dests);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_telemetry::LiveRegistry;
    use std::time::Instant;

    #[test]
    fn delays_between_rounds_but_not_after_the_last() {
        let reg = LiveRegistry::new();
        let paced = Paced::new(&reg, Duration::from_millis(20));
        let start = Instant::now();
        paced.counter("c", 1);
        paced.gauge("g", 2.0);
        paced.event("loss", &[]);
        paced.event("round_start", &[]);
        paced.event("round_end", &[]);
        assert!(
            start.elapsed() < Duration::from_millis(15),
            "a round_end alone must not sleep — the delay is armed, not paid"
        );
        paced.event("round_start", &[]);
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "the next round_start pays the armed delay"
        );
        let mid = Instant::now();
        paced.event("round_end", &[]);
        paced.event("epoch_end", &[]);
        assert!(
            mid.elapsed() < Duration::from_millis(15),
            "the final round_end must not sleep"
        );
        assert_eq!(reg.counter_value("c"), 1);
        assert_eq!(reg.gauge_value("g"), Some(2.0));
        assert_eq!(reg.events_emitted(), 6);
    }

    #[test]
    fn forwards_transmissions_to_the_inner_recorder() {
        use gossip_telemetry::flight::FlightHeader;
        use gossip_telemetry::FlightRecorder;

        let flight = FlightRecorder::new(FlightHeader {
            n: 2,
            n_msgs: 2,
            radius: 1,
            engine: "test".into(),
            graph_digest: 0,
            schedule_digest: 0,
            fault_digest: 0,
            origins: vec![0, 1],
        });
        let paced = Paced::new(&flight, Duration::ZERO);
        assert!(
            paced.wants_transmissions(),
            "pacing must not hide the inner recorder's interest in transmissions"
        );
        paced.transmission(0, 1, 0, &[1]);
        assert_eq!(flight.len(), 1);
    }
}
