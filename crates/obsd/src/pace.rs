//! [`Paced`]: a recorder decorator that slows a run down to watchable
//! speed.
//!
//! A simulated gossip run over a small graph finishes in microseconds —
//! nothing a human pointing `curl` at `/metrics`, or a CI smoke job
//! scraping twice, could ever catch mid-flight. `Paced` wraps any
//! [`Recorder`] and sleeps after each `round_end` event, stretching the
//! round cadence without touching any executor API: pacing is purely an
//! observer concern, so it lives in the observability layer.

use gossip_telemetry::{Recorder, Value};
use std::time::Duration;

/// Forwards everything to `inner`, sleeping `delay` after each `round_end`
/// event (a zero delay forwards transparently).
pub struct Paced<'r> {
    inner: &'r dyn Recorder,
    delay: Duration,
}

impl<'r> Paced<'r> {
    /// Wraps `inner`, pausing `delay` after every completed round.
    pub fn new(inner: &'r dyn Recorder, delay: Duration) -> Paced<'r> {
        Paced { inner, delay }
    }
}

impl Recorder for Paced<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn counter(&self, name: &str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.inner.gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.inner.observe(name, value);
    }

    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        self.inner.event(name, fields);
        if name == "round_end" && !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
    }

    fn span_observe(&self, path: &str, nanos: u64) {
        self.inner.span_observe(path, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_telemetry::LiveRegistry;
    use std::time::Instant;

    #[test]
    fn forwards_and_delays_round_ends_only() {
        let reg = LiveRegistry::new();
        let paced = Paced::new(&reg, Duration::from_millis(20));
        let start = Instant::now();
        paced.counter("c", 1);
        paced.gauge("g", 2.0);
        paced.event("loss", &[]);
        assert!(
            start.elapsed() < Duration::from_millis(15),
            "no pacing off rounds"
        );
        paced.event("round_end", &[]);
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(reg.counter_value("c"), 1);
        assert_eq!(reg.gauge_value("g"), Some(2.0));
        assert_eq!(reg.events_emitted(), 2);
    }
}
