//! gossip-obsd: live runtime observability for gossip executions.
//!
//! Everything the workspace produced so far is post-hoc — JSONL metrics,
//! Chrome traces, and `BENCH_*.json` artifacts inspected after a run ends.
//! This crate makes a *running* execution observable, std-only (consistent
//! with the vendored/offline build policy):
//!
//! - [`prometheus::render`] turns a [`gossip_telemetry::LiveRegistry`] into
//!   Prometheus text exposition format v0.0.4 — deterministic output for a
//!   deterministic run, so the format itself is golden-testable;
//! - [`server::ObsdServer`] is a tiny `std::net::TcpListener` HTTP server
//!   exposing `/metrics` (the exposition), `/healthz` (JSON liveness), and
//!   `/events` (NDJSON streaming of live executor events: round
//!   start/end, delivery losses, epoch transitions);
//! - [`pace::Paced`] is a recorder decorator that stretches the round
//!   cadence (sleeping between one round's end and the next round's
//!   start), turning a microseconds-long simulated run into something a
//!   human (or a CI smoke job) can actually watch;
//! - [`history::History`] ingests any set of schema-versioned artifacts
//!   (metrics JSONL documents, `BENCH_*.json`, recovery reports, `.gfr`
//!   flight records) into an in-memory time-series index, and
//!   [`dash::render_dashboard`] renders it as one self-contained HTML
//!   page with inline SVG sparklines;
//! - [`postmortem`] analyzes `.gfr` flight records after the fact:
//!   time-travel hold-set reconstruction at any round, cross-run
//!   divergence diffing, and an anomaly pass (stragglers, utilization
//!   dips, `n + r` violations).
//!
//! The CLI front-ends are `gossip serve` (live: runs plan + resilient
//! execution under the HTTP server), `gossip dash` (offline aggregation),
//! and `gossip inspect` / `gossip diff` (post-mortem). DESIGN.md §12–§13
//! document the endpoint contract, the metric name registry, the event
//! schema, and the `.gfr` format.

pub mod dash;
pub mod history;
pub mod pace;
pub mod postmortem;
pub mod prometheus;
pub mod server;

pub use dash::render_dashboard;
pub use history::{History, RunKind, RunRecord};
pub use pace::Paced;
pub use postmortem::{anomalies, diff, inspect, Anomalies, DiffReport, InspectReport};
pub use prometheus::render;
pub use server::{Health, ObsdServer};
