//! [`ObsdServer`]: a tiny std-only HTTP/1.1 server over a
//! [`LiveRegistry`].
//!
//! Endpoints (all `GET`, all `Connection: close`):
//!
//! - `/metrics` — Prometheus text exposition v0.0.4 of the registry
//!   ([`crate::prometheus::render`]);
//! - `/healthz` — JSON liveness: `{"status":"ok","phase":...,"done":...,
//!   "uptime_ms":...}`; the status flips to `"degraded"` once a critical
//!   watchdog alert fires (see [`ObsdServer::set_alerts`]);
//! - `/events` — NDJSON stream: the connection subscribes to the
//!   registry's event tap and receives every event from subscription
//!   onward, one JSON object per line, until the run is marked done (or
//!   the server stops);
//! - `/alerts` — JSON snapshot of every watchdog alert fired so far
//!   (`{"schema_version":...,"kind":"alerts","count":...,"critical":...,
//!   "alerts":[...]}`); serving the request also runs the sink's
//!   wall-clock stall poll, so a *hung* run surfaces here even though it
//!   emits nothing;
//! - `/alerts/stream` — NDJSON: one line per fired alert, replaying those
//!   already fired and then following new ones until the run is done.
//!
//! The implementation is deliberately minimal — request line parsing only,
//! one thread per connection, no keep-alive, no chunked encoding — because
//! its clients are `curl`, Prometheus scrapers, and the CI smoke job, all
//! of which speak exactly this much HTTP.

use crate::prometheus;
use gossip_telemetry::{AlertSink, LiveRegistry, Value, SCHEMA_VERSION};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Liveness state shared between the serving run and `/healthz`.
pub struct Health {
    started: Instant,
    done: AtomicBool,
    degraded: AtomicBool,
    phase: Mutex<String>,
}

impl Health {
    fn new() -> Health {
        Health {
            started: Instant::now(),
            done: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            phase: Mutex::new("starting".to_string()),
        }
    }

    /// Names the stage the run is in (`planning`, `executing`, `complete`,
    /// ...); surfaced verbatim in `/healthz`.
    pub fn set_phase(&self, phase: &str) {
        *self.phase.lock().unwrap_or_else(|e| e.into_inner()) = phase.to_string();
    }

    /// Marks the run finished: `/events` connections drain and close.
    pub fn set_done(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    /// Whether the run was marked finished.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Relaxed)
    }

    /// Marks the run degraded: `/healthz` reports `"degraded"` from now
    /// on. Sticky (a degraded run does not recover its status) — flipped
    /// when a critical watchdog alert fires.
    pub fn set_degraded(&self) {
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// Whether the run was marked degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> String {
        let phase = self.phase.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let status = if self.is_degraded() { "degraded" } else { "ok" };
        serde_json::to_string(&Value::Object(vec![
            ("status".to_string(), Value::String(status.to_string())),
            ("phase".to_string(), Value::String(phase)),
            ("done".to_string(), Value::Bool(self.is_done())),
            (
                "uptime_ms".to_string(),
                Value::from_u64(self.started.elapsed().as_millis() as u64),
            ),
        ]))
        .unwrap_or_else(|_| String::from("{\"status\":\"ok\"}"))
    }
}

type Subscribers = Arc<Mutex<Vec<mpsc::Sender<String>>>>;
type SharedSink = Arc<Mutex<Option<Arc<AlertSink>>>>;

/// The running server; dropping (or [`ObsdServer::stop`]) shuts it down.
pub struct ObsdServer {
    addr: SocketAddr,
    registry: Arc<LiveRegistry>,
    health: Arc<Health>,
    shutdown: Arc<AtomicBool>,
    alerts: SharedSink,
    accept_handle: Option<JoinHandle<()>>,
}

impl ObsdServer {
    /// Binds `listen` (e.g. `127.0.0.1:9464`; port `0` picks a free one),
    /// installs the event tap on `registry`, and starts the accept loop.
    pub fn start(listen: &str, registry: Arc<LiveRegistry>) -> io::Result<ObsdServer> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let health = Arc::new(Health::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let subscribers: Subscribers = Arc::new(Mutex::new(Vec::new()));
        let alerts: SharedSink = Arc::new(Mutex::new(None));

        // Broadcast tap: each rendered event line fans out to every live
        // `/events` subscriber; dead subscribers drop out on send failure.
        let subs = Arc::clone(&subscribers);
        registry.set_event_tap(Arc::new(move |_seq, line| {
            let mut subs = subs.lock().unwrap_or_else(|e| e.into_inner());
            subs.retain(|tx| tx.send(line.to_string()).is_ok());
        }));

        let accept_handle = {
            let registry = Arc::clone(&registry);
            let health = Arc::clone(&health);
            let shutdown = Arc::clone(&shutdown);
            let subscribers = Arc::clone(&subscribers);
            let alerts = Arc::clone(&alerts);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let registry = Arc::clone(&registry);
                    let health = Arc::clone(&health);
                    let shutdown = Arc::clone(&shutdown);
                    let subscribers = Arc::clone(&subscribers);
                    let alerts = Arc::clone(&alerts);
                    std::thread::spawn(move || {
                        let _ = handle_connection(
                            stream,
                            &registry,
                            &health,
                            &shutdown,
                            &subscribers,
                            &alerts,
                        );
                    });
                }
            })
        };

        Ok(ObsdServer {
            addr,
            registry,
            health,
            shutdown,
            alerts,
            accept_handle: Some(accept_handle),
        })
    }

    /// Attaches a watchdog alert sink: `/alerts` and `/alerts/stream`
    /// serve it, and `/healthz` degrades once it carries a critical
    /// alert. May be called after the server is already serving (the CLI
    /// builds its `AlertEngine` only once planning is done).
    pub fn set_alerts(&self, sink: Arc<AlertSink>) {
        *self.alerts.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    }

    /// The bound address (resolves the actual port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared liveness state, for the run driver to update.
    pub fn health(&self) -> Arc<Health> {
        Arc::clone(&self.health)
    }

    /// Stops accepting, detaches the event tap, and joins the accept loop.
    /// In-flight `/events` connections drain and close on their own.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        if self.accept_handle.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Relaxed);
        self.health.set_done();
        self.registry.clear_event_tap();
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsdServer {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// The sink, if one was attached — consulted per request so a sink set
/// mid-run is picked up. Also the degradation point: the wall-clock stall
/// poll runs and a critical alert flips `/healthz`, so watching happens
/// even when the run thread itself is wedged.
fn current_sink(alerts: &SharedSink, health: &Health) -> Option<Arc<AlertSink>> {
    let sink = alerts
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)?;
    sink.poll();
    if sink.has_critical() {
        health.set_degraded();
    }
    Some(sink)
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &LiveRegistry,
    health: &Health,
    shutdown: &AtomicBool,
    subscribers: &Subscribers,
    alerts: &SharedSink,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients aren't RST mid-send.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
    }
    match path {
        "/metrics" => {
            // Scraping also runs the sink's wall-clock stall poll, and
            // the sink (when attached) is the authoritative source for
            // `gossip_alerts_total` — a poll-fired alert shows up on the
            // very scrape that fired it, not at the next recorded event.
            let sink = current_sink(alerts, health);
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &prometheus::render_with_alerts(registry, sink.as_deref()),
            )
        }
        "/healthz" => {
            current_sink(alerts, health);
            write_response(&mut stream, "200 OK", "application/json", &health.to_json())
        }
        "/events" => stream_events(stream, health, shutdown, subscribers),
        "/alerts" => {
            let body = match current_sink(alerts, health) {
                Some(sink) => sink.to_value(),
                None => empty_alerts(),
            };
            write_response(
                &mut stream,
                "200 OK",
                "application/json",
                &serde_json::to_string(&body).unwrap_or_else(|_| String::from("{}")),
            )
        }
        "/alerts/stream" => stream_alerts(stream, health, shutdown, alerts),
        _ => write_response(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// The `/alerts` shape when no sink is attached: a valid, empty snapshot.
fn empty_alerts() -> Value {
    Value::Object(vec![
        (
            "schema_version".to_string(),
            Value::from_u64(SCHEMA_VERSION),
        ),
        ("kind".to_string(), Value::String("alerts".to_string())),
        ("count".to_string(), Value::from_u64(0)),
        ("critical".to_string(), Value::Bool(false)),
        ("alerts".to_string(), Value::Array(Vec::new())),
    ])
}

/// NDJSON follow of the alert sink: replays every alert already fired,
/// then polls for new ones until the run finishes. Alerts are rare, so a
/// 50 ms poll against the sink (there is no per-alert broadcast channel)
/// costs nothing and keeps the sink free of subscriber plumbing.
fn stream_alerts(
    mut stream: TcpStream,
    health: &Health,
    shutdown: &AtomicBool,
    alerts: &SharedSink,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut sent = 0usize;
    loop {
        // Observe the finish flag *before* draining, so alerts fired
        // before the run was marked done are always delivered.
        let finished = health.is_done() || shutdown.load(Ordering::Relaxed);
        if let Some(sink) = current_sink(alerts, health) {
            let all = sink.alerts();
            for alert in &all[sent.min(all.len())..] {
                let line =
                    serde_json::to_string(&alert.to_value()).unwrap_or_else(|_| String::from("{}"));
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
            }
            if all.len() > sent {
                sent = all.len();
                stream.flush()?;
            }
        }
        if finished {
            stream.flush()?;
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn stream_events(
    mut stream: TcpStream,
    health: &Health,
    shutdown: &AtomicBool,
    subscribers: &Subscribers,
) -> io::Result<()> {
    let (tx, rx) = mpsc::channel::<String>();
    subscribers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(tx);
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => {
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
                stream.flush()?;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Once the run is done (or the server stops) there is
                // nothing more to wait for: drain whatever is queued and
                // close so clients see EOF, not a hang.
                if health.is_done() || shutdown.load(Ordering::Relaxed) {
                    while let Ok(line) = rx.try_recv() {
                        stream.write_all(line.as_bytes())?;
                        stream.write_all(b"\n")?;
                    }
                    stream.flush()?;
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_telemetry::Recorder;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_healthz_and_404() {
        let registry = Arc::new(LiveRegistry::new());
        registry.counter("exec/deliveries", 3);
        registry.gauge("round_current", 2.0);
        let server = ObsdServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("gossip_exec_deliveries 3\n"));
        assert!(metrics.contains("gossip_round_current 2\n"));

        let health = get(addr, "/healthz");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(health.contains("\"done\":false"));
        server.health().set_phase("executing");
        assert!(get(addr, "/healthz").contains("\"phase\":\"executing\""));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        server.stop();
    }

    #[test]
    fn scrapes_observe_live_progress() {
        let registry = Arc::new(LiveRegistry::new());
        let server = ObsdServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.addr();
        registry.gauge("round_current", 1.0);
        assert!(get(addr, "/metrics").contains("gossip_round_current 1\n"));
        registry.gauge("round_current", 5.0);
        assert!(get(addr, "/metrics").contains("gossip_round_current 5\n"));
        server.stop();
    }

    #[test]
    fn alerts_endpoint_snapshots_and_degrades_healthz() {
        use gossip_telemetry::watch::{RuleSet, Severity, StallRule};
        let registry = Arc::new(LiveRegistry::new());
        let server = ObsdServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.addr();

        // No sink attached: a valid empty snapshot, healthy status.
        let body = get(addr, "/alerts");
        assert!(body.contains("\"kind\":\"alerts\""), "{body}");
        assert!(body.contains("\"count\":0"));
        assert!(get(addr, "/healthz").contains("\"status\":\"ok\""));

        // A sink whose stall budget is already blown: the request-side
        // poll fires the alert and flips health to degraded.
        let rules = RuleSet {
            stall: Some(StallRule {
                budget_ms: 1,
                severity: Severity::Critical,
            }),
            ..Default::default()
        };
        let sink = Arc::new(AlertSink::new(rules));
        server.set_alerts(Arc::clone(&sink));
        std::thread::sleep(Duration::from_millis(10));
        let body = get(addr, "/alerts");
        assert!(body.contains("\"rule\":\"stall\""), "{body}");
        assert!(body.contains("\"critical\":true"));
        assert!(get(addr, "/healthz").contains("\"status\":\"degraded\""));

        // The exposition reports the poll-fired alert straight from the
        // sink — no registry counter exists yet (nothing flowed through
        // an engine), but the scrape must not miss it.
        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("gossip_alerts_total{rule=\"stall\",severity=\"critical\"} 1\n"),
            "{metrics}"
        );

        // The NDJSON follow drains the fired alert and closes on done.
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /alerts/stream HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        server.health().set_done();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        let payload = body.split("\r\n\r\n").nth(1).unwrap();
        let lines: Vec<&str> = payload.lines().collect();
        assert_eq!(lines.len(), 1, "{payload}");
        let v: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(v["rule"].as_str(), Some("stall"));
        assert_eq!(v["severity"].as_str(), Some("critical"));
        server.stop();
    }

    #[test]
    fn events_stream_ndjson_until_done() {
        let registry = Arc::new(LiveRegistry::new());
        let server = ObsdServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.addr();
        let health = server.health();

        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        // Give the subscription a beat to register before emitting.
        std::thread::sleep(Duration::from_millis(100));
        for t in 0..3u64 {
            registry.event("round_end", &[("round", Value::from_u64(t))]);
        }
        health.set_done();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        let payload = body.split("\r\n\r\n").nth(1).unwrap();
        let lines: Vec<&str> = payload.lines().collect();
        assert_eq!(lines.len(), 3, "{payload}");
        let mut prev = None;
        for line in lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["event"].as_str(), Some("round_end"));
            let round = v["round"].as_u64().unwrap();
            assert!(prev.is_none_or(|p| round > p), "rounds must be monotone");
            prev = Some(round);
        }
        server.stop();
    }
}
