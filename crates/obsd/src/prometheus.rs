//! Prometheus text exposition format v0.0.4 for a [`LiveRegistry`].
//!
//! Name mapping: every registry name is prefixed with `gossip_` and every
//! character outside `[a-zA-Z0-9_:]` (the registry uses `/` as its
//! namespace separator) becomes `_`, so `recovery/residual_pairs` is
//! scraped as `gossip_recovery_residual_pairs`. Histograms are rendered
//! against the fixed bucket layout [`BUCKETS`] computed at scrape time from
//! the raw samples — the registry stores exact values, so re-bucketing
//! never loses information and the layout can evolve without touching
//! recording sites. Span *durations* are wall-clock and therefore
//! nondeterministic; `/metrics` exposes spans only as completion counts
//! (`gossip_span_completed_total{path="..."}`), keeping the whole document
//! deterministic for a deterministic run (the golden test relies on this).

use gossip_telemetry::{AlertSink, Histogram, LiveRegistry};
use std::fmt::Write as _;

/// Upper bounds (`le`) of the histogram buckets, in ascending order; a
/// final `+Inf` bucket is always appended. The layout spans unitless
/// per-round observations (fan-out, idle receivers) up to nanosecond
/// timings (`online/round_ns`).
pub const BUCKETS: [f64; 17] = [
    0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
];

/// `gossip_` + the registry name with every invalid character folded to
/// `_`.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 7);
    out.push_str("gossip_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a sample value the Prometheus way: integral values without a
/// fractional part, everything else via the shortest `f64` display.
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_histogram(out: &mut String, name: &str, raw: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} Histogram \"{raw}\".");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let values = h.values();
    for le in BUCKETS {
        let cum = values.iter().filter(|&&v| v <= le).count();
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", fmt_value(le));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", values.len());
    let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum()));
    let _ = writeln!(out, "{name}_count {}", values.len());
}

/// Renders the whole registry as one exposition document: counters, then
/// gauges, then histograms (all name-sorted within their group), then span
/// completion counts and the event counter.
pub fn render(registry: &LiveRegistry) -> String {
    render_with_alerts(registry, None)
}

/// [`render`], but with an attached [`AlertSink`] as the authoritative
/// source for `gossip_alerts_total`. The registry's `alerts/...` counters
/// only see alerts the engine emitted downstream; the sink also holds
/// wall-clock poll firings the engine has not flushed yet, so a scrape
/// arriving between the poll and the next recorded event still reports
/// them.
pub fn render_with_alerts(registry: &LiveRegistry, sink: Option<&AlertSink>) -> String {
    let mut out = String::new();
    // Watchdog counters (`alerts/<rule>/<severity>`) render as one
    // labeled family instead of a name per series; collected while the
    // plain counters stream out, emitted right after them. A run with no
    // alerts leaves the document byte-identical to pre-watchdog builds.
    let mut alert_series: Vec<(String, String, u64)> = match sink {
        Some(s) => s
            .counts()
            .into_iter()
            .map(|((rule, severity), v)| (rule, severity.to_string(), v))
            .collect(),
        None => Vec::new(),
    };
    for (raw, v) in registry.counters() {
        if let Some((rule, severity)) = raw
            .strip_prefix("alerts/")
            .and_then(|rest| rest.split_once('/'))
        {
            // With a sink attached its counts already cover these.
            if sink.is_none() {
                alert_series.push((rule.to_string(), severity.to_string(), v));
            }
            continue;
        }
        let name = metric_name(&raw);
        let _ = writeln!(out, "# HELP {name} Counter \"{raw}\".");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    if !alert_series.is_empty() {
        let _ = writeln!(
            out,
            "# HELP gossip_alerts_total Watchdog alerts fired, by rule and severity."
        );
        let _ = writeln!(out, "# TYPE gossip_alerts_total counter");
        for (rule, severity, v) in alert_series {
            let _ = writeln!(
                out,
                "gossip_alerts_total{{rule=\"{}\",severity=\"{}\"}} {v}",
                escape_label(&rule),
                escape_label(&severity)
            );
        }
    }
    for (raw, v) in registry.gauges() {
        let name = metric_name(&raw);
        let _ = writeln!(out, "# HELP {name} Gauge \"{raw}\".");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(v));
    }
    for (raw, h) in registry.histograms() {
        render_histogram(&mut out, &metric_name(&raw), &raw, &h);
    }
    let spans = registry.spans();
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "# HELP gossip_span_completed_total Completed spans by nested path."
        );
        let _ = writeln!(out, "# TYPE gossip_span_completed_total counter");
        for (path, h) in spans {
            let _ = writeln!(
                out,
                "gossip_span_completed_total{{path=\"{}\"}} {}",
                escape_label(&path),
                h.count()
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP gossip_events_emitted_total Telemetry events emitted."
    );
    let _ = writeln!(out, "# TYPE gossip_events_emitted_total counter");
    let _ = writeln!(
        out,
        "gossip_events_emitted_total {}",
        registry.events_emitted()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_telemetry::Recorder;

    #[test]
    fn name_mapping_folds_separators() {
        assert_eq!(
            metric_name("recovery/residual_pairs"),
            "gossip_recovery_residual_pairs"
        );
        assert_eq!(metric_name("round_current"), "gossip_round_current");
        assert_eq!(
            metric_name("exec/lost/not_held"),
            "gossip_exec_lost_not_held"
        );
    }

    #[test]
    fn values_format_like_prometheus() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(0.5), "0.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(1e9), "1000000000");
    }

    #[test]
    fn exposition_has_every_family_and_cumulative_buckets() {
        let r = LiveRegistry::new();
        r.counter("exec/deliveries", 7);
        r.gauge("round_current", 3.0);
        r.gauge("known_pairs", 40.0);
        r.observe("sim/fanout_max", 1.0);
        r.observe("sim/fanout_max", 3.0);
        r.observe("sim/fanout_max", 600.0);
        r.event("round_end", &[]);
        let text = render(&r);
        assert!(text.contains("# TYPE gossip_exec_deliveries counter\ngossip_exec_deliveries 7\n"));
        assert!(text.contains("# TYPE gossip_round_current gauge\ngossip_round_current 3\n"));
        assert!(text.contains("gossip_known_pairs 40\n"));
        // Buckets are cumulative: le=1 sees one sample, le=5 two, le=1000
        // and +Inf all three.
        assert!(text.contains("gossip_sim_fanout_max_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("gossip_sim_fanout_max_bucket{le=\"5\"} 2\n"));
        assert!(text.contains("gossip_sim_fanout_max_bucket{le=\"1000\"} 3\n"));
        assert!(text.contains("gossip_sim_fanout_max_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("gossip_sim_fanout_max_sum 604\n"));
        assert!(text.contains("gossip_sim_fanout_max_count 3\n"));
        assert!(text.contains("gossip_events_emitted_total 1\n"));
        // Every non-comment line is `name{labels} value` with a finite or
        // +Inf-labelled value; spot-check the document parses line-wise.
        for line in text.lines() {
            assert!(!line.is_empty());
            if !line.starts_with('#') {
                assert!(line.starts_with("gossip_"), "bad family in {line:?}");
                assert!(line.rsplit(' ').next().unwrap().parse::<f64>().is_ok());
            }
        }
    }

    #[test]
    fn alert_counters_render_as_one_labeled_family() {
        let r = LiveRegistry::new();
        r.counter("alerts/stall/critical", 1);
        r.counter("alerts/loss_spike/warn", 2);
        r.counter("exec/deliveries", 7);
        let text = render(&r);
        assert!(text.contains("# TYPE gossip_alerts_total counter\n"));
        assert!(text.contains("gossip_alerts_total{rule=\"stall\",severity=\"critical\"} 1\n"));
        assert!(text.contains("gossip_alerts_total{rule=\"loss_spike\",severity=\"warn\"} 2\n"));
        // The raw per-severity counter names must not leak as families.
        assert!(!text.contains("gossip_alerts_stall_critical"));
        assert!(text.contains("gossip_exec_deliveries 7\n"));
        // No alerts: the family is absent entirely, keeping alert-free
        // expositions byte-identical to pre-watchdog builds.
        let clean = LiveRegistry::new();
        clean.counter("exec/deliveries", 7);
        assert!(!render(&clean).contains("gossip_alerts_total"));
    }

    #[test]
    fn span_counts_expose_without_durations() {
        let r = LiveRegistry::new();
        r.span_observe("recover/epoch", 123_456);
        r.span_observe("recover/epoch", 99);
        let text = render(&r);
        assert!(text.contains("gossip_span_completed_total{path=\"recover/epoch\"} 2\n"));
        assert!(
            !text.contains("123456"),
            "span durations must not leak into the deterministic exposition"
        );
    }
}
