//! Self-contained HTML dashboard over a [`History`] index.
//!
//! One page, zero external assets: styling is an inline `<style>` block
//! and every chart is an inline SVG sparkline, so the file works from
//! `file://`, an air-gapped CI artifact store, or an email attachment.
//! Layout: an overview table of every ingested run, then one section per
//! run with its headline scalars and a sparkline per extracted series
//! (knowledge curves for metrics runs, sweep columns for bench artifacts,
//! per-epoch residual/loss trajectories for recovery reports). Planner
//! profiles get a per-phase stacked bar partitioning construction time by
//! phase self time.

use crate::history::{History, Regression, RunKind, RunRecord, Series};
use std::fmt::Write as _;

const WIDTH: f64 = 260.0;
const HEIGHT: f64 = 48.0;
const PAD: f64 = 3.0;

fn escape_html(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Short human rendering of a scalar (trims float noise).
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// An inline SVG sparkline of one series: a polyline over the scaled
/// points plus a dot on the last one, with min/max annotated.
pub fn sparkline(series: &Series) -> String {
    let pts = &series.points;
    if pts.is_empty() {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let sx = |x: f64| {
        if x1 > x0 {
            PAD + (x - x0) / (x1 - x0) * (WIDTH - 2.0 * PAD)
        } else {
            WIDTH / 2.0
        }
    };
    let sy = |y: f64| {
        if y1 > y0 {
            HEIGHT - PAD - (y - y0) / (y1 - y0) * (HEIGHT - 2.0 * PAD)
        } else {
            HEIGHT / 2.0
        }
    };
    let coords: Vec<String> = pts
        .iter()
        .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
        .collect();
    let (lx, ly) = *pts.last().expect("non-empty");
    format!(
        concat!(
            "<figure class=\"spark\"><figcaption>{name} ",
            "<span class=\"range\">[{min} … {max}]</span></figcaption>",
            "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\">",
            "<polyline fill=\"none\" stroke=\"#2a6fb0\" stroke-width=\"1.5\" points=\"{points}\"/>",
            "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"2.2\" fill=\"#d2542c\"/>",
            "</svg></figure>"
        ),
        name = escape_html(&series.name),
        min = fmt_num(y0),
        max = fmt_num(y1),
        w = WIDTH,
        h = HEIGHT,
        points = coords.join(" "),
        cx = sx(lx),
        cy = sy(ly),
    )
}

/// Segment colors for stacked bars, cycled when a profile has more
/// phases than the palette.
const PALETTE: [&str; 8] = [
    "#2a6fb0", "#d2542c", "#3f9c5a", "#8958b3", "#c9a227", "#16808a", "#b0486e", "#6b7b8c",
];

/// An inline SVG horizontal stacked bar: each segment's width is its
/// share of the total, with a color-swatch legend listing every segment
/// (including those too small to see). Zero/negative segments are kept
/// in the legend but get no rect.
pub fn stacked_bar(title: &str, segments: &[(String, f64)]) -> String {
    let total: f64 = segments.iter().map(|(_, v)| v.max(0.0)).sum();
    if total <= 0.0 {
        return String::new();
    }
    let bar_w = 520.0;
    let bar_h = 20.0;
    let mut rects = String::new();
    let mut x = 0.0;
    for (i, (name, v)) in segments.iter().enumerate() {
        let w = v.max(0.0) / total * bar_w;
        if w > 0.0 {
            let _ = write!(
                rects,
                concat!(
                    "<rect x=\"{x:.1}\" y=\"0\" width=\"{w:.1}\" height=\"{h}\" ",
                    "fill=\"{fill}\"><title>{name}: {v} ms</title></rect>"
                ),
                x = x,
                w = w,
                h = bar_h,
                fill = PALETTE[i % PALETTE.len()],
                name = escape_html(name),
                v = fmt_num(*v),
            );
            x += w;
        }
    }
    let mut legend = String::new();
    for (i, (name, v)) in segments.iter().enumerate() {
        let _ = write!(
            legend,
            concat!(
                "<span class=\"seg\"><span class=\"sw\" ",
                "style=\"background:{fill}\"></span>{name} {v}</span>"
            ),
            fill = PALETTE[i % PALETTE.len()],
            name = escape_html(name),
            v = fmt_num(*v),
        );
    }
    format!(
        concat!(
            "<figure class=\"stack\"><figcaption>{title} ",
            "<span class=\"range\">[total {total}]</span></figcaption>",
            "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\">",
            "{rects}</svg><div class=\"legend\">{legend}</div></figure>"
        ),
        title = escape_html(title),
        total = fmt_num(total),
        w = bar_w,
        h = bar_h,
        rects = rects,
        legend = legend,
    )
}

/// The cross-run regressions panel: one row per [`Regression`], or a
/// quiet all-clear line when the judged groups are healthy. Rendered
/// right under the overview so a broken nightly is the first thing the
/// page shows.
fn regressions_panel(out: &mut String, regs: &[Regression]) {
    if regs.is_empty() {
        out.push_str("<p class=\"allclear\">No cross-run regressions detected.</p>");
        return;
    }
    let _ = write!(
        out,
        "<h2>regressions <span class=\"kind bad\">{}</span></h2>",
        regs.len()
    );
    out.push_str(concat!(
        "<table class=\"regressions\"><tr><th>group</th><th>metric</th>",
        "<th>run</th><th>value</th><th>baseline</th><th>ewma</th>",
        "<th>delta %</th><th>robust z</th></tr>"
    ));
    for r in regs {
        let _ = write!(
            out,
            concat!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>",
                "<td>{}</td><td>{}</td><td class=\"bad\">{:+.1}</td><td>{}</td></tr>"
            ),
            escape_html(&r.group),
            escape_html(&r.metric),
            escape_html(&r.run),
            fmt_num(r.value),
            fmt_num(r.baseline),
            fmt_num(r.ewma),
            r.delta_pct,
            if r.z.is_finite() {
                format!("{:.1}", r.z)
            } else {
                "inf".to_string()
            },
        );
    }
    out.push_str("</table>");
}

fn run_section(out: &mut String, run: &RunRecord) {
    let _ = write!(
        out,
        "<section><h2>{} <span class=\"kind\">{}</span></h2>",
        escape_html(&run.name),
        run.kind.label()
    );
    // Profile runs carry one `phase/<path>` scalar per phase-tree node;
    // those feed the stacked bar instead of the headline table.
    let (phases, headline): (Vec<_>, Vec<_>) = run
        .scalars
        .iter()
        .partition(|(k, _)| run.kind == RunKind::Profile && k.starts_with("phase/"));
    if !headline.is_empty() {
        out.push_str("<table class=\"scalars\"><tr>");
        for (k, _) in &headline {
            let _ = write!(out, "<th>{}</th>", escape_html(k));
        }
        out.push_str("</tr><tr>");
        for (_, v) in &headline {
            let _ = write!(out, "<td>{}</td>", fmt_num(*v));
        }
        out.push_str("</tr></table>");
    }
    if !phases.is_empty() {
        let segments: Vec<(String, f64)> = phases
            .iter()
            .map(|(k, v)| (k.trim_start_matches("phase/").to_string(), *v))
            .collect();
        out.push_str(&stacked_bar(
            "construction time by phase (self ms)",
            &segments,
        ));
    }
    if !run.series.is_empty() {
        out.push_str("<div class=\"sparks\">");
        for s in &run.series {
            out.push_str(&sparkline(s));
        }
        out.push_str("</div>");
    }
    out.push_str("</section>");
}

/// Renders the whole index as one self-contained HTML document.
pub fn render_dashboard(history: &History) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str(concat!(
        "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">",
        "<title>gossip run history</title><style>",
        "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:70rem;",
        "padding:0 1rem;color:#1c2733}",
        "h1{font-size:1.4rem}h2{font-size:1.05rem;margin:1.4rem 0 .4rem;",
        "border-bottom:1px solid #d8dee5;padding-bottom:.2rem}",
        ".kind{font-size:.75rem;color:#fff;background:#5b7c99;border-radius:3px;",
        "padding:.1rem .4rem;vertical-align:middle}",
        "table{border-collapse:collapse;margin:.4rem 0}",
        "th,td{border:1px solid #d8dee5;padding:.2rem .55rem;text-align:right;",
        "font-variant-numeric:tabular-nums}",
        "th{background:#f2f5f8;font-weight:600;text-align:center}",
        ".sparks{display:flex;flex-wrap:wrap;gap:.8rem;margin:.5rem 0}",
        ".spark figcaption{font-size:.78rem;color:#44525f}",
        ".spark{margin:0;border:1px solid #e3e8ee;border-radius:4px;padding:.35rem .5rem}",
        ".range{color:#8a97a3}",
        ".stack{margin:.5rem 0;border:1px solid #e3e8ee;border-radius:4px;",
        "padding:.35rem .5rem;max-width:34rem}",
        ".stack figcaption{font-size:.78rem;color:#44525f}",
        ".legend{display:flex;flex-wrap:wrap;gap:.3rem .9rem;font-size:.75rem;",
        "color:#44525f;margin-top:.25rem}",
        ".sw{display:inline-block;width:.7em;height:.7em;border-radius:2px;",
        "margin-right:.3em;vertical-align:baseline}",
        ".overview td:first-child,.overview th:first-child{text-align:left}",
        ".regressions td:first-child,.regressions th:first-child,",
        ".regressions td:nth-child(2),.regressions td:nth-child(3)",
        "{text-align:left}",
        ".bad{background:#b0486e;color:#fff}",
        "td.bad{background:#fbeef3;color:#9c2f58;font-weight:600}",
        ".allclear{color:#3f9c5a}",
        "</style></head><body><h1>gossip run history</h1>"
    ));
    let _ = write!(
        out,
        "<p>{} run{} ingested.</p>",
        history.runs.len(),
        if history.runs.len() == 1 { "" } else { "s" }
    );
    if !history.runs.is_empty() {
        regressions_panel(&mut out, &history.regressions());
        out.push_str(concat!(
            "<table class=\"overview\"><tr><th>run</th><th>kind</th>",
            "<th>scalars</th><th>series</th></tr>"
        ));
        for run in &history.runs {
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                escape_html(&run.name),
                run.kind.label(),
                run.scalars.len(),
                run.series.len()
            );
        }
        out.push_str("</table>");
        for run in &history.runs {
            run_section(&mut out, run);
        }
    }
    out.push_str("</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_is_self_contained_and_has_sparklines() {
        let mut h = History::new();
        h.ingest(
            "recovery",
            r#"{"schema_version": 1, "kind": "recovery", "n": 10, "total_rounds": 20,
                "recovered": true,
                "epochs": [{"epoch": 0, "lost": 7, "delivered": 40, "residual_after": 9},
                           {"epoch": 1, "lost": 0, "delivered": 9, "residual_after": 0}]}"#,
        )
        .unwrap();
        let html = render_dashboard(&h);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.ends_with("</body></html>"));
        assert!(html.contains("<svg"), "needs at least one sparkline");
        assert!(html.contains("residual_after"));
        // Self-contained: no external fetches of any kind.
        for marker in ["http://", "https://", "src=", "href=", "@import", "url("] {
            assert!(!html.contains(marker), "external asset marker {marker:?}");
        }
    }

    #[test]
    fn profile_runs_get_a_stacked_bar_and_stay_self_contained() {
        let mut h = History::new();
        h.ingest(
            "PROF_fig4",
            r#"{"schema_version": 1, "kind": "profile", "n": 12, "plan_ms": 3.5,
                "attributed_ms": 3.4, "attributed_pct": 97.1,
                "phases": [
                    {"name": "plan", "calls": 1, "total_ms": 3.0, "self_ms": 0.2,
                     "children": [
                        {"name": "tree", "calls": 1, "total_ms": 1.8, "self_ms": 1.8}]},
                    {"name": "flatten", "calls": 1, "total_ms": 0.4, "self_ms": 0.4}]}"#,
        )
        .unwrap();
        let html = render_dashboard(&h);
        assert!(html.contains("construction time by phase"));
        assert!(html.contains("<rect"), "stacked bar needs segments");
        assert!(html.contains("plan/tree"));
        // Phase scalars live in the bar, not the headline table.
        assert!(!html.contains("<th>phase/plan</th>"));
        assert!(html.contains("<th>plan_ms</th>"));
        for marker in ["http://", "https://", "src=", "href=", "@import", "url("] {
            assert!(!html.contains(marker), "external asset marker {marker:?}");
        }
    }

    #[test]
    fn regressions_panel_flags_a_doctored_set_and_stays_self_contained() {
        let profile = |makespan: f64| {
            format!(
                r#"{{"schema_version": 1, "kind": "profile", "n": 64,
                    "makespan": {makespan}, "plan_ms": 0.4}}"#
            )
        };
        let mut h = History::new();
        for (i, ms) in [130.0, 130.0, 130.0, 260.0].iter().enumerate() {
            h.ingest(&format!("PROF_{i}"), &profile(*ms)).unwrap();
        }
        let html = render_dashboard(&h);
        assert!(html.contains("<h2>regressions"));
        assert!(html.contains("<td>makespan</td>"));
        assert!(html.contains("<td>PROF_3</td>"));
        assert!(html.contains("<td>profile n=64</td>"));
        assert!(html.contains(">+100.0</td>"));
        assert!(!html.contains("No cross-run regressions detected"));
        for marker in ["http://", "https://", "src=", "href=", "@import", "url("] {
            assert!(!html.contains(marker), "external asset marker {marker:?}");
        }

        // A healthy set renders the quiet all-clear line instead.
        let mut clean = History::new();
        for (i, ms) in [130.0, 130.0, 130.0, 130.0].iter().enumerate() {
            clean.ingest(&format!("PROF_{i}"), &profile(*ms)).unwrap();
        }
        let html = render_dashboard(&clean);
        assert!(html.contains("No cross-run regressions detected"));
        assert!(!html.contains("<h2>regressions"));
    }

    #[test]
    fn empty_history_renders_cleanly() {
        let html = render_dashboard(&History::new());
        assert!(html.contains("0 runs ingested"));
    }

    #[test]
    fn sparkline_handles_flat_and_single_point_series() {
        let flat = Series {
            name: "flat".to_string(),
            points: vec![(0.0, 5.0), (1.0, 5.0)],
        };
        assert!(sparkline(&flat).contains("<svg"));
        let single = Series {
            name: "one".to_string(),
            points: vec![(0.0, 1.0)],
        };
        assert!(sparkline(&single).contains("<circle"));
        let empty = Series {
            name: "none".to_string(),
            points: Vec::new(),
        };
        assert!(sparkline(&empty).is_empty());
    }
}
