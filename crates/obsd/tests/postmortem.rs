//! Post-mortem acceptance tests: flight captures of the same schedule taken
//! by the oracle simulator and the bitset kernel must diff as identical, and
//! a clean-vs-lossy diff must name exactly the round of the first suppressed
//! delivery as the first divergent round.

use gossip_core::{concurrent_updown, tree_origins};
use gossip_graph::{min_depth_spanning_tree, ChildOrder, Graph, GraphBuilder};
use gossip_model::{
    CommModel, FaultPlan, FlatSchedule, LostDelivery, Schedule, SimKernel, Simulator,
};
use gossip_obsd::diff;
use gossip_telemetry::flight::{FlightHeader, FlightLog, FlightRecorder};
use gossip_workloads::fig4_graph;
use proptest::prelude::*;
use std::collections::HashSet;

fn header(engine: &str, n: usize, origins: &[usize]) -> FlightHeader {
    FlightHeader {
        n: n as u32,
        n_msgs: origins.len() as u32,
        radius: 0,
        engine: engine.to_string(),
        graph_digest: 0,
        schedule_digest: 0,
        fault_digest: 0,
        origins: origins.iter().map(|&o| o as u32).collect(),
    }
}

fn oracle_capture(g: &Graph, schedule: &Schedule, origins: &[usize]) -> FlightLog {
    let rec = FlightRecorder::new(header("oracle", g.n(), origins));
    let mut sim = Simulator::with_origins(g, CommModel::Multicast, origins).unwrap();
    sim.run_recorded(schedule, &rec).unwrap();
    FlightLog::decode(&rec.finish()).unwrap()
}

fn kernel_capture(g: &Graph, schedule: &Schedule, origins: &[usize]) -> FlightLog {
    let rec = FlightRecorder::new(header("kernel", g.n(), origins));
    let flat = FlatSchedule::from_schedule(schedule);
    let mut kernel = SimKernel::with_origins(g, CommModel::Multicast, origins).unwrap();
    kernel.run_recorded(&flat, &rec).unwrap();
    FlightLog::decode(&rec.finish()).unwrap()
}

/// Random connected graph: a random tree plus a sprinkle of extra edges.
fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        (
            parents,
            proptest::collection::vec(proptest::bool::weighted(0.2), len),
        )
            .prop_map(move |(ps, mask)| {
                let mut b = GraphBuilder::new(n);
                let mut present = HashSet::new();
                for (i, p) in ps.into_iter().enumerate() {
                    b.add_edge_unchecked(p, i + 1).unwrap();
                    present.insert((p.min(i + 1), p.max(i + 1)));
                }
                for (on, &(u, v)) in mask.iter().zip(&pairs) {
                    if *on && !present.contains(&(u, v)) {
                        b.add_edge_unchecked(u, v).unwrap();
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The oracle simulator and the bitset kernel record the same schedule
    /// as flight captures that diff as identical — same per-round delivery
    /// sets, same transmissions, zero divergence.
    #[test]
    fn oracle_and_kernel_captures_diff_identical(g in arb_connected(12)) {
        let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
        let schedule = concurrent_updown(&tree);
        let origins = tree_origins(&tree);
        let a = oracle_capture(&g, &schedule, &origins);
        let b = kernel_capture(&g, &schedule, &origins);
        let report = diff(&a, &b).unwrap();
        prop_assert!(report.comparable);
        prop_assert!(
            report.identical,
            "oracle/kernel captures diverge: first divergent round {:?}",
            report.first_divergent_round
        );
        prop_assert_eq!(report.first_divergent_round, None);
    }
}

#[test]
fn clean_vs_lossy_diff_names_the_first_suppressed_delivery_round() {
    let g = fig4_graph();
    let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
    let schedule = concurrent_updown(&tree);
    let origins = tree_origins(&tree);
    let flat = FlatSchedule::from_schedule(&schedule);

    let clean = kernel_capture(&g, &schedule, &origins);

    // Search seeds until the plan actually suppresses something.
    let mut found = None;
    for seed in 1..64 {
        let plan = FaultPlan::new(seed).with_loss_rate(0.1);
        let rec = FlightRecorder::new(header("lossy", g.n(), &origins));
        let mut kernel = SimKernel::with_origins(&g, CommModel::Multicast, &origins).unwrap();
        let mut lost: Vec<LostDelivery> = Vec::new();
        kernel
            .run_lossy_recorded(&flat, &plan, &mut lost, &rec)
            .unwrap();
        if !lost.is_empty() {
            found = Some((FlightLog::decode(&rec.finish()).unwrap(), lost));
            break;
        }
    }
    let (lossy, lost) = found.expect("some seed under 10% loss suppresses a delivery");

    // The capture's loss records agree with the executor's lost log.
    let losses = lossy.losses();
    assert_eq!(losses.len(), lost.len());
    let first_loss_round = losses.iter().map(|l| l.round).min().unwrap() as usize;

    let report = diff(&clean, &lossy).unwrap();
    assert!(report.comparable);
    assert!(!report.identical);
    assert_eq!(
        report.first_divergent_round,
        Some(first_loss_round),
        "first divergence must be the round of the first suppressed delivery"
    );
}

#[test]
fn diffing_a_capture_against_itself_is_identical() {
    let g = fig4_graph();
    let tree = min_depth_spanning_tree(&g, ChildOrder::ById).unwrap();
    let schedule = concurrent_updown(&tree);
    let origins = tree_origins(&tree);
    let a = oracle_capture(&g, &schedule, &origins);
    let report = diff(&a, &a).unwrap();
    assert!(report.identical);
    assert_eq!(report.first_divergent_round, None);
    assert_eq!(report.only_in_a, 0);
    assert_eq!(report.only_in_b, 0);
}
