//! Concurrency stress for [`LiveRegistry`]: writer threads hammer counters,
//! gauges, histograms, and events while scraper threads render the
//! Prometheus exposition and merger threads fold per-thread registries into
//! a shared one — exactly the shape `gossip serve` runs in (executor
//! threads writing, the HTTP thread scraping mid-run). Nothing may deadlock
//! or panic, and once the dust settles the merged totals must equal the
//! serial sum.

use gossip_obsd::prometheus;
use gossip_telemetry::{LiveRegistry, Recorder, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 4;
const MERGERS: usize = 2;
const OPS_PER_WRITER: u64 = 5_000;
const MERGES_PER_MERGER: u64 = 50;
const MERGE_COUNTER_BUMP: u64 = 3;

/// One writer's workload against a registry: counters, a gauge, a
/// histogram sample, and an event per iteration.
fn writer_pass(reg: &LiveRegistry, thread_id: usize, i: u64) {
    reg.counter("stress/transmissions", 1);
    reg.counter(&format!("stress/thread/{thread_id}"), 2);
    reg.gauge("stress/round", i as f64);
    reg.observe("stress/fanout", (i % 7) as f64);
    reg.event("stress", &[("i", Value::from_u64(i))]);
}

#[test]
fn concurrent_writes_scrapes_and_merges_sum_exactly() {
    let shared = Arc::new(LiveRegistry::new());
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    // Writers record straight into the shared registry, as the paced
    // executor does while the obsd server owns the same registry.
    for t in 0..WRITERS {
        let reg = Arc::clone(&shared);
        handles.push(thread::spawn(move || {
            for i in 0..OPS_PER_WRITER {
                writer_pass(&reg, t, i);
            }
        }));
    }
    // Mergers fold fresh per-epoch registries in mid-run, as recovery
    // epochs do.
    for _ in 0..MERGERS {
        let reg = Arc::clone(&shared);
        handles.push(thread::spawn(move || {
            for i in 0..MERGES_PER_MERGER {
                let epoch = LiveRegistry::new();
                epoch.counter("stress/merged", MERGE_COUNTER_BUMP);
                epoch.observe("stress/epoch_len", i as f64);
                reg.merge(&epoch);
            }
        }));
    }
    // Scrapers render the Prometheus exposition concurrently with every
    // write above; they only need to observe *some* consistent snapshot.
    let mut scrapers = Vec::new();
    for _ in 0..2 {
        let reg = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        scrapers.push(thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let text = prometheus::render(&reg);
                assert!(text.contains("gossip_events_emitted"), "{text}");
                scrapes += 1;
            }
            scrapes
        }));
    }

    for h in handles {
        h.join().expect("writer/merger thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for s in scrapers {
        let scrapes = s.join().expect("scraper thread panicked");
        assert!(scrapes > 0, "scraper never completed a render");
    }

    // Serial ground truth: every delta lands exactly once.
    assert_eq!(
        shared.counter_value("stress/transmissions"),
        WRITERS as u64 * OPS_PER_WRITER
    );
    for t in 0..WRITERS {
        assert_eq!(
            shared.counter_value(&format!("stress/thread/{t}")),
            2 * OPS_PER_WRITER
        );
    }
    assert_eq!(
        shared.counter_value("stress/merged"),
        MERGERS as u64 * MERGES_PER_MERGER * MERGE_COUNTER_BUMP
    );
    assert_eq!(shared.events_emitted(), WRITERS as u64 * OPS_PER_WRITER);
    let hist = shared.histogram("stress/fanout").expect("fanout histogram");
    assert_eq!(hist.count() as u64, WRITERS as u64 * OPS_PER_WRITER);
    let epochs = shared
        .histogram("stress/epoch_len")
        .expect("epoch histogram");
    assert_eq!(epochs.count() as u64, MERGERS as u64 * MERGES_PER_MERGER);
    // The gauge holds whichever writer stored last — any of the recorded
    // round values is a consistent outcome.
    let round = shared.gauge_value("stress/round").expect("round gauge");
    assert!(round >= 0.0 && round < OPS_PER_WRITER as f64);

    // And the post-stress exposition renders every family with the summed
    // values.
    let text = prometheus::render(&shared);
    assert!(
        text.contains(&format!(
            "gossip_stress_transmissions {}",
            WRITERS as u64 * OPS_PER_WRITER
        )),
        "{text}"
    );
}

/// The same race, but with the ground truth computed by replaying the
/// identical op sequence serially: merged per-thread registries must be
/// indistinguishable from one thread doing all the work.
#[test]
fn merged_per_thread_registries_equal_the_serial_sum() {
    let serial = LiveRegistry::new();
    for t in 0..WRITERS {
        for i in 0..OPS_PER_WRITER {
            writer_pass(&serial, t, i);
        }
    }

    let merged = Arc::new(LiveRegistry::new());
    let mut handles = Vec::new();
    for t in 0..WRITERS {
        let merged = Arc::clone(&merged);
        handles.push(thread::spawn(move || {
            let local = LiveRegistry::new();
            for i in 0..OPS_PER_WRITER {
                writer_pass(&local, t, i);
            }
            merged.merge(&local);
        }));
    }
    for h in handles {
        h.join().expect("thread panicked");
    }

    assert_eq!(merged.counters(), serial.counters());
    assert_eq!(merged.events_emitted(), serial.events_emitted());
    let m = merged.histogram("stress/fanout").unwrap();
    let s = serial.histogram("stress/fanout").unwrap();
    assert_eq!(m.count(), s.count());
    assert_eq!(m.sum(), s.sum());
    // Gauges are last-write-wins; both ends of the race stored the same
    // final per-thread value, so merged must equal serial here too.
    assert_eq!(
        merged.gauge_value("stress/round"),
        serial.gauge_value("stress/round")
    );
}
