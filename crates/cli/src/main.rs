//! `gossip` — command-line interface to the multigossip library.
//!
//! ```text
//! gossip generate --family ring --n 12 --out ring.json
//! gossip plan     --family torus --n 64 [--algorithm simple] [--out plan.json]
//! gossip plan     --graph ring.json
//! gossip profile  fig4 --out PROF_fig4.json --flame fig4.flame
//! gossip trace    --family path --n 9 --vertex 4
//! gossip bounds   --family path --n 9
//! gossip exact    --family star --n 5 [--model telephone]
//! gossip sweep    [--sizes 16,32,64]
//! gossip serve    --graph fig4 --loss-rate 0.1 --listen 127.0.0.1:9464
//! gossip dash     metrics.json recovery.json --out report.html
//! gossip plan     --graph fig4 --flight-out run.gfr
//! gossip inspect  run.gfr --round 5
//! gossip diff     clean.gfr lossy.gfr
//! ```
//!
//! Graphs and plans serialize as JSON so schedules can be inspected or
//! replayed by other tooling.

mod args;
mod commands;

use args::Args;

// With `--features prof-alloc` the counting allocator is registered so
// `gossip profile` attributes allocation count / bytes / peak live bytes
// to planner phases. Off by default: the system allocator stays untouched.
#[cfg(feature = "prof-alloc")]
#[global_allocator]
static ALLOC: gossip_telemetry::profile::ProfAlloc = gossip_telemetry::profile::ProfAlloc;

fn main() {
    let args = match Args::parse(std::env::args()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "plan" => commands::plan(&args),
        "profile" => commands::profile(&args),
        "trace" => commands::trace(&args),
        "bounds" => commands::bounds(&args),
        "exact" => commands::exact(&args),
        "sweep" => commands::sweep(&args),
        "analyze" => commands::analyze(&args),
        "compare" => commands::compare(&args),
        "line" => commands::line(&args),
        "pipeline" => commands::pipeline(&args),
        "energy" => commands::energy(&args),
        "stats" => commands::stats(&args),
        "provenance" => commands::provenance(&args),
        "recover" => commands::recover(&args),
        "churn" => commands::churn(&args),
        "serve" => commands::serve(&args),
        "dash" => commands::dash(&args),
        "inspect" => commands::inspect(&args),
        "diff" => commands::diff(&args),
        "bench-diff" => commands::bench_diff(&args),
        "" | "help" | "--help" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE)),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
