//! Tiny dependency-free flag parser for the `gossip` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and `--key
/// value` / `--flag` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (flags without values map to "true").
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args`-style input (element 0 = program name).
    pub fn parse<I: IntoIterator<Item = String>>(input: I) -> Result<Self, String> {
        let mut iter = input.into_iter().skip(1).peekable();
        let mut args = Args {
            command: iter.next().unwrap_or_default(),
            ..Args::default()
        };
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                if args.options.insert(key.to_string(), value).is_some() {
                    return Err(format!("duplicate option --{key}"));
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// Returns an option value, or the default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Returns a numeric option value, or the default; errors on non-numeric.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Returns a u64 option value, or the default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Returns an f64 option value, or the default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(String::as_str) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn basic_parse() {
        let a = parse("gossip plan --family ring --n 12 --verbose");
        assert_eq!(a.command, "plan");
        assert_eq!(a.get_or("family", "?"), "ring");
        assert_eq!(a.get_usize("n", 0).unwrap(), 12);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn positional_args() {
        let a = parse("gossip trace 4 --family path");
        assert_eq!(a.positional, vec!["4"]);
    }

    #[test]
    fn duplicate_rejected() {
        let r = Args::parse("gossip x --n 1 --n 2".split_whitespace().map(String::from));
        assert!(r.is_err());
    }

    #[test]
    fn bad_number() {
        let a = parse("gossip x --n abc");
        assert!(a.get_usize("n", 0).is_err());
    }

    #[test]
    fn f64_option() {
        let a = parse("gossip recover --loss-rate 0.15");
        assert_eq!(a.get_f64("loss-rate", 0.0).unwrap(), 0.15);
        assert_eq!(a.get_f64("absent", 0.5).unwrap(), 0.5);
        let bad = parse("gossip recover --loss-rate abc");
        assert!(bad.get_f64("loss-rate", 0.0).is_err());
    }

    #[test]
    fn empty() {
        let a = Args::parse(vec!["prog".to_string()]).unwrap();
        assert_eq!(a.command, "");
    }
}
